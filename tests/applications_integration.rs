//! Integration tests of the application substrates (deep learning, graph
//! reordering) against the core theory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symmetric_locality::prelude::*;

#[test]
fn mlp_sawtooth_backward_matches_analytical_reuse_halving() {
    // For a single layer the measured improvement must match the paper's
    // closed forms exactly.
    let layer = MlpLayer::new(12, 8);
    let k = layer.weight_count();
    let cyclic = layer
        .weight_trace(0, None)
        .concat(&layer.weight_trace(0, None));
    let sawtooth = layer
        .weight_trace(0, None)
        .concat(&layer.weight_trace(0, Some(&Permutation::reverse(k))));
    assert_eq!(
        locality_score(&cyclic).total_reuse_distance,
        analytical_retraversal_cost(k, false)
    );
    assert_eq!(
        locality_score(&sawtooth).total_reuse_distance,
        analytical_retraversal_cost(k, true)
    );
    // The asymptotic ratio approaches 1/2 from above.
    let ratio =
        analytical_retraversal_cost(k, true) as f64 / analytical_retraversal_cost(k, false) as f64;
    assert!(ratio > 0.5 && ratio < 0.51);
}

#[test]
fn training_schedule_reports_are_consistent_with_core_schedules() {
    let m = 40;
    let epochs = 5;
    let policy_report = TrainingSchedule::new(m, epochs, EpochPolicy::AlternatingSawtooth).report();
    let core_schedule = Schedule::alternating(&Permutation::reverse(m), epochs);
    assert_eq!(
        policy_report.total_reuse_distance,
        core_schedule.total_reuse_distance()
    );
    assert_eq!(policy_report.accesses, m * epochs);
    let cyclic_report = TrainingSchedule::new(m, epochs, EpochPolicy::Cyclic).report();
    assert_eq!(
        cyclic_report.total_reuse_distance,
        Schedule::all_forward(m, epochs).total_reuse_distance()
    );
    assert!(policy_report.total_reuse_distance < cyclic_report.total_reuse_distance);
}

#[test]
fn grouped_data_constraints_flow_from_dl_to_core_optimizer() {
    // A batch of 3 sentences × 4 words: the recommended order must keep each
    // sentence intact while interleaving/reordering whole sentences.
    let order = DataOrder::grouped(3, 4).unwrap();
    let rec = recommended_order(&order).unwrap();
    assert!(order.allows(&rec));
    // Words of sentence 0 are elements 0..4; they must appear in relative
    // order within the recommended traversal.
    let inv = rec.inverse();
    for w in 0..3usize {
        assert!(inv.apply(w) < inv.apply(w + 1));
    }
    // The recommendation beats the identity but cannot beat the sawtooth.
    assert!(inversions(&rec) > 0);
    assert!(inversions(&rec) < max_inversions(12));
    // And it is still a locality improvement measurable end to end.
    let cyclic_epochs = vec![Permutation::identity(12); 2];
    let optimized_epochs = vec![rec.clone(), Permutation::identity(12)];
    let subset: Vec<usize> = (100..112).collect();
    let cyclic = locality_score(&repeated_subset_trace(&subset, &cyclic_epochs));
    let optimized = locality_score(&repeated_subset_trace(&subset, &optimized_epochs));
    assert!(optimized.total_reuse_distance < cyclic.total_reuse_distance);
}

#[test]
fn graph_hub_retraversal_follows_theorem2_ordering() {
    // For the repeated traversal of a hub neighborhood, orders with more
    // inversions always yield at least as much reuse at small cache sizes in
    // aggregate (Theorem 2 applied to an application trace).
    let mut rng = StdRng::seed_from_u64(31);
    let graph = preferential_attachment_graph(150, 3, &mut rng);
    let hub = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let subset: Vec<usize> = graph.neighbors(hub).to_vec();
    let m = subset.len();
    assert!(m >= 8, "hub should be well connected (got {m})");

    let low = Permutation::identity(m).mul_adjacent_right(0).unwrap(); // ℓ = 1
    let high = Permutation::reverse(m); // ℓ = max
    let trace_low = repeated_subset_trace(&subset, std::slice::from_ref(&low));
    let trace_high = repeated_subset_trace(&subset, std::slice::from_ref(&high));
    let sum_low: usize = (1..m).map(|c| reuse_profile(&trace_low).hits(c)).sum();
    let sum_high: usize = (1..m).map(|c| reuse_profile(&trace_high).hits(c)).sum();
    assert_eq!(sum_low, inversions(&low));
    assert_eq!(sum_high, inversions(&high));
    assert!(sum_high > sum_low);
}

#[test]
fn attention_and_mlp_share_the_same_optimization_structure() {
    // The same sawtooth order optimizes both (they are both "re-traverse the
    // same weights" workloads); verify via the common scalar score.
    let attn = MultiHeadAttention::new(16, 4);
    let mlp = Mlp::from_widths(&[64, 16]);
    assert_eq!(attn.weights_per_projection(), 256);
    assert_eq!(mlp.total_weights(), 1024);

    let attn_gain = {
        let natural = locality_score(&attn.step_trace(None)).total_reuse_distance;
        let optimized =
            locality_score(&attn.step_trace(Some(&attn.sawtooth_order()))).total_reuse_distance;
        natural as f64 / optimized as f64
    };
    let mlp_gain = {
        let natural = locality_score(&mlp.training_step_trace(None)).total_reuse_distance;
        let orders = mlp.sawtooth_backward_orders();
        let optimized =
            locality_score(&mlp.training_step_trace(Some(&orders))).total_reuse_distance;
        natural as f64 / optimized as f64
    };
    // A single-layer MLP step is a pure re-traversal, so its gain approaches
    // the paper's 2x; attention interleaves four projection blocks whose
    // cross-block distances are fixed, so its per-step gain is smaller but
    // still significant.
    assert!(attn_gain > 1.2, "attention gain {attn_gain}");
    assert!(mlp_gain > 1.9, "mlp gain {mlp_gain}");
}

#[test]
fn end_to_end_feasibility_pipeline() {
    // Model constraint extraction -> optimization -> schedule evaluation.
    let m = 10;
    let mut dag = PrecedenceDag::unconstrained(m);
    dag.require_chain(&[0, 1, 2]).unwrap();
    dag.require_before(4, 8).unwrap();
    let (result, chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
    assert!(dag.is_feasible(&result.sigma));
    assert!(chain.len() == result.inversions);

    let schedule = Schedule::alternating(&result.sigma, 6);
    let baseline = Schedule::all_forward(m, 6);
    assert!(schedule.total_reuse_distance() < baseline.total_reuse_distance());
}
