//! End-to-end smoke test for `symloc serve`: the real binary, both
//! transports. Two tenants stream interleaved accesses, MRC answers are
//! collected, the daemon is killed (EOF for stdin mode, SIGTERM for TCP
//! mode) and restarted from its checkpoint — and the restarted daemon
//! must answer the same queries with **byte-identical** lines.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};

const SYMLOC: &str = env!("CARGO_BIN_EXE_symloc");

/// Runs `symloc serve --stdin` feeding `script`, returning stdout.
fn serve_stdin(checkpoint: &Path, script: &str) -> String {
    let mut child = Command::new(SYMLOC)
        .args([
            "serve",
            "--stdin",
            "--budget",
            "32",
            "--checkpoint",
            &checkpoint.to_string_lossy(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn symloc serve --stdin");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("daemon exits");
    assert!(
        output.status.success(),
        "serve --stdin failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 report")
}

/// The `OK mrc ...` answer lines of a transcript, in order.
fn mrc_lines(transcript: &str) -> Vec<String> {
    transcript
        .lines()
        .filter(|l| l.starts_with("OK mrc "))
        .map(ToString::to_string)
        .collect()
}

#[test]
fn stdin_daemon_resumes_tenants_byte_identically() {
    let dir = std::env::temp_dir().join(format!("symloc_serve_e2e_stdin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("serve.ckpt.json");

    // Two tenants, interleaved; query both, then exit (EOF saves).
    let before = serve_stdin(
        &ckpt,
        "HELLO alpha\n1\n2\n3\n1\n2\nHELLO beta\n10\n20\n10\nHELLO alpha\n3\n1\n\
         MRC alpha\nMRC beta 8\nSTATS\nQUIT\n",
    );
    assert!(before.contains("OK tenant alpha"), "{before}");
    assert!(before.contains("serve.tenants=2"), "{before}");
    assert!(before.contains("checkpoint saved to"), "{before}");
    let first = mrc_lines(&before);
    assert_eq!(first.len(), 2, "{before}");

    // Restart from the checkpoint: same queries, byte-identical answers.
    let after = serve_stdin(&ckpt, "MRC alpha\nMRC beta 8\nQUIT\n");
    assert!(
        after.contains("resumed 2 tenant(s), 10 access(es) from checkpoint"),
        "{after}"
    );
    assert_eq!(mrc_lines(&after), first);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns the TCP daemon and parses the announced ephemeral address.
fn spawn_tcp(checkpoint: &Path) -> (Child, String) {
    let mut child = Command::new(SYMLOC)
        .args([
            "serve",
            "--port",
            "0",
            "--budget",
            "32",
            "--checkpoint",
            &checkpoint.to_string_lossy(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn symloc serve --port 0");
    let mut banner = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr)
}

/// Sends protocol lines over TCP, reading one reply per non-access line.
fn tcp_exchange(addr: &str, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").expect("send line");
        writer.flush().expect("flush line");
        let is_access = line.starts_with(|c: char| c.is_ascii_digit());
        if !is_access {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read reply");
            replies.push(reply.trim_end().to_string());
        }
    }
    replies
}

#[test]
fn tcp_daemon_survives_sigterm_and_answers_identically() {
    let dir = std::env::temp_dir().join(format!("symloc_serve_e2e_tcp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("serve.ckpt.json");

    // First life: stream two tenants, query, save, quit the session.
    let (mut child, addr) = spawn_tcp(&ckpt);
    let replies = tcp_exchange(
        &addr,
        &[
            "HELLO alpha",
            "1",
            "2",
            "3",
            "1",
            "2",
            "HELLO beta",
            "10",
            "20",
            "10",
            "MRC alpha",
            "MRC beta 8",
            "STATS",
            "SAVE",
            "QUIT",
        ],
    );
    assert_eq!(replies[0], "OK tenant alpha", "{replies:?}");
    let first: Vec<String> = replies
        .iter()
        .filter(|r| r.starts_with("OK mrc "))
        .cloned()
        .collect();
    assert_eq!(first.len(), 2, "{replies:?}");
    assert!(
        replies.iter().any(|r| r.starts_with("OK saved ")),
        "{replies:?}"
    );
    assert!(
        replies.iter().any(|r| r.contains("serve.tenants=2")),
        "{replies:?}"
    );

    // Kill the daemon mid-stream with SIGTERM; it must exit cleanly
    // (final save + summary) rather than be torn down.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon did not exit cleanly on SIGTERM");
    let mut summary = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut summary)
        .expect("read summary");
    assert!(summary.contains("2 tenant(s), 8 access(es)"), "{summary}");

    // Second life: resumed from the checkpoint, the same queries answer
    // with byte-identical lines.
    let (mut child, addr) = spawn_tcp(&ckpt);
    let replies = tcp_exchange(&addr, &["MRC alpha", "MRC beta 8", "QUIT"]);
    assert_eq!(&replies[..2], &first[..], "answers changed across restart");
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    assert!(child.wait().expect("daemon exits").success());
    std::fs::remove_dir_all(&dir).ok();
}
