//! Failure-injection tests: every user-facing error path across the
//! workspace returns a typed, descriptive error (or a documented panic)
//! instead of silently producing wrong results.

use symmetric_locality::core::CoreError;
use symmetric_locality::perm::PermError;
use symmetric_locality::prelude::*;
use symmetric_locality::trace::io::{read_trace, read_trace_from_str, TraceIoError};

#[test]
fn malformed_permutations_are_rejected_with_context() {
    let out_of_range = Permutation::from_images(vec![0, 1, 5]).unwrap_err();
    assert!(matches!(
        out_of_range,
        PermError::ImageOutOfRange { value: 5, .. }
    ));
    assert!(out_of_range.to_string().contains("5"));

    let duplicate = Permutation::from_images(vec![0, 1, 1]).unwrap_err();
    assert!(matches!(
        duplicate,
        PermError::DuplicateImage { value: 1, .. }
    ));

    let one_based_zero = Permutation::from_one_based(vec![0, 1, 2]).unwrap_err();
    assert!(matches!(one_based_zero, PermError::ImageOutOfRange { .. }));

    let mismatch = Permutation::identity(3)
        .try_compose(&Permutation::identity(4))
        .unwrap_err();
    assert!(matches!(
        mismatch,
        PermError::DegreeMismatch { left: 3, right: 4 }
    ));

    let bad_generator = Permutation::identity(3).mul_adjacent_right(2).unwrap_err();
    assert!(matches!(
        bad_generator,
        PermError::GeneratorOutOfRange {
            index: 2,
            degree: 3
        }
    ));
}

#[test]
fn ranking_and_sampling_bounds_are_enforced() {
    assert!(matches!(
        unrank(3, 6),
        Err(PermError::RankOutOfRange { rank: 6, degree: 3 })
    ));
    assert!(matches!(
        factorial(99),
        Err(PermError::DegreeTooLarge { degree: 99, .. })
    ));
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    assert!(matches!(
        random_with_inversions(4, 100, &mut rng),
        Err(PermError::InversionTargetOutOfRange {
            target: 100,
            max: 6
        })
    ));
    assert!(matches!(
        from_lehmer_code(&[9, 0, 0]),
        Err(PermError::InvalidCycle { .. })
    ));
    assert!(word_to_permutation(3, &[0, 7, 1]).is_err());
}

#[test]
fn trace_files_with_garbage_are_reported_by_line() {
    let err = read_trace_from_str("0\n1\nforty-two\n").unwrap_err();
    match &err {
        TraceIoError::Parse { line, text } => {
            assert_eq!(*line, 3);
            assert_eq!(text, "forty-two");
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert!(read_trace("/path/that/does/not/exist.trace").is_err());
    // Negative addresses and floats are rejected too.
    assert!(read_trace_from_str("-1\n").is_err());
    assert!(read_trace_from_str("1.5\n").is_err());
}

#[test]
fn non_retraversal_traces_are_rejected_not_misparsed() {
    for (trace, needle) in [
        (Trace::from_usizes(&[0, 1, 2]), "odd"),
        (Trace::from_usizes(&[0, 0, 1, 1]), "first traversal"),
        (Trace::from_usizes(&[0, 1, 2, 9]), "not seen"),
        (Trace::from_usizes(&[0, 1, 0, 0]), "repeats or skips"),
    ] {
        let err = ReTraversal::from_trace(&trace).unwrap_err();
        assert!(matches!(err, CoreError::NotARetraversal { .. }));
        assert!(
            err.to_string().contains(needle),
            "error {err} should mention {needle:?}"
        );
    }
}

#[test]
fn inconsistent_feasibility_constraints_are_rejected_and_rolled_back() {
    let mut dag = PrecedenceDag::unconstrained(4);
    assert!(matches!(
        dag.require_before(1, 9),
        Err(CoreError::ConstraintOutOfRange {
            element: 9,
            degree: 4
        })
    ));
    dag.require_before(0, 1).unwrap();
    dag.require_before(1, 2).unwrap();
    let cycle = dag.require_before(2, 0).unwrap_err();
    assert!(matches!(cycle, CoreError::InfeasibleConstraints { .. }));
    // The failed edge was rolled back, so the DAG is still usable and the
    // optimizer still works on it.
    assert_eq!(dag.constraint_count(), 2);
    let (result, _) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
    assert!(dag.is_feasible(&result.sigma));

    // An infeasible starting point is reported, not silently "fixed".
    let err =
        improve_greedy(&Permutation::reverse(4), &dag, ChainFindConfig::default()).unwrap_err();
    assert!(matches!(err, CoreError::NoFeasibleChoice { .. }));
}

#[test]
fn labeling_degree_mismatch_is_detected() {
    let labeling = RankedMissRatioLabeling::prioritize_second_largest(5);
    assert!(labeling.check_degree(5).is_ok());
    let err = labeling.check_degree(7).unwrap_err();
    assert!(matches!(
        err,
        CoreError::LabelingDegreeMismatch {
            labeling: 5,
            group: 7
        }
    ));
}

#[test]
fn truncated_and_corrupt_sltr_files_are_errors_not_panics() {
    use symmetric_locality::trace::binio::{
        read_sltr_from_reader, write_sltr_to_vec, SltrError, SltrReader, SLTR_MAGIC, SLTR_VERSION,
    };
    use symmetric_locality::trace::generators::cyclic_trace;

    // Bad magic and unsupported versions are rejected at open time.
    assert!(matches!(
        SltrReader::new(b"XXXX\x01".as_slice()).unwrap_err(),
        SltrError::BadMagic { .. }
    ));
    let mut wrong_version = SLTR_MAGIC.to_vec();
    wrong_version.push(77);
    assert!(matches!(
        SltrReader::new(wrong_version.as_slice()).unwrap_err(),
        SltrError::BadVersion { found: 77 }
    ));
    // A header alone is a valid empty trace; a header cut short is not.
    assert!(read_sltr_from_reader(&SLTR_MAGIC[..3]).is_err());

    // Truncating a payload mid-varint is reported with the access index
    // (the cyclic trace ends at address 299, a two-byte varint).
    let bytes = write_sltr_to_vec(&cyclic_trace(300, 2)).unwrap();
    let truncated = &bytes[..bytes.len() - 1];
    let err = read_sltr_from_reader(truncated).unwrap_err();
    assert!(matches!(err, SltrError::TruncatedVarint { .. }), "{err}");

    // A run of continuation bytes overflows the 64-bit address space.
    let mut overflowing = SLTR_MAGIC.to_vec();
    overflowing.push(SLTR_VERSION);
    overflowing.extend_from_slice(&[0xff; 12]);
    assert!(matches!(
        read_sltr_from_reader(overflowing.as_slice()).unwrap_err(),
        SltrError::Overflow { .. } | SltrError::TruncatedVarint { .. }
    ));
}

#[test]
fn bogus_sltr_indexes_are_errors_not_panics() {
    use symmetric_locality::trace::binio::{
        sltr_index_path, write_sltr, write_sltr_indexed, SltrError, SltrIndex,
    };
    use symmetric_locality::trace::generators::cyclic_trace;
    use symmetric_locality::trace::stream::TraceSource;

    let dir = std::env::temp_dir();
    let path = dir.join(format!("symloc_failinj_{}.sltr", std::process::id()));
    let sidecar = sltr_index_path(&path);
    let t = cyclic_trace(64, 10);
    let index = write_sltr_indexed(&t, &path, 100).unwrap();

    // Structurally broken sidecars: bad magic, truncation, offsets past
    // the payload, non-monotone offsets, trailing bytes.
    let good = index.to_bytes();
    assert!(SltrIndex::from_bytes(b"JUNKJUNK").is_err());
    assert!(SltrIndex::from_bytes(&good[..good.len() - 1]).is_err());
    let mut trailing = good.clone();
    trailing.push(1);
    assert!(SltrIndex::from_bytes(&trailing).is_err());

    // A corrupt sidecar on disk fails source validation loudly…
    std::fs::write(&sidecar, b"JUNKJUNK").unwrap();
    let source = TraceSource::Binary(path.clone());
    assert!(source.total_accesses().is_err());
    // …and a stale one (trace replaced after indexing) does too.
    write_sltr(&cyclic_trace(64, 3), &path).unwrap();
    index.write(&sidecar).unwrap();
    let err = source.total_accesses().unwrap_err();
    assert!(err.to_string().contains("stale"), "{err}");
    assert!(matches!(
        index.check_matches(999, 1),
        Err(SltrError::IndexStale { .. })
    ));
    // Streaming never trusts a mismatched index: it falls back to
    // decode-skip and still yields the true content.
    let got: Vec<u64> = source.stream_range(64, 70).unwrap().collect();
    assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&sidecar).ok();
}

#[test]
fn block_decoder_reports_truncation_without_losing_decoded_accesses() {
    use symmetric_locality::trace::binio::{
        write_sltr_to_vec, SltrError, SltrReader, SLTR_MAGIC, SLTR_VERSION,
    };
    use symmetric_locality::trace::generators::cyclic_trace;

    // Truncating a payload mid-varint: the block decoder must hand back
    // every access decoded before the cut, then report the truncation with
    // its access index on the next call — never both lose data and error,
    // never decode garbage past the cut.
    let bytes = write_sltr_to_vec(&cyclic_trace(300, 2)).unwrap();
    let truncated = &bytes[..bytes.len() - 1];
    let mut reader = SltrReader::new(truncated).unwrap();
    let mut block = Vec::new();
    let mut decoded = Vec::new();
    let err = loop {
        match reader.decode_block(&mut block, 128) {
            Ok(0) => panic!("truncated payload must error, not end cleanly"),
            Ok(_) => decoded.extend_from_slice(&block),
            Err(e) => break e,
        }
    };
    // 600 accesses total; the last one (address 299, a two-byte varint)
    // was cut, so exactly 599 decode and the error names access 599.
    assert_eq!(decoded.len(), 599);
    assert_eq!(decoded[0], 0);
    assert_eq!(decoded[598], 298);
    assert!(
        matches!(err, SltrError::TruncatedVarint { access: 599 }),
        "{err}"
    );
    // Errors are terminal.
    assert_eq!(reader.decode_block(&mut block, 128).unwrap(), 0);

    // An over-long varint is a loud overflow mid-block, same contract.
    let mut overflowing = SLTR_MAGIC.to_vec();
    overflowing.push(SLTR_VERSION);
    overflowing.push(7);
    overflowing.extend_from_slice(&[0xff; 10]);
    overflowing.push(0x03);
    let mut reader = SltrReader::new(overflowing.as_slice()).unwrap();
    assert_eq!(reader.decode_block(&mut block, 128).unwrap(), 1);
    assert_eq!(block, vec![7]);
    assert!(matches!(
        reader.decode_block(&mut block, 128).unwrap_err(),
        SltrError::Overflow { access: 1 }
    ));
}

#[test]
#[should_panic(expected = "address interner exhausted")]
fn interner_id_exhaustion_panics_instead_of_wrapping() {
    use symmetric_locality::core::tracesweep::AddrInterner;

    // The real limit is u32::MAX distinct addresses — unreachable in a
    // test, so the limit is injected. Past it, ids would wrap and silently
    // alias distinct addresses; the interner must abort loudly instead.
    let mut interner = AddrInterner::with_capacity_limit(2);
    assert_eq!(interner.intern(1 << 40), 0);
    assert_eq!(interner.intern(2 << 40), 1);
    assert_eq!(interner.intern(1 << 40), 0); // re-interning is fine
    interner.intern(3 << 40); // third distinct address must panic
}

#[test]
fn stale_sidecar_in_parallel_ingest_falls_back_byte_identical() {
    use symmetric_locality::core::tracesweep::TraceIngest;
    use symmetric_locality::trace::binio::{sltr_index_path, write_sltr_indexed};
    use symmetric_locality::trace::generators::{cyclic_trace, zipfian_trace};
    use symmetric_locality::trace::stream::TraceSource;

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(23);
    let t = zipfian_trace(5_000, 4_000, 0.8, &mut rng);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path = dir.join(format!("symloc_failinj_stale_par_{pid}.sltr"));
    let other = dir.join(format!("symloc_failinj_stale_par_other_{pid}.sltr"));
    let sidecar = sltr_index_path(&path);
    let healthy_index = write_sltr_indexed(&t, &path, 64).unwrap();
    let source = TraceSource::Binary(path.clone());

    // Reference: the parallel ingest with a healthy sidecar.
    let mut healthy = TraceIngest::new(&source, 8, 2).unwrap();
    healthy.run_pending(&source, None);
    let expected = healthy.to_json();

    // The sidecar goes stale *after* job validation (trace replaced by a
    // mismatched index — here, one describing a different payload). The
    // parallel decode path must silently fall back to sequential
    // decode-skip per chunk and finish byte-identical, not mis-seek.
    let mut ingest = TraceIngest::new(&source, 8, 2).unwrap();
    let stale = write_sltr_indexed(&cyclic_trace(10, 3), &other, 16).unwrap();
    stale.write(&sidecar).unwrap();
    ingest.run_pending(&source, None);
    assert_eq!(ingest.to_json(), expected);

    // Sidecar vanishing entirely mid-job is the same fallback.
    healthy_index.write(&sidecar).unwrap();
    let mut ingest = TraceIngest::new(&source, 8, 2).unwrap();
    std::fs::remove_file(&sidecar).unwrap();
    ingest.run_pending(&source, None);
    assert_eq!(ingest.to_json(), expected);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&other).ok();
    std::fs::remove_file(sltr_index_path(&other)).ok();
}

#[test]
fn mangled_checkpoint_documents_are_rejected_with_context() {
    use symmetric_locality::core::engine::SweepSpec;
    use symmetric_locality::core::shard::SampledSweep;
    use symmetric_locality::core::tracesweep::{SampledIngest, TraceIngest};
    use symmetric_locality::trace::stream::{GenSpec, TraceSource};

    // A sampled-sweep checkpoint with flipped bits in every load-bearing
    // field must fail to parse, never panic or silently resume.
    let mut sweep = SampledSweep::new(SweepSpec::figure1(6), 100, 2, 1, 1);
    sweep.run_pending(Some(2));
    let good = sweep.to_json();
    for mangled in [
        good.replace("symloc_sampled_sweep_checkpoint", "who_knows"),
        good.replace("\"version\": 1", "\"version\": 99"),
        good.replace("\"m\": 6", "\"m\": 99"),
        good.replace("inversions", "frobnications"),
        good.replace("\"done\": true", "\"done\": maybe"),
        good.replace("hit_sums", "hit_summs"),
        good[..good.len() / 2].to_string(),
    ] {
        assert!(SampledSweep::from_json(&mangled, 1).is_err(), "{mangled}");
    }

    // Same for the sampled trace ingest…
    let source = TraceSource::Gen(GenSpec::parse("gen:zipf:50:500:0.9:1").unwrap());
    let mut ingest = SampledIngest::new(&source, 2, 16, 1).unwrap();
    ingest.run_pending(&source, Some(1));
    let good = ingest.to_json();
    for mangled in [
        good.replace("symloc_sampled_trace_checkpoint", "nope"),
        good.replace("\"threshold\": 16777216", "\"threshold\": 0"),
        good.replace("\"cold\": ", "\"cold\": -"),
        good.replace("histogram", "histogrum"),
        "{}".to_string(),
        "not json at all".to_string(),
    ] {
        assert!(SampledIngest::from_json(&mangled, 1).is_err(), "{mangled}");
    }

    // …and the exact trace ingest.
    let mut exact = TraceIngest::new(&source, 3, 1).unwrap();
    exact.run_pending(&source, Some(1));
    let good = exact.to_json();
    assert!(TraceIngest::from_json(&good.replace("timeline", "timeleap"), 1).is_err());
    assert!(TraceIngest::from_json(&good.replace("[", "{"), 1).is_err());

    // …and the fused ingest, whose checkpoint carries both sides: mangling
    // either the exact state or any per-shard sampled state is rejected.
    use symmetric_locality::core::tracesweep::FusedIngest;
    let mut fused = FusedIngest::new(&source, 3, 2, 16, 1).unwrap();
    fused.run_pending(&source, Some(1));
    let good = fused.to_json();
    for mangled in [
        good.replace("symloc_fused_trace_checkpoint", "nope"),
        good.replace("\"shard_count\": 2", "\"shard_count\": 3"),
        good.replace("\"budget_per_shard\": 16", "\"budget_per_shard\": 0"),
        good.replace("\"threshold\": 16777216", "\"threshold\": 0"),
        good.replace("timeline", "timeleap"),
        good.replace("tracked", "trackd"),
        good.replace("\"cold\": ", "\"cold\": -"),
        good[..good.len() / 2].to_string(),
        "{}".to_string(),
    ] {
        assert!(FusedIngest::from_json(&mangled, 1).is_err(), "{mangled}");
    }

    // …and the serve tenant table, whose document carries one estimator
    // per tenant in the same shard-entry shape.
    use symmetric_locality::core::serve::ServeState;
    let mut serve = ServeState::new(16, 4).unwrap();
    let t = serve.ensure_tenant("alpha").unwrap();
    serve.record_block(t, &[1, 2, 3, 1, 2]);
    let t = serve.ensure_tenant("beta").unwrap();
    serve.record_block(t, &[7, 8, 7]);
    let good = serve.to_json();
    for mangled in [
        good.replace("symloc_serve_checkpoint", "nope"),
        good.replace("\"budget\": 16", "\"budget\": 0"),
        good.replace("\"max_tenants\": 4", "\"max_tenants\": 1"),
        good.replace("\"alpha\"", "\"zz\""),
        good.replace("\"alpha\"", "\"has space\""),
        good.replace("tracked", "trackd"),
        good.replace("\"cold\": ", "\"cold\": -"),
        good[..good.len() / 2].to_string(),
        "{}".to_string(),
    ] {
        assert!(ServeState::from_json(&mangled).is_err(), "{mangled}");
    }
}

#[test]
fn cross_kind_checkpoint_resume_fails_loudly_for_every_pair() {
    use symmetric_locality::core::engine::SweepSpec;
    use symmetric_locality::core::job::JobKind;
    use symmetric_locality::core::serve::ServeState;
    use symmetric_locality::core::shard::{SampledSweep, ShardedSweep};
    use symmetric_locality::core::tracesweep::{FusedIngest, SampledIngest, TraceIngest};
    use symmetric_locality::trace::stream::{GenSpec, TraceSource};

    // One small in-progress checkpoint per job kind.
    let source = TraceSource::Gen(GenSpec::parse("gen:zipf:50:500:0.9:1").unwrap());
    let mut sharded = ShardedSweep::new(SweepSpec::figure1(5), 4, 1);
    sharded.run_pending(Some(1));
    let mut sampled_sweep = SampledSweep::new(SweepSpec::figure1(5), 60, 2, 1, 1);
    sampled_sweep.run_pending(Some(2));
    let mut ingest = TraceIngest::new(&source, 3, 1).unwrap();
    ingest.run_pending(&source, Some(1));
    let mut sampled_ingest = SampledIngest::new(&source, 2, 16, 1).unwrap();
    sampled_ingest.run_pending(&source, Some(1));
    let mut fused_ingest = FusedIngest::new(&source, 3, 2, 16, 1).unwrap();
    fused_ingest.run_pending(&source, Some(1));
    let mut serve_state = ServeState::new(16, 4).unwrap();
    let tenant = serve_state.ensure_tenant("alpha").unwrap();
    serve_state.record_block(tenant, &[1, 2, 3, 1, 2]);
    let documents = [
        (JobKind::ShardedSweep, sharded.to_json()),
        (JobKind::SampledSweep, sampled_sweep.to_json()),
        (JobKind::TraceIngest, ingest.to_json()),
        (JobKind::SampledIngest, sampled_ingest.to_json()),
        (JobKind::FusedIngest, fused_ingest.to_json()),
        (JobKind::ServeState, serve_state.to_json()),
    ];

    // Every cross-kind decode must fail with an error naming both the
    // found and the expected kind — never misparse, never a bare "bad
    // JSON" shrug.
    let decode_err = |expected: JobKind, text: &str| -> String {
        match expected {
            JobKind::ShardedSweep => ShardedSweep::from_json(text, 1).unwrap_err(),
            JobKind::SampledSweep => SampledSweep::from_json(text, 1).unwrap_err(),
            JobKind::TraceIngest => TraceIngest::from_json(text, 1).unwrap_err(),
            JobKind::SampledIngest => SampledIngest::from_json(text, 1).unwrap_err(),
            JobKind::FusedIngest => FusedIngest::from_json(text, 1).unwrap_err(),
            JobKind::ServeState => ServeState::from_json(text).unwrap_err(),
        }
    };
    for (found, text) in &documents {
        for expected in JobKind::ALL {
            if expected == *found {
                continue;
            }
            let err = decode_err(expected, text);
            assert!(
                err.contains(found.kind_str()) && err.contains(expected.kind_str()),
                "{found:?} -> {expected:?}: {err}"
            );
            assert!(err.contains("symloc job resume"), "{err}");
        }
    }

    // And every cross-kind resume_or_new is a loud error, not a silent
    // fresh start that would overwrite the foreign checkpoint.
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "symloc_failinj_crosskind_{}.json",
        std::process::id()
    ));
    for (found, text) in &documents {
        std::fs::write(&path, text).unwrap();
        let spec = SweepSpec::figure1(5);
        let results: Vec<(JobKind, Result<usize, String>)> = vec![
            (
                JobKind::ShardedSweep,
                ShardedSweep::resume_or_new(spec, 4, 1, &path).map(|(s, _)| s.completed_count()),
            ),
            (
                JobKind::SampledSweep,
                SampledSweep::resume_or_new(spec, 60, 2, 1, 1, &path)
                    .map(|(s, _)| s.completed_count()),
            ),
            (
                JobKind::TraceIngest,
                TraceIngest::resume_or_new(&source, 3, 1, &path).map(|(s, _)| s.completed_count()),
            ),
            (
                JobKind::SampledIngest,
                SampledIngest::resume_or_new(&source, 2, 16, 1, &path)
                    .map(|(s, _)| s.completed_count()),
            ),
            (
                JobKind::FusedIngest,
                FusedIngest::resume_or_new(&source, 3, 2, 16, 1, &path)
                    .map(|(s, _)| s.completed_count()),
            ),
            (
                JobKind::ServeState,
                ServeState::resume_or_new(&path, 16, 4).map(|(s, _)| s.tenant_count()),
            ),
        ];
        for (expected, result) in results {
            if expected == *found {
                assert!(result.is_ok(), "{expected:?} resuming its own checkpoint");
            } else {
                let err = result.expect_err("cross-kind resume must fail");
                assert!(
                    err.contains(found.describe()) && err.contains(expected.describe()),
                    "{found:?} -> {expected:?}: {err}"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_truncated_or_stale_heartbeats_degrade_status_but_never_fail() {
    use symmetric_locality::cli;
    use symmetric_locality::core::job::Heartbeat;
    use symmetric_locality::core::obs::MetricsRegistry;
    use symmetric_locality::core::tracesweep::TraceIngest;
    use symmetric_locality::trace::stream::{GenSpec, TraceSource};

    let dir = std::env::temp_dir();
    let ck = dir.join(format!("symloc_failinj_hb_{}.json", std::process::id()));
    let ck_str = ck.to_str().unwrap().to_string();
    let sidecar = Heartbeat::sidecar_path(&ck);
    let run = |args: &[&str]| {
        cli::run(
            &args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<String>>(),
        )
    };

    // An interrupted checkpointed ingest leaves a live heartbeat sidecar.
    let source = TraceSource::Gen(GenSpec::parse("gen:zipf:60:2000:0.8:3").unwrap());
    let mut ingest = TraceIngest::new(&source, 6, 1).unwrap();
    ingest
        .run_with_checkpoint(&source, &ck, Some(1), |_, _| {})
        .unwrap();
    assert!(sidecar.exists(), "interrupted run must leave a heartbeat");
    let live_hb = std::fs::read_to_string(&sidecar).unwrap();
    let status = run(&["job", "status", &ck_str]).unwrap();
    assert!(status.contains("heartbeat   : live"), "{status}");

    // A corrupt sidecar degrades the status to "unreadable" — `job status`
    // itself must still succeed, in both human and JSON form.
    std::fs::write(&sidecar, "garbage").unwrap();
    let status = run(&["job", "status", &ck_str]).unwrap();
    assert!(status.contains("unreadable sidecar"), "{status}");
    let json = run(&["job", "status", &ck_str, "--json"]).unwrap();
    assert!(
        json.contains("\"heartbeat_status\": \"unreadable\""),
        "{json}"
    );
    assert!(!json.contains("\"heartbeat\": {"), "{json}");

    // A truncated sidecar is the same degradation, not a different path.
    std::fs::write(&sidecar, &live_hb[..live_hb.len() / 2]).unwrap();
    let status = run(&["job", "status", &ck_str]).unwrap();
    assert!(status.contains("unreadable sidecar"), "{status}");

    // A well-formed sidecar whose progress no longer matches the
    // checkpoint (a stale leftover of an earlier run) is reported stale
    // and its numbers are not presented as live progress.
    let mut stale = Heartbeat::from_json(&live_hb).unwrap();
    stale.completed += 1;
    std::fs::write(&sidecar, stale.to_json()).unwrap();
    let status = run(&["job", "status", &ck_str]).unwrap();
    assert!(status.contains("stale sidecar"), "{status}");
    let json = run(&["job", "status", &ck_str, "--json"]).unwrap();
    assert!(json.contains("\"heartbeat_status\": \"stale\""), "{json}");

    // Resuming straight through a corrupt sidecar must work — the
    // heartbeat is advisory, never load-bearing — and completion removes
    // the sidecar.
    std::fs::write(&sidecar, "garbage").unwrap();
    let resumed = run(&["job", "resume", &ck_str]).unwrap();
    assert!(resumed.contains("6 of 6 complete"), "{resumed}");
    assert!(
        !sidecar.exists(),
        "completed resume must remove the heartbeat sidecar"
    );

    // Mangled heartbeat and metrics documents are parse errors with
    // context, never panics.
    for text in ["not json", "{}", "{\"kind\": \"something_else\"}"] {
        assert!(Heartbeat::from_json(text).is_err(), "{text}");
        assert!(MetricsRegistry::from_json(text).is_err(), "{text}");
    }

    std::fs::remove_file(&ck).ok();
    std::fs::remove_file(&sidecar).ok();
}

#[test]
fn job_status_rejects_foreign_and_mangled_documents() {
    use symmetric_locality::core::job::checkpoint_status;
    assert!(checkpoint_status("not json").is_err());
    assert!(checkpoint_status("{}").is_err());
    assert!(checkpoint_status("{\"kind\": \"unregistered_kind\"}")
        .unwrap_err()
        .contains("unregistered_kind"));
    // A registered kind with a mangled body still fails through the kind's
    // own decoder, with its message.
    let err =
        checkpoint_status("{\"kind\": \"symloc_sweep_checkpoint\", \"version\": 1}").unwrap_err();
    assert!(err.contains("missing"), "{err}");
}

#[test]
fn corrupt_metrics_snapshots_are_overwritten_cleanly() {
    use symmetric_locality::cli;
    use symmetric_locality::core::obs::MetricsRegistry;

    let dir = std::env::temp_dir();
    let metrics = dir.join(format!(
        "symloc_failinj_metrics_{}.json",
        std::process::id()
    ));
    let metrics_str = metrics.to_str().unwrap().to_string();

    // A pre-existing corrupt snapshot (e.g. a truncated write from a
    // killed run under the old non-atomic path) must not poison the next
    // run: the snapshot is replaced atomically with a parseable document.
    std::fs::write(&metrics, "{\"kind\": \"symloc_metr").unwrap();
    let out = cli::run(
        &[
            "trace",
            "mrc",
            "gen:zipf:50:500:0.9:1",
            "--sample",
            "32",
            "--metrics",
            &metrics_str,
        ]
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<String>>(),
    )
    .unwrap();
    assert!(out.contains("sampled"), "{out}");
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    let registry = MetricsRegistry::from_json(&snapshot).expect("snapshot must parse");
    assert!(!registry.is_empty());
    // The atomic write leaves no temp file behind.
    assert!(!metrics.with_extension("json.tmp").exists());
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn job_resume_on_a_serve_checkpoint_points_at_the_daemon() {
    use symmetric_locality::cli;
    use symmetric_locality::core::serve::ServeState;

    let dir = std::env::temp_dir();
    let ck = dir.join(format!("symloc_failinj_serve_{}.json", std::process::id()));
    let ck_str = ck.to_str().unwrap().to_string();
    let mut state = ServeState::new(16, 4).unwrap();
    let tenant = state.ensure_tenant("alpha").unwrap();
    state.record_block(tenant, &[1, 2, 1]);
    state.save(&ck).unwrap();

    // `job status` understands the new kind…
    let status = cli::run(&["job".to_string(), "status".to_string(), ck_str.clone()]).unwrap();
    assert!(status.contains("multi-tenant serve state"), "{status}");
    assert!(status.contains("max tenants"), "{status}");

    // …while `job resume` explains that a daemon snapshot has no batch
    // work and names the command that does resume it.
    let err = cli::run(&["job".to_string(), "resume".to_string(), ck_str.clone()]).unwrap_err();
    assert!(err.0.contains("symloc serve --checkpoint"), "{err}");
    std::fs::remove_file(&ck).ok();
}

#[test]
fn partition_failure_rows_are_loud_named_errors_never_panics() {
    use symmetric_locality::cli;
    use symmetric_locality::core::partition::{solve, Bounds, TenantCurve, MAX_PARTITION_BUDGET};
    use symmetric_locality::core::serve::ServeState;
    use symmetric_locality::core::tracesweep::MrcPoint;

    // PARTITION on an empty tenant table: the daemon-facing path.
    let empty = ServeState::new(16, 4).unwrap();
    let err = empty.partition(64).unwrap_err();
    assert!(err.contains("no tenants to partition"), "{err}");

    // Zero and absurd budgets, through the solver the wire command calls.
    let mut state = ServeState::new(16, 4).unwrap();
    let t = state.ensure_tenant("alpha").unwrap();
    state.record_block(t, &[1, 2, 3, 1, 2]);
    let err = state.partition(0).unwrap_err();
    assert!(err.contains("partition budget must be positive"), "{err}");
    let err = state.partition(MAX_PARTITION_BUDGET + 1).unwrap_err();
    assert!(err.contains("exceeds the supported maximum"), "{err}");

    // Infeasible bounds and malformed curves name their problem.
    let curve = TenantCurve::from_points(
        "t",
        4.0,
        &[MrcPoint {
            cache_size: 2,
            miss_ratio: 0.5,
        }],
    )
    .unwrap();
    let err = solve(
        std::slice::from_ref(&curve),
        4,
        &[Bounds { floor: 9, cap: 9 }],
    )
    .unwrap_err();
    assert!(err.contains("more than the budget"), "{err}");
    let err = TenantCurve::from_points(
        "t",
        f64::INFINITY,
        &[MrcPoint {
            cache_size: 1,
            miss_ratio: 0.5,
        }],
    )
    .unwrap_err();
    assert!(err.contains("finite non-negative"), "{err}");

    // A serve checkpoint with a mangled tenant entry fed to the offline
    // `symloc partition` CLI: the error names the file and the field.
    let dir = std::env::temp_dir();
    let ck = dir.join(format!(
        "symloc_failinj_partition_{}.json",
        std::process::id()
    ));
    let mangled = state.to_json().replace("tracked", "trackd");
    std::fs::write(&ck, mangled).unwrap();
    let args: Vec<String> = ["partition", "64", "--checkpoint", ck.to_str().unwrap()]
        .iter()
        .map(ToString::to_string)
        .collect();
    let err = cli::run(&args).unwrap_err();
    assert!(err.0.contains("bad serve checkpoint"), "{err}");
    assert!(err.0.contains("tracked"), "{err}");
    std::fs::remove_file(&ck).ok();
}

#[test]
fn cli_surfaces_errors_instead_of_panicking() {
    use symmetric_locality::cli;
    assert!(cli::run(&["analyze".to_string(), "/definitely/missing".to_string()]).is_err());
    assert!(cli::run(&[
        "generate".to_string(),
        "triangle".to_string(),
        "4".to_string(),
        "2".to_string()
    ])
    .is_err());
    assert!(cli::run(&["optimize".to_string(), "5".to_string(), "2<2".to_string()]).is_err());
    assert!(cli::run(&["optimize".to_string(), "5".to_string(), "4<1".to_string()]).is_ok());
    let err = cli::run(&[
        "optimize".to_string(),
        "5".to_string(),
        "1<0".to_string(),
        "0<1".to_string(),
    ]);
    assert!(err.is_err(), "cyclic constraints must be rejected");
}
