//! Failure-injection tests: every user-facing error path across the
//! workspace returns a typed, descriptive error (or a documented panic)
//! instead of silently producing wrong results.

use symmetric_locality::core::CoreError;
use symmetric_locality::perm::PermError;
use symmetric_locality::prelude::*;
use symmetric_locality::trace::io::{read_trace, read_trace_from_str, TraceIoError};

#[test]
fn malformed_permutations_are_rejected_with_context() {
    let out_of_range = Permutation::from_images(vec![0, 1, 5]).unwrap_err();
    assert!(matches!(
        out_of_range,
        PermError::ImageOutOfRange { value: 5, .. }
    ));
    assert!(out_of_range.to_string().contains("5"));

    let duplicate = Permutation::from_images(vec![0, 1, 1]).unwrap_err();
    assert!(matches!(
        duplicate,
        PermError::DuplicateImage { value: 1, .. }
    ));

    let one_based_zero = Permutation::from_one_based(vec![0, 1, 2]).unwrap_err();
    assert!(matches!(one_based_zero, PermError::ImageOutOfRange { .. }));

    let mismatch = Permutation::identity(3)
        .try_compose(&Permutation::identity(4))
        .unwrap_err();
    assert!(matches!(
        mismatch,
        PermError::DegreeMismatch { left: 3, right: 4 }
    ));

    let bad_generator = Permutation::identity(3).mul_adjacent_right(2).unwrap_err();
    assert!(matches!(
        bad_generator,
        PermError::GeneratorOutOfRange {
            index: 2,
            degree: 3
        }
    ));
}

#[test]
fn ranking_and_sampling_bounds_are_enforced() {
    assert!(matches!(
        unrank(3, 6),
        Err(PermError::RankOutOfRange { rank: 6, degree: 3 })
    ));
    assert!(matches!(
        factorial(99),
        Err(PermError::DegreeTooLarge { degree: 99, .. })
    ));
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    assert!(matches!(
        random_with_inversions(4, 100, &mut rng),
        Err(PermError::InversionTargetOutOfRange {
            target: 100,
            max: 6
        })
    ));
    assert!(matches!(
        from_lehmer_code(&[9, 0, 0]),
        Err(PermError::InvalidCycle { .. })
    ));
    assert!(word_to_permutation(3, &[0, 7, 1]).is_err());
}

#[test]
fn trace_files_with_garbage_are_reported_by_line() {
    let err = read_trace_from_str("0\n1\nforty-two\n").unwrap_err();
    match &err {
        TraceIoError::Parse { line, text } => {
            assert_eq!(*line, 3);
            assert_eq!(text, "forty-two");
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert!(read_trace("/path/that/does/not/exist.trace").is_err());
    // Negative addresses and floats are rejected too.
    assert!(read_trace_from_str("-1\n").is_err());
    assert!(read_trace_from_str("1.5\n").is_err());
}

#[test]
fn non_retraversal_traces_are_rejected_not_misparsed() {
    for (trace, needle) in [
        (Trace::from_usizes(&[0, 1, 2]), "odd"),
        (Trace::from_usizes(&[0, 0, 1, 1]), "first traversal"),
        (Trace::from_usizes(&[0, 1, 2, 9]), "not seen"),
        (Trace::from_usizes(&[0, 1, 0, 0]), "repeats or skips"),
    ] {
        let err = ReTraversal::from_trace(&trace).unwrap_err();
        assert!(matches!(err, CoreError::NotARetraversal { .. }));
        assert!(
            err.to_string().contains(needle),
            "error {err} should mention {needle:?}"
        );
    }
}

#[test]
fn inconsistent_feasibility_constraints_are_rejected_and_rolled_back() {
    let mut dag = PrecedenceDag::unconstrained(4);
    assert!(matches!(
        dag.require_before(1, 9),
        Err(CoreError::ConstraintOutOfRange {
            element: 9,
            degree: 4
        })
    ));
    dag.require_before(0, 1).unwrap();
    dag.require_before(1, 2).unwrap();
    let cycle = dag.require_before(2, 0).unwrap_err();
    assert!(matches!(cycle, CoreError::InfeasibleConstraints { .. }));
    // The failed edge was rolled back, so the DAG is still usable and the
    // optimizer still works on it.
    assert_eq!(dag.constraint_count(), 2);
    let (result, _) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
    assert!(dag.is_feasible(&result.sigma));

    // An infeasible starting point is reported, not silently "fixed".
    let err =
        improve_greedy(&Permutation::reverse(4), &dag, ChainFindConfig::default()).unwrap_err();
    assert!(matches!(err, CoreError::NoFeasibleChoice { .. }));
}

#[test]
fn labeling_degree_mismatch_is_detected() {
    let labeling = RankedMissRatioLabeling::prioritize_second_largest(5);
    assert!(labeling.check_degree(5).is_ok());
    let err = labeling.check_degree(7).unwrap_err();
    assert!(matches!(
        err,
        CoreError::LabelingDegreeMismatch {
            labeling: 5,
            group: 7
        }
    ));
}

#[test]
fn cli_surfaces_errors_instead_of_panicking() {
    use symmetric_locality::cli;
    assert!(cli::run(&["analyze".to_string(), "/definitely/missing".to_string()]).is_err());
    assert!(cli::run(&[
        "generate".to_string(),
        "triangle".to_string(),
        "4".to_string(),
        "2".to_string()
    ])
    .is_err());
    assert!(cli::run(&["optimize".to_string(), "5".to_string(), "2<2".to_string()]).is_err());
    assert!(cli::run(&["optimize".to_string(), "5".to_string(), "4<1".to_string()]).is_ok());
    let err = cli::run(&[
        "optimize".to_string(),
        "5".to_string(),
        "1<0".to_string(),
        "0<1".to_string(),
    ]);
    assert!(err.is_err(), "cyclic constraints must be rejected");
}
