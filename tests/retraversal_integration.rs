//! Cross-crate integration tests: permutations → re-traversals → traces →
//! cache simulation must tell one consistent story.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symmetric_locality::prelude::*;

#[test]
fn algorithm1_lru_stack_and_set_assoc_cache_agree() {
    // For every permutation of S_6 the specialized Algorithm 1, the Olken
    // reuse-distance profile of the materialized trace, and a fully
    // associative LRU hardware model must report identical hit counts.
    for sigma in LexIter::new(6) {
        let hv = hit_vector(&sigma);
        let trace = ReTraversal::new(sigma.clone()).to_trace();
        let profile = reuse_profile(&trace);
        for c in 1..=6usize {
            assert_eq!(hv.hits(c), profile.hits(c), "σ={sigma} c={c}");
            let config = CacheConfig::fully_associative(c, ReplacementPolicy::Lru);
            let mut cache = SetAssocCache::new(config);
            let stats = cache.run(&trace);
            assert_eq!(stats.hits, hv.hits(c), "σ={sigma} c={c}");
        }
    }
}

#[test]
fn theorem2_holds_for_random_large_retraversals_through_the_full_stack() {
    let mut rng = StdRng::seed_from_u64(7);
    for m in [64usize, 128, 300] {
        let sigma = random_permutation(m, &mut rng);
        // Via Algorithm 1.
        assert!(theorem2_holds(&sigma));
        // Via the trace + generic simulator: Σ_{c=1}^{m-1} hits_c = ℓ(σ).
        let trace = retraversal_trace(&sigma);
        let profile = reuse_profile(&trace);
        let truncated: usize = (1..m).map(|c| profile.hits(c)).sum();
        assert_eq!(truncated, inversions(&sigma), "m={m}");
    }
}

#[test]
fn trace_io_round_trips_retraversals() {
    let sigma = Permutation::from_one_based(vec![3, 1, 4, 2, 6, 5]).unwrap();
    let trace = ReTraversal::new(sigma.clone()).to_trace();
    let text = write_trace_to_string(&trace).unwrap();
    let parsed_trace = read_trace_from_str(&text).unwrap();
    let parsed = ReTraversal::from_trace(&parsed_trace).unwrap();
    assert_eq!(parsed.sigma(), &sigma);
}

#[test]
fn relabeling_argument_holds_for_arbitrary_addresses() {
    // A re-traversal over arbitrary (sparse) addresses has the same locality
    // as its dense relabeling — the paper's Section II-B relabeling argument.
    let addrs = [1000usize, 5, 777, 42, 90_000, 13];
    let sigma = Permutation::from_one_based(vec![4, 6, 2, 1, 3, 5]).unwrap();
    let mut trace = Trace::new();
    for &a in &addrs {
        trace.push(Addr(a));
    }
    for i in 0..6 {
        trace.push(Addr(addrs[sigma.apply(i)]));
    }
    let sparse_profile = reuse_profile(&trace);
    let dense_profile = reuse_profile(&ReTraversal::new(sigma.clone()).to_trace());
    for c in 1..=6usize {
        assert_eq!(sparse_profile.hits(c), dense_profile.hits(c), "c={c}");
    }
    // And ReTraversal::from_trace recovers σ through the relabeling.
    let recovered = ReTraversal::from_trace(&trace).unwrap();
    assert_eq!(recovered.sigma(), &sigma);
}

#[test]
fn bruhat_chain_improves_mrc_area_monotonically_in_aggregate() {
    // Along any ChainFind chain the truncated hit sum rises by exactly one
    // per step, so the normalized truncated integral falls linearly.
    let m = 7;
    let chain = chain_find(
        &Permutation::identity(m),
        &MissRatioLabeling,
        ChainFindConfig::default(),
    );
    let mut previous = f64::INFINITY;
    for (i, perm) in chain.permutations().iter().enumerate() {
        let integral = normalized_truncated_integral(perm);
        assert!(integral < previous, "step {i}");
        assert!(
            (integral - predicted_truncated_integral(m, i)).abs() < 1e-12,
            "step {i}"
        );
        previous = integral;
    }
}

#[test]
fn hierarchy_simulation_prefers_better_symmetric_locality() {
    // Re-traversals with more inversions push fewer accesses to memory in a
    // two-level hierarchy whose L1 is smaller than the footprint.
    let m = 24;
    let orders = [
        Permutation::identity(m),
        {
            // A middling permutation: reverse only the first half.
            let mut images: Vec<usize> = (0..m).collect();
            images[..m / 2].reverse();
            Permutation::from_images(images).unwrap()
        },
        Permutation::reverse(m),
    ];
    let mut memory_traffic = Vec::new();
    for sigma in &orders {
        let trace = ReTraversal::new(sigma.clone()).to_trace();
        let mut hierarchy = CacheHierarchy::new(&[
            LevelConfig {
                level: 1,
                cache: CacheConfig::fully_associative(m / 4, ReplacementPolicy::Lru),
            },
            LevelConfig {
                level: 2,
                cache: CacheConfig::fully_associative(m / 2, ReplacementPolicy::Lru),
            },
        ]);
        hierarchy.run(&trace);
        memory_traffic.push(hierarchy.stats().memory_accesses);
    }
    // Better symmetric locality never increases memory traffic, and the
    // sawtooth strictly beats the cyclic order.
    assert!(memory_traffic[2] <= memory_traffic[1]);
    assert!(memory_traffic[1] <= memory_traffic[0]);
    assert!(memory_traffic[2] < memory_traffic[0]);
}

#[test]
fn parallel_sweep_matches_sequential_sweep() {
    let sequential = exhaustive_levels(6, 1);
    let parallel = exhaustive_levels(6, symloc_par::default_threads());
    assert_eq!(sequential, parallel);
    let curves = average_mrc_by_inversion(6, 4);
    assert_eq!(curves.len(), max_inversions(6) + 1);
    assert!(levels_are_monotone(&sequential));
}
