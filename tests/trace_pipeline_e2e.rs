//! End-to-end CLI pipeline test: `symloc trace convert` producing an
//! indexed `.sltr`, then a hash-sharded sampled `mrc` over it with a
//! checkpoint that is killed mid-run and resumed — asserting the resumed
//! run's final checkpoint is byte-identical to an uninterrupted one, and
//! that the report output stays machine-parseable throughout.

use symmetric_locality::cli;
use symmetric_locality::trace::binio::sltr_index_path;

fn run(spec: &str) -> String {
    let args: Vec<String> = spec.split_whitespace().map(ToString::to_string).collect();
    cli::run(&args).unwrap_or_else(|e| panic!("`symloc {spec}` failed: {e}"))
}

/// Parses the MRC table at the end of a `trace mrc` report into
/// `(cache_size, miss_ratio)` rows, panicking on anything malformed.
fn parse_mrc_table(report: &str) -> Vec<(usize, f64)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in report.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields == ["cache", "size", "miss", "ratio"] {
            in_table = true;
            continue;
        }
        if in_table {
            assert_eq!(fields.len(), 2, "malformed MRC row {line:?}");
            let size: usize = fields[0].parse().expect("cache size parses");
            let ratio: f64 = fields[1].parse().expect("miss ratio parses");
            assert!(
                (0.0..=1.0).contains(&ratio),
                "miss ratio {ratio} out of range"
            );
            rows.push((size, ratio));
        }
    }
    assert!(in_table, "report has no MRC table:\n{report}");
    rows
}

#[test]
fn convert_then_sampled_sharded_mrc_with_kill_and_resume() {
    let dir = std::env::temp_dir().join(format!("symloc_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sltr = dir.join("workload.sltr");
    let sltr_str = sltr.to_string_lossy().to_string();

    // 1. Convert a generated workload to an indexed .sltr file.
    let report = run(&format!(
        "trace convert gen:zipf:300:6000:0.8:21 {sltr_str}"
    ));
    assert!(
        report.contains("6000 accesses, sltr format, chunk index every 4096"),
        "{report}"
    );
    assert!(sltr_index_path(&sltr).exists(), "sidecar index must exist");

    // 2. An uninterrupted reference run of the hash-sharded sampled MRC.
    let reference_ckpt = dir.join("reference.ckpt.json");
    let mrc_args = format!("trace mrc {sltr_str} --sample 96 --shards 3 --threads 2 --points 8");
    let reference_report = run(&format!(
        "{mrc_args} --checkpoint {}",
        reference_ckpt.to_string_lossy()
    ));
    assert!(
        reference_report.contains("3 of 3 complete"),
        "{reference_report}"
    );
    assert!(
        reference_report.contains("sampled hash-sharded (3 shards x 32 budget"),
        "{reference_report}"
    );
    let reference_rows = parse_mrc_table(&reference_report);
    assert!(!reference_rows.is_empty());
    let reference_bytes = std::fs::read(&reference_ckpt).unwrap();

    // 3. The same analysis, killed after one shard…
    let killed_ckpt = dir.join("killed.ckpt.json");
    let killed_ckpt_str = killed_ckpt.to_string_lossy().to_string();
    let first = run(&format!(
        "{mrc_args} --checkpoint {killed_ckpt_str} --max-chunks 1"
    ));
    assert!(first.contains("1 of 3 complete"), "{first}");
    assert!(first.contains("sampled ingest incomplete"), "{first}");
    assert!(killed_ckpt.exists());
    assert_ne!(
        std::fs::read(&killed_ckpt).unwrap(),
        reference_bytes,
        "the interrupted checkpoint must be a strict prefix of the work"
    );

    // 4. …then resumed to completion in a fresh invocation.
    let resumed_report = run(&format!("{mrc_args} --checkpoint {killed_ckpt_str}"));
    assert!(resumed_report.contains("resumed from"), "{resumed_report}");
    assert!(
        resumed_report.contains("3 of 3 complete"),
        "{resumed_report}"
    );

    // 5. The resumed final checkpoint is byte-identical to the
    //    uninterrupted one, and the reports agree row for row.
    assert_eq!(
        std::fs::read(&killed_ckpt).unwrap(),
        reference_bytes,
        "killed + resumed checkpoint must equal the uninterrupted one"
    );
    assert_eq!(parse_mrc_table(&resumed_report), reference_rows);

    // 6. The exact (chunk-sharded) path over the same indexed file also
    //    kills and resumes to the uninterrupted result.
    let exact_ckpt = dir.join("exact.ckpt.json");
    let exact_ckpt_str = exact_ckpt.to_string_lossy().to_string();
    let exact_args = format!("trace mrc {sltr_str} --shards 4 --threads 2 --points 8");
    let exact_reference = run(&format!("{exact_args} --checkpoint {exact_ckpt_str}"));
    assert!(
        exact_reference.contains("4 of 4 complete"),
        "{exact_reference}"
    );
    let exact_bytes = std::fs::read(&exact_ckpt).unwrap();
    std::fs::remove_file(&exact_ckpt).unwrap();
    let partial = run(&format!(
        "{exact_args} --checkpoint {exact_ckpt_str} --max-chunks 2"
    ));
    assert!(partial.contains("ingest incomplete"), "{partial}");
    let finished = run(&format!("{exact_args} --checkpoint {exact_ckpt_str}"));
    assert!(finished.contains("resumed from"), "{finished}");
    assert_eq!(std::fs::read(&exact_ckpt).unwrap(), exact_bytes);

    // 7. The sampled estimate tracks the exact curve on the shared sizes
    //    (coarsely — 96 tracked addresses over a 300-address footprint).
    let exact_rows = parse_mrc_table(&exact_reference);
    for (size, ratio) in &reference_rows {
        if let Some((_, exact_ratio)) = exact_rows.iter().find(|(s, _)| s == size) {
            assert!(
                (ratio - exact_ratio).abs() < 0.2,
                "sampled mr {ratio} vs exact {exact_ratio} at c={size}"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_sweep_checkpoint_survives_kill_and_resume_via_cli() {
    let dir = std::env::temp_dir().join(format!("symloc_e2e_sweep_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("sweep.ckpt.json");
    let ckpt_str = ckpt.to_string_lossy().to_string();

    // Reference: uninterrupted checkpointed sampled sweep (displacement
    // statistic — exercising the newest sampler end to end).
    let args = "sweep 8 --stat displacement --samples 300 --seed 11 --threads 2".to_string();
    let reference = run(&format!("{args} --checkpoint {ckpt_str}"));
    assert!(reference.contains("33 of 33 complete"), "{reference}");
    assert!(reference.contains("footrule weights"), "{reference}");
    let reference_bytes = std::fs::read(&ckpt).unwrap();
    std::fs::remove_file(&ckpt).unwrap();

    // Kill after a few levels, resume, compare bytes.
    let first = run(&format!("{args} --checkpoint {ckpt_str} --max-shards 5"));
    assert!(first.contains("sweep incomplete"), "{first}");
    let second = run(&format!("{args} --checkpoint {ckpt_str}"));
    assert!(second.contains("resumed from"), "{second}");
    assert_eq!(std::fs::read(&ckpt).unwrap(), reference_bytes);

    // And the checkpointed result equals the direct (uncheckpointed) run.
    let direct = run(&args);
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("sweep of"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(tail(&second), tail(&direct));

    std::fs::remove_dir_all(&dir).ok();
}
