//! End-to-end acceptance tests for the MRC-driven partitioner, driving
//! the public CLI exactly like the CI smoke flow does:
//!
//! 1. On a two-tenant skewed-vs-uniform `gen:` workload, the solver's
//!    allocation must achieve a **strictly lower simulated** aggregate
//!    miss ratio than an equal split (measured by exact replay, not by
//!    the solver's own prediction).
//! 2. The daemon's `PARTITION` answer must be byte-identical across a
//!    kill/restart, and the offline `symloc partition --checkpoint` path
//!    must reproduce it byte-for-byte.

use symmetric_locality::cli;
use symmetric_locality::core::jsonio::{self, JsonValue};
use symmetric_locality::core::serve::ServeState;
use symmetric_locality::trace::stream::TraceSource;

fn run(args: &[&str]) -> Result<String, String> {
    cli::run(
        &args
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<String>>(),
    )
    .map_err(|e| e.0)
}

/// The acceptance pair: zipf concentrates traffic on a few addresses
/// (steep curve, small working set), random spreads it uniformly
/// (shallow curve, large working set).
const SKEWED: &str = "gen:zipf:512:6000:1.2:7";
const UNIFORM: &str = "gen:random:512:6000:7";

#[test]
fn solver_beats_equal_split_on_skewed_vs_uniform_workloads() {
    let dir = std::env::temp_dir().join(format!("symloc-partition-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Per-tenant curves the way an operator would produce them.
    let mut reports = Vec::new();
    for (name, spec) in [("skewed", SKEWED), ("uniform", UNIFORM)] {
        let report = run(&["trace", "mrc", spec, "--exact", "--json"]).unwrap();
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, report).unwrap();
        reports.push(path.to_string_lossy().to_string());
    }

    let out = run(&[
        "partition",
        "160",
        &reports[0],
        &reports[1],
        "--verify",
        "--json",
    ])
    .unwrap();
    let doc = jsonio::parse(&out).unwrap();
    let verify = doc.get("verify").expect("verify section");
    let solver = verify
        .get("simulated_aggregate_miss_ratio")
        .and_then(JsonValue::as_f64)
        .unwrap();
    let equal = verify
        .get("equal_split_simulated_aggregate_miss_ratio")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        solver < equal,
        "solver's simulated aggregate {solver} must strictly beat the equal split {equal}"
    );
    // The prediction must be in the same regime as the simulation (the
    // curves are exact here, so hull interpolation is the only slack).
    let predicted = doc
        .get("predicted_aggregate_miss_ratio")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        (predicted - solver).abs() < 0.1,
        "predicted {predicted} vs simulated {solver}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_answers_survive_restart_and_match_the_offline_cli() {
    let dir = std::env::temp_dir().join(format!(
        "symloc-partition-e2e-restart-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("serve.ckpt.json");

    // A daemon table with the acceptance workloads streamed in.
    let mut state = ServeState::new(256, 8).unwrap();
    for (name, spec) in [("skewed", SKEWED), ("uniform", UNIFORM)] {
        let source = TraceSource::from_fingerprint(spec).unwrap();
        let block: Vec<u64> = source.stream().unwrap().collect();
        let index = state.ensure_tenant(name).unwrap();
        state.record_block(index, &block);
    }
    let first = state.partition(160).unwrap().render_compact();
    state.note_partition(
        160,
        state.partition(160).unwrap().predicted_aggregate_miss_ratio,
    );
    state.save(&ck).unwrap();

    // Kill/restart: the resumed table answers byte-identically.
    let (resumed, was_resumed) = ServeState::resume_or_new(&ck, 256, 8).unwrap();
    assert!(was_resumed);
    assert_eq!(resumed.partition(160).unwrap().render_compact(), first);

    // The offline CLI reads the same checkpoint and prints the same
    // answer line the daemon would send (minus the wire's `OK ` prefix).
    let out = run(&[
        "partition",
        "160",
        "--checkpoint",
        ck.to_str().unwrap(),
        "--json",
    ])
    .unwrap();
    let doc = jsonio::parse(&out).unwrap();
    assert_eq!(
        doc.get("answer").and_then(JsonValue::as_str),
        Some(first.as_str())
    );
    std::fs::remove_dir_all(&dir).ok();
}
