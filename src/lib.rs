//! # symmetric-locality
//!
//! A Rust implementation of **"Symmetric Locality: Definition and Initial
//! Results"**: the locality theory of data re-traversals `T = A σ(A)` over
//! the symmetric group, together with the substrates needed to measure and
//! exploit it (cache simulation, trace generation, parallel sweeps) and the
//! paper's application studies (deep-learning weight schedules, graph
//! reordering).
//!
//! This facade crate re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`perm`] — the symmetric group: permutations, inversions, Bruhat order,
//!   Mahonian statistics ([`symloc_perm`]).
//! * [`trace`] — memory traces and synthetic generators ([`symloc_trace`]).
//! * [`cache`] — LRU stack / reuse-distance / miss-ratio-curve simulation
//!   ([`symloc_cache`]).
//! * [`par`] — parallel sweep utilities ([`symloc_par`]).
//! * [`core`] — the paper's contribution: Algorithm 1, Theorems 2–4,
//!   ChainFind, feasibility, scheduling, analytics ([`symloc_core`]).
//! * [`dl`] — simulated deep-learning weight-access schedules
//!   ([`symloc_dl`]).
//! * [`graphreorder`] — graph-reordering application ([`symloc_graphreorder`]).
//!
//! # Architecture: scratch workspaces and the sweep engine
//!
//! The analysis stack is layered so that hot loops allocate nothing:
//!
//! * **Kernels** ([`symloc_core::hits`]) — every Algorithm-1 quantity comes
//!   in an allocating flavor (`hit_vector`, `second_pass_distances`,
//!   `rd_histogram`, `mrc`) and a `_with_scratch` flavor that reuses an
//!   [`AnalysisScratch`](symloc_core::hits::AnalysisScratch) workspace
//!   (Fenwick tree + distance/histogram/hit buffers, cleared in place). The
//!   allocating functions are thin wrappers over the kernels, so both
//!   compute byte-identical results.
//! * **Engine** ([`symloc_core::engine::SweepEngine`]) — sweeps over `S_m`
//!   batch per worker: one scratch plus one streaming
//!   [`RankRangeStream`](symloc_perm::iter::RankRangeStream) per chunk of
//!   the rank space, merged lock-free when the workers join
//!   ([`symloc_par::parallel_reduce_chunked`]). One Fenwick pass yields both
//!   the reuse distances and the inversion number, so grouping by Bruhat
//!   level costs nothing extra.
//! * **Consumers** — `sweep`, ChainFind labelings, the constrained
//!   optimizer, epoch chains, the `dl` schedule search, the graph-reorder
//!   scorer and the `symloc` CLI all ride the same two layers.
//!
//! ```
//! use symmetric_locality::core::engine::SweepEngine;
//!
//! // The Figure-1 aggregation for S_6, batched across all cores.
//! let levels = SweepEngine::new(6).exhaustive_levels();
//! assert_eq!(levels.iter().map(|l| l.count).sum::<u64>(), 720);
//! ```
//!
//! # Quickstart
//!
//! ```
//! use symmetric_locality::prelude::*;
//!
//! // The sawtooth re-traversal of six elements has the best locality...
//! let sawtooth = Permutation::reverse(6);
//! assert_eq!(hit_vector(&sawtooth).as_slice(), &[1, 2, 3, 4, 5, 6]);
//!
//! // ...and the cyclic one the worst.
//! let cyclic = Permutation::identity(6);
//! assert_eq!(hit_vector(&cyclic).truncated_sum(), 0);
//!
//! // Theorem 2 ties locality to the inversion number.
//! assert!(theorem2_holds(&sawtooth));
//!
//! // ChainFind walks the Bruhat covering graph toward better locality.
//! let chain = chain_find(&cyclic, &MissRatioLabeling, ChainFindConfig::default());
//! assert!(chain.last().is_reverse());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;

pub use symloc_cache as cache;
pub use symloc_core as core;
pub use symloc_dl as dl;
pub use symloc_graphreorder as graphreorder;
pub use symloc_par as par;
pub use symloc_perm as perm;
pub use symloc_trace as trace;

/// One-stop prelude combining the preludes of every member crate.
pub mod prelude {
    pub use symloc_cache::prelude::*;
    pub use symloc_core::prelude::*;
    pub use symloc_dl::prelude::*;
    pub use symloc_graphreorder::prelude::*;
    pub use symloc_perm::prelude::*;
    pub use symloc_trace::prelude::*;
}
