//! The `symloc` command-line binary: a thin wrapper over
//! [`symmetric_locality::cli`].
//!
//! ```sh
//! cargo run --bin symloc -- help
//! cargo run --bin symloc -- generate sawtooth 8 2 /tmp/saw.trace
//! cargo run --bin symloc -- retraversal /tmp/saw.trace
//! cargo run --bin symloc -- optimize 6 0<1 2<5
//! ```

use std::process::ExitCode;
use symmetric_locality::cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", cli::usage());
            ExitCode::FAILURE
        }
    }
}
