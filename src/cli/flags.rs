//! The declarative flag layer: every `symloc` command is a
//! [`CommandSpec`] table — positionals plus [`FlagSpec`] rows — parsed by
//! one shared parser.
//!
//! The table is the single source of truth per command: it drives parsing
//! (including "needs a value" / "must be a number" / unknown-flag errors,
//! worded identically across commands), the generated `--help` text, and
//! the uniform handling of the shared flags ([`THREADS`], [`SEED`],
//! [`CHECKPOINT`], [`JSON`]) that used to be re-implemented per
//! subcommand.

use super::CliError;

/// Whether a flag consumes a value or is a bare switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlagArity {
    /// `--flag <PLACEHOLDER>`: consumes the next argument.
    Value(&'static str),
    /// `--flag`: consumes nothing.
    Switch,
}

/// One flag row of a command table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlagSpec {
    /// The flag as typed, e.g. `--threads`.
    pub name: &'static str,
    /// Value or switch.
    pub arity: FlagArity,
    /// One-line help text.
    pub help: &'static str,
}

impl FlagSpec {
    /// A value-consuming flag row.
    pub(crate) const fn value(
        name: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> Self {
        FlagSpec {
            name,
            arity: FlagArity::Value(placeholder),
            help,
        }
    }

    /// A bare-switch flag row.
    pub(crate) const fn switch(name: &'static str, help: &'static str) -> Self {
        FlagSpec {
            name,
            arity: FlagArity::Switch,
            help,
        }
    }
}

/// `--threads N` — shared by every parallel command.
pub(crate) const THREADS: FlagSpec = FlagSpec::value(
    "--threads",
    "N",
    "worker threads (default: all hardware threads)",
);

/// `--seed S` — shared by every sampled command.
pub(crate) const SEED: FlagSpec =
    FlagSpec::value("--seed", "S", "RNG seed for sampled runs (default 42)");

/// `--checkpoint FILE` — shared by every resumable command.
pub(crate) const CHECKPOINT: FlagSpec = FlagSpec::value(
    "--checkpoint",
    "FILE",
    "checkpoint file enabling killable/resumable execution",
);

/// `--json` — shared machine-readable output switch.
pub(crate) const JSON: FlagSpec = FlagSpec::switch("--json", "emit a machine-readable JSON report");

/// `--metrics FILE` — shared by every instrumented command: writes the
/// full metrics-registry snapshot next to the report.
pub(crate) const METRICS: FlagSpec = FlagSpec::value(
    "--metrics",
    "FILE",
    "write the full metrics-registry snapshot (JSON) to FILE",
);

/// Writes the registry snapshot to the `--metrics` file when the flag was
/// given — the uniform behavior behind [`METRICS`] across commands.
/// Atomic like checkpoint saves (temp file + rename): a crash mid-write
/// can never leave a truncated snapshot where a parseable one stood.
pub(crate) fn write_metrics(
    path: Option<&str>,
    registry: &symloc_core::obs::MetricsRegistry,
) -> Result<(), CliError> {
    if let Some(path) = path {
        symloc_core::jsonio::save_atomic(std::path::Path::new(path), &registry.to_json())
            .map_err(|e| CliError(format!("cannot write metrics {path}: {e}")))?;
    }
    Ok(())
}

/// Re-indents a rendered JSON document (registry snapshot, heartbeat) so
/// it embeds as a value inside another two-space-indented document.
pub(crate) fn embed_json(doc: &str) -> String {
    doc.trim_end().replace('\n', "\n  ")
}

/// One command's declarative description: its name, summary, positional
/// parameters and flag table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommandSpec {
    /// The full command name as typed, e.g. `trace mrc`.
    pub name: &'static str,
    /// One-line summary for the help header.
    pub summary: &'static str,
    /// The usage line (positionals spelled out).
    pub usage: &'static str,
    /// `(name, help)` rows for the positional parameters.
    pub positionals: &'static [(&'static str, &'static str)],
    /// Accept more positionals than listed (e.g. `optimize`'s constraint
    /// list).
    pub variadic: bool,
    /// The flag table.
    pub flags: &'static [FlagSpec],
}

/// The outcome of parsing a command's argument list against its table.
#[derive(Debug, Clone)]
pub(crate) struct ParsedArgs {
    /// Positional arguments in order.
    pub positionals: Vec<String>,
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
}

impl CommandSpec {
    /// Parses `args` against the table. `Ok(None)` means `--help` was
    /// requested — the caller prints [`CommandSpec::help`].
    pub(crate) fn parse(&self, args: &[String]) -> Result<Option<ParsedArgs>, CliError> {
        if super::help_requested(args) {
            return Ok(None);
        }
        let mut parsed = ParsedArgs {
            positionals: Vec::new(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0usize;
        while i < args.len() {
            let arg = args[i].as_str();
            if let Some(flag) = self.flags.iter().find(|f| f.name == arg) {
                match flag.arity {
                    FlagArity::Switch => {
                        parsed.switches.push(flag.name);
                        i += 1;
                    }
                    FlagArity::Value(_) => {
                        let value = args
                            .get(i + 1)
                            .ok_or_else(|| CliError(format!("{} needs a value", flag.name)))?;
                        parsed.values.push((flag.name, value.clone()));
                        i += 2;
                    }
                }
            } else if arg.starts_with("--") {
                return Err(CliError(format!(
                    "unknown {} flag {arg:?} (try `symloc {} --help`)",
                    self.name, self.name
                )));
            } else {
                if !self.variadic && parsed.positionals.len() >= self.positionals.len() {
                    return Err(CliError(format!(
                        "unexpected argument {arg:?} (try `symloc {} --help`)",
                        self.name
                    )));
                }
                parsed.positionals.push(arg.to_string());
                i += 1;
            }
        }
        Ok(Some(parsed))
    }

    /// The generated help text: summary, usage, positionals, flag table.
    pub(crate) fn help(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "symloc {} — {}", self.name, self.summary);
        let _ = writeln!(out, "\nUSAGE:\n  {}", self.usage);
        if !self.positionals.is_empty() {
            let _ = writeln!(out, "\nARGS:");
            let width = self
                .positionals
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, help) in self.positionals {
                let _ = writeln!(out, "  <{name}>{:w$}  {help}", "", w = width - name.len());
            }
        }
        if !self.flags.is_empty() {
            let _ = writeln!(out, "\nFLAGS:");
            let rendered: Vec<(String, &str)> = self
                .flags
                .iter()
                .map(|f| {
                    let lhs = match f.arity {
                        FlagArity::Value(ph) => format!("{} <{ph}>", f.name),
                        FlagArity::Switch => f.name.to_string(),
                    };
                    (lhs, f.help)
                })
                .collect();
            let width = rendered.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
            for (lhs, help) in rendered {
                let _ = writeln!(out, "  {lhs:width$}  {help}");
            }
        }
        out
    }
}

impl ParsedArgs {
    /// The raw value of a value flag, if present.
    pub(crate) fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when a switch flag was given.
    pub(crate) fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// A value flag parsed as `usize`.
    ///
    /// # Errors
    ///
    /// `"<flag> must be a number"` when present but unparseable.
    pub(crate) fn usize(&self, name: &str) -> Result<Option<usize>, CliError> {
        self.value(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError(format!("{name} must be a number")))
            })
            .transpose()
    }

    /// A value flag parsed as `u64`.
    ///
    /// # Errors
    ///
    /// `"<flag> must be a number"` when present but unparseable.
    pub(crate) fn u64(&self, name: &str) -> Result<Option<u64>, CliError> {
        self.value(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError(format!("{name} must be a number")))
            })
            .transpose()
    }

    /// The `idx`-th positional, or `"<command> needs <what>"`.
    ///
    /// # Errors
    ///
    /// See above.
    pub(crate) fn positional(
        &self,
        idx: usize,
        command: &str,
        what: &str,
    ) -> Result<&str, CliError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("{command} needs {what}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::sargs;

    const TEST_SPEC: CommandSpec = CommandSpec {
        name: "test",
        summary: "a test command",
        usage: "symloc test <x> [flags]",
        positionals: &[("x", "the thing")],
        variadic: false,
        flags: &[THREADS, SEED, CHECKPOINT, JSON],
    };

    #[test]
    fn parses_positionals_flags_and_switches() {
        let parsed = TEST_SPEC
            .parse(&sargs("thing --threads 3 --json --seed 9"))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.positionals, vec!["thing"]);
        assert_eq!(parsed.usize("--threads").unwrap(), Some(3));
        assert_eq!(parsed.u64("--seed").unwrap(), Some(9));
        assert_eq!(parsed.value("--checkpoint"), None);
        assert!(parsed.switch("--json"));
        assert_eq!(parsed.positional(0, "test", "x").unwrap(), "thing");
        assert!(parsed.positional(1, "test", "y").is_err());
    }

    #[test]
    fn rejects_malformed_argument_lists() {
        // Unknown flag, missing value, unparseable value, extra positional.
        assert!(TEST_SPEC.parse(&sargs("x --frobnicate 1")).is_err());
        assert!(TEST_SPEC.parse(&sargs("x --threads")).is_err());
        let parsed = TEST_SPEC.parse(&sargs("x --threads zz")).unwrap().unwrap();
        assert!(parsed.usize("--threads").is_err());
        assert!(TEST_SPEC.parse(&sargs("x y")).is_err());
        // Variadic specs accept the extra positionals instead.
        let variadic = CommandSpec {
            variadic: true,
            ..TEST_SPEC
        };
        let parsed = variadic.parse(&sargs("x y z")).unwrap().unwrap();
        assert_eq!(parsed.positionals.len(), 3);
    }

    #[test]
    fn help_is_generated_from_the_table() {
        assert!(TEST_SPEC.parse(&sargs("x --help")).unwrap().is_none());
        assert!(TEST_SPEC.parse(&sargs("-h")).unwrap().is_none());
        let help = TEST_SPEC.help();
        assert!(help.contains("symloc test — a test command"));
        assert!(help.contains("USAGE"));
        assert!(help.contains("--threads <N>"));
        assert!(help.contains("--json"));
        assert!(help.contains("<x>"));
    }

    #[test]
    fn last_occurrence_of_a_repeated_flag_wins() {
        let parsed = TEST_SPEC
            .parse(&sargs("x --threads 2 --threads 5"))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.usize("--threads").unwrap(), Some(5));
    }
}
