//! `symloc sweep` — exhaustive or stratified-sampled sweeps over `S_m`,
//! resumable through the `core::job` checkpoints.

use super::flags::{
    embed_json, write_metrics, CommandSpec, FlagSpec, CHECKPOINT, JSON, METRICS, SEED, THREADS,
};
use super::{help_requested, CliError};
use std::fmt::Write as _;
use std::path::Path;

use symloc_core::engine::{SweepEngine, SweepLevel, SweepSpec};
use symloc_core::model::CacheModel;
use symloc_core::obs::{MetricsRegistry, Span};
use symloc_core::shard::{SampledSweep, ShardedSweep};
use symloc_par::default_threads;
use symloc_perm::statistics::Statistic;

const STAT: FlagSpec = FlagSpec::value(
    "--stat",
    "NAME",
    "level statistic: inversions, descents, major, displacement",
);
const MODEL: FlagSpec = FlagSpec::value(
    "--model",
    "NAME",
    "cache model: lru, or assoc:WAYS:lru|fifo|plru",
);
const SAMPLES: FlagSpec = FlagSpec::value(
    "--samples",
    "BUDGET",
    "stratified sampling budget (exhaustive sweep otherwise)",
);
const SHARDS: FlagSpec = FlagSpec::value(
    "--shards",
    "K",
    "rank shards for checkpointed exhaustive sweeps (default 8)",
);
const MAX_SHARDS: FlagSpec = FlagSpec::value(
    "--max-shards",
    "N",
    "run at most N shards/levels this invocation (needs --checkpoint)",
);

/// `symloc sweep` command table.
pub(crate) const SWEEP: CommandSpec = CommandSpec {
    name: "sweep",
    summary: "exhaustive or stratified-sampled sweep over S_m (resumable)",
    usage: "symloc sweep <m> [flags]",
    positionals: &[("m", "degree of the symmetric group")],
    variadic: false,
    flags: &[
        STAT, MODEL, THREADS, SAMPLES, SEED, SHARDS, CHECKPOINT, MAX_SHARDS, JSON, METRICS,
    ],
};

/// Options of `symloc sweep`, parsed from its argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// The sweep spec (degree, statistic, cache model).
    pub spec: SweepSpec,
    /// Worker threads.
    pub threads: usize,
    /// `Some(budget)` selects stratified sampling instead of exhaustion.
    pub samples: Option<usize>,
    /// Seed for sampled sweeps.
    pub seed: u64,
    /// Shard count for checkpointed exhaustive sweeps.
    pub shards: usize,
    /// Checkpoint file enabling sharded resumable execution.
    pub checkpoint: Option<String>,
    /// At most this many shards this invocation (`None` = run to the end).
    pub max_shards: Option<usize>,
    /// Emit a machine-readable JSON report instead of the level table.
    pub json: bool,
    /// Write the metrics-registry snapshot (JSON) to this file.
    pub metrics: Option<String>,
}

/// Parses the argument list of `symloc sweep` (everything after the
/// subcommand name).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags, unknown statistic or model
/// names, or an unsupported combination.
pub fn parse_sweep_options(args: &[String]) -> Result<SweepOptions, CliError> {
    let parsed = SWEEP
        .parse(args)?
        .expect("callers handle --help before parsing");
    let m: usize = parsed
        .positional(0, "sweep", "m")?
        .parse()
        .map_err(|_| CliError("m must be a number".into()))?;
    let mut options = SweepOptions {
        spec: SweepSpec::figure1(m),
        threads: parsed.usize(THREADS.name)?.unwrap_or_else(default_threads),
        samples: parsed.usize(SAMPLES.name)?,
        seed: parsed.u64(SEED.name)?.unwrap_or(42),
        shards: parsed.usize(SHARDS.name)?.unwrap_or(8),
        checkpoint: parsed.value(CHECKPOINT.name).map(ToString::to_string),
        max_shards: parsed.usize(MAX_SHARDS.name)?,
        json: parsed.switch(JSON.name),
        metrics: parsed.value(METRICS.name).map(ToString::to_string),
    };
    if let Some(name) = parsed.value(STAT.name) {
        options.spec.statistic = Statistic::parse(name)
            .ok_or_else(|| CliError(format!("unknown statistic {name:?}")))?;
    }
    if let Some(name) = parsed.value(MODEL.name) {
        options.spec.model = CacheModel::parse(name)
            .ok_or_else(|| CliError(format!("unknown cache model {name:?}")))?;
    }
    if options.shards == 0 {
        return Err(CliError("--shards must be positive".into()));
    }
    if options.max_shards.is_some() && options.checkpoint.is_none() {
        return Err(CliError(
            "--max-shards only makes sense with --checkpoint (a bounded \
             partial run needs somewhere to save its progress)"
                .into(),
        ));
    }
    if options.samples.is_none() && options.spec.m > 12 {
        return Err(CliError(format!(
            "m = {} is too large for an exhaustive sweep; pass --samples",
            options.spec.m
        )));
    }
    if options.samples.is_some() && options.spec.m > 34 {
        return Err(CliError(format!(
            "m = {} exceeds the largest supported degree (34: Mahonian \
             weights overflow beyond that)",
            options.spec.m
        )));
    }
    Ok(options)
}

/// Renders the level table of a finished sweep.
pub(crate) fn sweep_report(spec: SweepSpec, levels: &[SweepLevel], sampled: bool) -> String {
    let m = spec.m;
    let mut out = String::new();
    let _ = writeln!(out, "sweep of S_{m} — {}", spec.fingerprint());
    let total: u64 = levels.iter().map(|l| l.count).sum();
    let _ = writeln!(out, "permutations aggregated : {total}");
    let c_mid = (m / 2).max(1);
    let _ = write!(
        out,
        "{:>6} {:>12} {:>12} {:>12}",
        "level",
        "count",
        format!("hits(c={c_mid})"),
        format!("mr(c={c_mid})"),
    );
    // Exhaustive sweeps saw the whole population; only sampled sweeps
    // carry a meaningful standard-error column.
    if sampled {
        let _ = write!(out, " {:>12}", "stderr");
    }
    out.push('\n');
    for level in levels {
        let _ = write!(
            out,
            "{:>6} {:>12} {:>12.4} {:>12.4}",
            level.level,
            level.count,
            level.mean_hits(c_mid),
            level.mean_miss_ratio(c_mid),
        );
        if sampled {
            let _ = write!(out, " {:>12.4}", level.stderr_hits(c_mid));
        }
        out.push('\n');
    }
    out
}

/// Renders a finished sweep as a JSON document (exact integer sums, so the
/// output is loss-free and machine-diffable), with the run's
/// metrics-registry snapshot attached.
pub(crate) fn sweep_json(
    spec: SweepSpec,
    levels: &[SweepLevel],
    sampled: bool,
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"fingerprint\": \"{}\",", spec.fingerprint());
    let _ = writeln!(out, "  \"sampled\": {sampled},");
    let _ = writeln!(out, "  \"complete\": true,");
    out.push_str("  \"levels\": [\n");
    for (i, level) in levels.iter().enumerate() {
        let sep = if i + 1 < levels.len() { "," } else { "" };
        let sums: Vec<String> = level.hit_sums.iter().map(u64::to_string).collect();
        let sq: Vec<String> = level.hit_sq_sums.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "    {{\"level\": {}, \"count\": {}, \"hit_sums\": [{}], \"hit_sq_sums\": [{}]}}{sep}",
            level.level,
            level.count,
            sums.join(", "),
            sq.join(", "),
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// Renders an in-progress checkpointed sweep as a JSON document.
fn sweep_progress_json(
    spec: SweepSpec,
    sampled: bool,
    completed: usize,
    total: usize,
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"fingerprint\": \"{}\",", spec.fingerprint());
    let _ = writeln!(out, "  \"sampled\": {sampled},");
    let _ = writeln!(out, "  \"complete\": false,");
    let _ = writeln!(out, "  \"completed\": {completed},");
    let _ = writeln!(out, "  \"total\": {total},");
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// `symloc sweep <m> [flags]` — generalized sweep over `S_m`: exhaustive
/// (optionally sharded + checkpointed) or Mahonian-weighted stratified
/// sampling, keyed by any statistic, under any cache model.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments, checkpoint I/O errors,
/// or a checkpoint file of a different job kind.
pub fn sweep(args: &[String]) -> Result<String, CliError> {
    if help_requested(args) {
        return Ok(SWEEP.help());
    }
    let options = parse_sweep_options(args)?;
    let spec = options.spec;
    let engine = SweepEngine::with_threads(spec.m, options.threads);
    let mut registry = MetricsRegistry::new();

    if let Some(budget) = options.samples {
        let weights = match spec.statistic {
            Statistic::Descents => "Eulerian",
            Statistic::TotalDisplacement => "footrule",
            _ => "Mahonian",
        };
        let sampling_line = format!(
            "stratified sampling: budget {budget} distributed by {weights} weights (seed {})",
            options.seed
        );

        // Checkpointed sampled sweeps shard the level space: each level's
        // aggregate is deterministic on its own, so completed levels are
        // exact partial progress.
        if let Some(checkpoint) = &options.checkpoint {
            let path = Path::new(checkpoint);
            let (mut sampled, resumed) =
                SampledSweep::resume_or_new(spec, budget, 2, options.seed, options.threads, path)
                    .map_err(CliError)?;
            let already = sampled.completed_count();
            let stale_on_disk = !resumed && path.exists();
            let ran = sampled
                .run_with_checkpoint_metered(
                    path,
                    options.max_shards,
                    Some(&mut registry),
                    |_, _| {},
                )
                .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
            write_metrics(options.metrics.as_deref(), &registry)?;
            if options.json {
                return Ok(match sampled.merged_levels() {
                    Some(levels) => sweep_json(spec, &levels, true, &registry),
                    None => sweep_progress_json(
                        spec,
                        true,
                        sampled.completed_count(),
                        sampled.level_count(),
                        &registry,
                    ),
                });
            }
            let mut out = String::new();
            if resumed {
                let _ = writeln!(
                    out,
                    "resumed from {checkpoint}: {already} of {} levels were already done",
                    sampled.level_count()
                );
            } else if stale_on_disk {
                // A same-kind checkpoint was on disk but did not match this
                // plan — say so, like the trace paths, since the save above
                // already overwrote it.
                let _ = writeln!(
                    out,
                    "warning: existing checkpoint {checkpoint} did not match this sweep \
                     ({}, budget {budget}, seed {}); started fresh and overwrote it",
                    spec.fingerprint(),
                    options.seed
                );
            }
            let _ = writeln!(
                out,
                "ran {ran} level(s); {} of {} complete; checkpoint saved to {checkpoint}",
                sampled.completed_count(),
                sampled.level_count()
            );
            match sampled.merged_levels() {
                Some(levels) => {
                    out.push_str(&sweep_report(spec, &levels, true));
                    let _ = writeln!(out, "{sampling_line}");
                }
                None => {
                    let _ = writeln!(
                        out,
                        "sweep incomplete — re-run the same command to continue from the checkpoint"
                    );
                }
            }
            return Ok(out);
        }

        let span = Span::start();
        let levels =
            engine.sampled_levels_weighted(spec.statistic, spec.model, budget, 2, options.seed);
        registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
        span.record(&mut registry, "sweep.total_nanos");
        write_metrics(options.metrics.as_deref(), &registry)?;
        if options.json {
            return Ok(sweep_json(spec, &levels, true, &registry));
        }
        let mut out = sweep_report(spec, &levels, true);
        let _ = writeln!(out, "{sampling_line}");
        return Ok(out);
    }

    let Some(checkpoint) = &options.checkpoint else {
        let span = Span::start();
        let levels = engine.sweep_levels(spec.statistic, spec.model);
        registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
        span.record(&mut registry, "sweep.total_nanos");
        write_metrics(options.metrics.as_deref(), &registry)?;
        if options.json {
            return Ok(sweep_json(spec, &levels, false, &registry));
        }
        return Ok(sweep_report(spec, &levels, false));
    };

    let path = Path::new(checkpoint);
    let (mut sharded, resumed) =
        ShardedSweep::resume_or_new(spec, options.shards, options.threads, path)
            .map_err(CliError)?;
    let already = sharded.completed_count();
    let stale_on_disk = !resumed && path.exists();
    let ran = sharded
        .run_with_checkpoint_metered(path, options.max_shards, Some(&mut registry), |_, _| {})
        .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
    write_metrics(options.metrics.as_deref(), &registry)?;
    if options.json {
        return Ok(match sharded.merged_levels() {
            Some(levels) => sweep_json(spec, &levels, false, &registry),
            None => sweep_progress_json(
                spec,
                false,
                sharded.completed_count(),
                sharded.shard_count(),
                &registry,
            ),
        });
    }
    let mut out = String::new();
    if resumed {
        let _ = writeln!(
            out,
            "resumed from {checkpoint}: {already} of {} shards were already done",
            sharded.shard_count()
        );
    } else if stale_on_disk {
        let _ = writeln!(
            out,
            "warning: existing checkpoint {checkpoint} did not match this sweep \
             ({}, {} shards); started fresh and overwrote it",
            spec.fingerprint(),
            options.shards
        );
    }
    let _ = writeln!(
        out,
        "ran {ran} shard(s); {} of {} complete; checkpoint saved to {checkpoint}",
        sharded.completed_count(),
        sharded.shard_count()
    );
    match sharded.merged_levels() {
        Some(levels) => out.push_str(&sweep_report(spec, &levels, false)),
        None => {
            let _ = writeln!(
                out,
                "sweep incomplete — re-run the same command to continue from the checkpoint"
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::sargs;
    use symloc_core::jsonio::{self, JsonValue};

    #[test]
    fn sweep_option_parsing() {
        let options = parse_sweep_options(&sargs(
            "6 --stat major --model assoc:2:fifo --threads 3 --shards 5",
        ))
        .unwrap();
        assert_eq!(options.spec.m, 6);
        assert_eq!(options.spec.statistic, Statistic::MajorIndex);
        assert_eq!(options.spec.model.name(), "set_assoc:2:fifo");
        assert_eq!(options.threads, 3);
        assert_eq!(options.shards, 5);
        assert!(!options.json);
        assert!(parse_sweep_options(&sargs("")).is_err());
        assert!(parse_sweep_options(&sargs("x")).is_err());
        assert!(parse_sweep_options(&sargs("5 --stat bogus")).is_err());
        assert!(parse_sweep_options(&sargs("5 --model bogus")).is_err());
        assert!(parse_sweep_options(&sargs("5 --shards 0")).is_err());
        assert!(parse_sweep_options(&sargs("5 --frobnicate 1")).is_err());
        assert!(parse_sweep_options(&sargs("5 --stat")).is_err());
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat descents")).is_ok());
        // Every statistic has a stratified sampler now.
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat major")).is_ok());
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat displacement")).is_ok());
        // Sampled sweeps checkpoint too (level shards).
        assert!(parse_sweep_options(&sargs("5 --samples 10 --checkpoint x.json")).is_ok());
        assert!(parse_sweep_options(&sargs("5 --max-shards 2")).is_err());
        assert!(parse_sweep_options(&sargs("13")).is_err());
        assert!(parse_sweep_options(&sargs("13 --samples 100")).is_ok());
        assert!(parse_sweep_options(&sargs("35 --samples 100")).is_err());
        assert!(parse_sweep_options(&sargs("5 --json")).unwrap().json);
    }

    #[test]
    fn sweep_reports_exhaustive_sampled_and_models() {
        let report = sweep(&sargs("5 --threads 2")).unwrap();
        assert!(report.contains("m=5;stat=inversions;model=lru_stack"));
        assert!(report.contains("permutations aggregated : 120"));
        let by_descents = sweep(&sargs("5 --stat descents --model assoc:2:fifo")).unwrap();
        assert!(by_descents.contains("model=set_assoc:2:fifo"));
        assert!(by_descents.contains("permutations aggregated : 120"));
        let sampled = sweep(&sargs("8 --samples 300 --seed 7")).unwrap();
        assert!(sampled.contains("budget 300 distributed by Mahonian weights"));
    }

    #[test]
    fn sweep_json_output_parses_and_is_exact() {
        let report = sweep(&sargs("5 --json")).unwrap();
        let doc = jsonio::parse(&report).unwrap();
        assert_eq!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            Some("m=5;stat=inversions;model=lru_stack")
        );
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(true)));
        let levels = doc.get("levels").and_then(JsonValue::as_array).unwrap();
        assert_eq!(levels.len(), 11);
        let total: u64 = levels
            .iter()
            .map(|l| l.get("count").and_then(JsonValue::as_u64).unwrap())
            .sum();
        assert_eq!(total, 120);
        // Sampled runs carry the sampled marker.
        let sampled = sweep(&sargs("6 --samples 60 --json")).unwrap();
        let doc = jsonio::parse(&sampled).unwrap();
        assert_eq!(doc.get("sampled"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn sweep_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_sweep_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // First invocation runs 2 of 4 shards and stops.
        let first = sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 2 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(first.contains("2 of 4 complete"));
        assert!(first.contains("sweep incomplete"));

        // A --json probe of the incomplete state reports progress.
        let probe = sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 0 --checkpoint {path_str} --json"
        )))
        .unwrap();
        let doc = jsonio::parse(&probe).unwrap();
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(2));

        // Second invocation resumes and finishes.
        let second = sweep(&sargs(&format!("6 --shards 4 --checkpoint {path_str}"))).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("4 of 4 complete"));
        assert!(second.contains("permutations aggregated : 720"));

        // The checkpointed result equals the direct sweep.
        let direct = sweep(&sargs("6")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_sampled_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_sampled_sweep_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // First invocation runs a few levels and stops.
        let first = sweep(&sargs(&format!(
            "7 --samples 200 --seed 3 --max-shards 5 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(first.contains("of 22 complete"), "{first}");
        assert!(first.contains("sweep incomplete"));

        // Second invocation resumes and finishes.
        let second = sweep(&sargs(&format!(
            "7 --samples 200 --seed 3 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("22 of 22 complete"));

        // The checkpointed result equals the direct sampled sweep.
        let direct = sweep(&sargs("7 --samples 200 --seed 3")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cross_kind_checkpoints_are_loud_errors() {
        // Run a *sampled* sweep checkpoint, then point the exhaustive
        // sweep at it: the CLI must surface the kind-mismatch error.
        let path = std::env::temp_dir().join(format!(
            "symloc_cli_sweep_crosskind_{}.json",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();
        sweep(&sargs(&format!(
            "6 --samples 50 --max-shards 2 --checkpoint {path_str}"
        )))
        .unwrap();
        let err = sweep(&sargs(&format!("6 --checkpoint {path_str}"))).unwrap_err();
        assert!(err.to_string().contains("sampled"), "{err}");
        assert!(err.to_string().contains("symloc job resume"), "{err}");
        // And the reverse direction.
        std::fs::remove_file(&path).ok();
        sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 1 --checkpoint {path_str}"
        )))
        .unwrap();
        let err = sweep(&sargs(&format!("6 --samples 50 --checkpoint {path_str}"))).unwrap_err();
        assert!(err.to_string().contains("exhaustive"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
