//! The `symloc` command-line tool.
//!
//! A small driver over the library for people who have a trace file and want
//! answers without writing Rust:
//!
//! ```text
//! symloc analyze <trace-file>                 locality report of any trace
//! symloc retraversal <trace-file>             interpret a trace as T = A σ(A)
//! symloc generate <kind> <m> <epochs> [file]  emit a synthetic trace
//! symloc optimize <m> [a<b ...]               best feasible re-traversal order
//! symloc sweep <m> [flags]                    (resumable) sweeps over S_m
//! symloc trace <mrc|convert|index> ...        streaming trace analysis
//! symloc job <status|resume> <checkpoint>     inspect/continue any checkpoint
//! symloc serve [--stdin|--port P] ...         multi-tenant online-MRC daemon
//! symloc partition <budget> ...               MRC-driven cache partitioner
//! ```
//!
//! The layer is **declarative**: every command is described by a
//! `CommandSpec` table (positionals + `FlagSpec` rows, `src/cli/flags.rs`),
//! and one shared parser handles the common flags — `--threads`, `--seed`,
//! `--checkpoint`, `--json` — uniformly across commands, generates each
//! command's `--help` text from the table, and rejects unknown flags with a
//! pointer to it. Command implementations live in per-command modules
//! (`basic`, `sweep`, `tracecmd`, `job`) and return their report as a
//! `String` (unit-tested that way); the thin binary in `src/bin/symloc.rs`
//! only parses `std::env::args` and prints.

mod basic;
mod flags;
mod job;
mod partition;
mod serve;
mod sweep;
mod tracecmd;

pub use basic::{
    analyze_file, analyze_trace, generate, optimize, retraversal_file, retraversal_trace_report,
};
pub use job::job;
pub use partition::partition;
pub use serve::serve;
pub use sweep::{parse_sweep_options, sweep, SweepOptions};
pub use tracecmd::{
    parse_trace_mrc_options, trace, trace_convert, trace_index, trace_mrc, TraceMrcOptions,
};

/// Errors reported by the CLI, already formatted for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
#[must_use]
pub fn usage() -> String {
    "symloc — symmetric-locality trace analysis\n\
     \n\
     USAGE:\n\
     \x20 symloc analyze <trace-file>\n\
     \x20 symloc retraversal <trace-file>\n\
     \x20 symloc generate <cyclic|sawtooth|random> <m> <epochs> [out-file]\n\
     \x20 symloc optimize <m> [a<b ...]      (each a<b is a precedence constraint)\n\
     \x20 symloc sweep <m> [--stat <inversions|descents|major|displacement>]\n\
     \x20              [--model <lru|assoc:WAYS:lru|fifo|plru>] [--threads N]\n\
     \x20              [--samples BUDGET --seed S]          (stratified sampling)\n\
     \x20              [--shards K] [--checkpoint FILE [--max-shards N]] [--json]\n\
     \x20              (resumable: rank shards when exhaustive, level shards\n\
     \x20              when sampled)\n\
     \x20 symloc trace mrc <file|gen:...> [--exact] [--sample S_MAX]\n\
     \x20              [--shards N] [--threads N] [--points K] [--json]\n\
     \x20              [--checkpoint FILE [--max-chunks N]]  (resumable ingest;\n\
     \x20              with --sample, --shards N partitions the hash space;\n\
     \x20              --exact --sample together = one fused pass, both curves)\n\
     \x20 symloc trace convert <file|gen:...> <out-file> [--index N]\n\
     \x20              (.sltr <-> text, streaming; both formats also get a\n\
     \x20              seekable .idx chunk index — interval N, 0 = none)\n\
     \x20 symloc trace index <file> [--interval N]\n\
     \x20              (build the seekable sidecar index for an existing file)\n\
     \x20 symloc job status <checkpoint> [--json]\n\
     \x20 symloc job resume <checkpoint> [--threads N] [--max-units N] [--json]\n\
     \x20              (dispatches on the checkpoint's recorded job kind;\n\
     \x20              --json emits a machine-readable completion report)\n\
     \x20 symloc serve [--stdin | --port P] [--budget S] [--max-tenants N]\n\
     \x20              [--checkpoint FILE [--save-every N]] [--metrics FILE]\n\
     \x20              (line-framed multi-tenant online-MRC daemon; killable,\n\
     \x20              resumes every tenant byte-identically from its checkpoint)\n\
     \x20 symloc partition <budget> [report.json ...] [--checkpoint FILE]\n\
     \x20              [--points K] [--floor N] [--cap N] [--verify] [--json]\n\
     \x20              (split a cache budget across tenant MRCs — from trace-mrc\n\
     \x20              JSON reports or a serve checkpoint — minimizing the\n\
     \x20              traffic-weighted aggregate miss ratio; --verify replays\n\
     \x20              the traces and reports predicted vs simulated)\n\
     \n\
     Per-command details: symloc <command> --help\n\
     \n\
     Trace sources: a plain-text file (one address per line), a binary\n\
     .sltr file, or a generator spec gen:<kind>:<params> with kinds\n\
     cyclic:<m>:<epochs>, sawtooth:<m>:<epochs>, strided:<m>:<stride>:<epochs>,\n\
     tiled:<m>:<tile>:<epochs>, random:<m>:<len>:<seed>, zipf:<m>:<len>:<s>:<seed>.\n"
        .to_string()
}

/// True when the argument list asks for help.
pub(crate) fn help_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// Dispatches a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the problem; the caller prints it along
/// with [`usage`].
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let Some(parsed) = basic::ANALYZE.parse(&args[1..])? else {
                return Ok(basic::ANALYZE.help());
            };
            analyze_file(parsed.positional(0, "analyze", "a trace file")?)
        }
        Some("retraversal") => {
            let Some(parsed) = basic::RETRAVERSAL.parse(&args[1..])? else {
                return Ok(basic::RETRAVERSAL.help());
            };
            retraversal_file(parsed.positional(0, "retraversal", "a trace file")?)
        }
        Some("generate") => {
            let Some(parsed) = basic::GENERATE.parse(&args[1..])? else {
                return Ok(basic::GENERATE.help());
            };
            let kind = parsed.positional(0, "generate", "a kind")?;
            let m: usize = parsed
                .positional(1, "generate", "m")?
                .parse()
                .map_err(|_| CliError("m must be a number".into()))?;
            let epochs: usize = parsed
                .positional(2, "generate", "an epoch count")?
                .parse()
                .map_err(|_| CliError("epochs must be a number".into()))?;
            generate(
                kind,
                m,
                epochs,
                parsed.positionals.get(3).map(String::as_str),
            )
        }
        Some("optimize") => {
            let Some(parsed) = basic::OPTIMIZE.parse(&args[1..])? else {
                return Ok(basic::OPTIMIZE.help());
            };
            let m: usize = parsed
                .positional(0, "optimize", "m")?
                .parse()
                .map_err(|_| CliError("m must be a number".into()))?;
            optimize(m, &parsed.positionals[1..])
        }
        Some("sweep") => sweep(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("job") => job(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("partition") => partition(&args[1..]),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(CliError(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
pub(crate) fn sargs(spec: &str) -> Vec<String> {
    spec.split_whitespace().map(ToString::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_trace::generators::{cyclic_trace, sawtooth_trace};
    use symloc_trace::io::read_trace;

    #[test]
    fn usage_and_help() {
        assert!(usage().contains("symloc"));
        assert_eq!(run(&[]).unwrap(), usage());
        assert_eq!(run(&["help".to_string()]).unwrap(), usage());
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn every_command_answers_help() {
        for command in [
            "analyze",
            "retraversal",
            "generate",
            "optimize",
            "sweep",
            "trace",
            "trace mrc",
            "trace convert",
            "trace index",
            "job",
            "job status",
            "job resume",
            "serve",
            "partition",
        ] {
            let help = run(&sargs(&format!("{command} --help")))
                .unwrap_or_else(|e| panic!("`symloc {command} --help` failed: {e}"));
            assert!(help.contains("USAGE"), "{command}: {help}");
        }
        // Shared flags are documented by the generated help.
        let sweep_help = run(&sargs("sweep --help")).unwrap();
        for flag in ["--threads", "--seed", "--checkpoint", "--json"] {
            assert!(sweep_help.contains(flag), "{sweep_help}");
        }
    }

    #[test]
    fn run_dispatches_each_command() {
        // generate to a temp file, then analyze + retraversal it.
        let path = std::env::temp_dir().join("symloc_cli_run_test.trace");
        let path_str = path.to_string_lossy().to_string();
        let gen = run(&[
            "generate".to_string(),
            "sawtooth".to_string(),
            "6".to_string(),
            "2".to_string(),
            path_str.clone(),
        ])
        .unwrap();
        assert!(gen.contains("wrote"));
        let analyze = run(&["analyze".to_string(), path_str.clone()]).unwrap();
        assert!(analyze.contains("footprint           : 6"));
        let rt = run(&["retraversal".to_string(), path_str.clone()]).unwrap();
        assert!(rt.contains("[6 5 4 3 2 1]"));
        std::fs::remove_file(&path).ok();
        // Missing arguments are reported.
        assert!(run(&["analyze".to_string()]).is_err());
        assert!(run(&["retraversal".to_string()]).is_err());
        assert!(run(&["generate".to_string()]).is_err());
        assert!(run(&["generate".to_string(), "cyclic".to_string()]).is_err());
        assert!(run(&["optimize".to_string()]).is_err());
        assert!(run(&["optimize".to_string(), "abc".to_string()]).is_err());
        assert!(run(&["sweep".to_string(), "4".to_string()])
            .unwrap()
            .contains("permutations aggregated : 24"));
        assert!(run(&["sweep".to_string()]).is_err());
        assert!(run(&["analyze".to_string(), "/no/such/file".to_string()]).is_err());
        assert!(run(&["job".to_string()]).is_err());
        // The basic commands go through the declarative parser too:
        // unknown flags and extra positionals are uniform errors now.
        assert!(run(&sargs("analyze a.trace --bogus")).is_err());
        assert!(run(&sargs("analyze a.trace b.trace")).is_err());
        assert!(run(&sargs("generate cyclic 4 2 out.trace extra")).is_err());
    }

    #[test]
    fn generate_and_read_back() {
        let path = std::env::temp_dir().join("symloc_cli_generate_mod_test.trace");
        let path_str = path.to_string_lossy().to_string();
        let to_file = generate("cyclic", 5, 3, Some(&path_str)).unwrap();
        assert!(to_file.contains("wrote"));
        let back = read_trace(&path).unwrap();
        assert_eq!(back, cyclic_trace(5, 3));
        std::fs::remove_file(&path).ok();
        let _ = sawtooth_trace(2, 1); // keep the import exercised
    }
}
