//! `symloc serve` — the multi-tenant online-MRC daemon.
//!
//! Accepts live access streams over the line-framed wire protocol
//! (`symloc_trace::wire`), demultiplexes them into per-tenant
//! [`symloc_core::tracesweep::ShardsEstimator`]s inside a [`ServeState`],
//! and answers `MRC` / `MRCJ` /
//! `WSS` / `STATS` / `PARTITION` queries from any connection. Two
//! transports share one session engine:
//!
//! * `--stdin`: a single session over standard input, responses
//!   accumulated into the command's report — the deterministic shape the
//!   tests drive.
//! * `--port P`: a TCP listener (`127.0.0.1`, `0` = ephemeral; the bound
//!   address is printed immediately), thread per connection, state behind
//!   one mutex. `SIGTERM`/`SIGINT` save the checkpoint and exit cleanly.
//!
//! With `--checkpoint`, the tenant table persists through the
//! [`JobKind::ServeState`] codec: saves are atomic, every save refreshes
//! a [`Heartbeat`] liveness sidecar (`symloc job status` reads it), and a
//! restarted daemon resumes every tenant byte-identically — queries
//! answer from persisted state only, so an answer straddling a restart
//! never changes.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use std::fmt::Write as _;

use symloc_core::job::{Heartbeat, JobKind};
use symloc_core::obs::{Metric, MetricsRegistry, Span};
use symloc_core::serve::ServeState;
use symloc_core::tracesweep::MrcPoint;
use symloc_trace::stream::AccessSink;
use symloc_trace::wire::{parse_request, AccessBatcher, Request};

use super::flags::{CommandSpec, FlagSpec, CHECKPOINT, METRICS};
use super::CliError;

/// `--port P`: listen on 127.0.0.1:P (0 = ephemeral).
const PORT: FlagSpec = FlagSpec::value(
    "--port",
    "P",
    "listen on 127.0.0.1:P (0 picks an ephemeral port; the bound address is printed)",
);

/// `--stdin`: one session over standard input.
const STDIN: FlagSpec = FlagSpec::switch(
    "--stdin",
    "serve a single session over stdin and return its responses (for tests/pipes)",
);

/// `--budget S`: per-tenant SHARDS budget.
const BUDGET: FlagSpec = FlagSpec::value(
    "--budget",
    "S",
    "per-tenant SHARDS budget s_max (default 1024; memory is O(budget) per tenant)",
);

/// `--max-tenants N`: tenant-table cap.
const MAX_TENANTS: FlagSpec = FlagSpec::value(
    "--max-tenants",
    "N",
    "hard cap on tenant keyspaces; HELLOs beyond it are rejected loudly (default 64)",
);

/// `--save-every N`: checkpoint cadence in accesses.
const SAVE_EVERY: FlagSpec = FlagSpec::value(
    "--save-every",
    "N",
    "checkpoint after every N streamed accesses (default 100000; 0 = only on SAVE/shutdown)",
);

/// The declarative table for `symloc serve`.
pub(crate) const SERVE: CommandSpec = CommandSpec {
    name: "serve",
    summary: "multi-tenant online-MRC daemon over a line-framed protocol",
    usage: "symloc serve [--stdin | --port P] [--budget S] [--max-tenants N]\n  \
            [--checkpoint FILE] [--save-every N] [--metrics FILE]",
    positionals: &[],
    variadic: false,
    flags: &[
        PORT,
        STDIN,
        BUDGET,
        MAX_TENANTS,
        CHECKPOINT,
        SAVE_EVERY,
        METRICS,
    ],
};

/// Set by the SIGTERM/SIGINT handler; the accept loop and every
/// connection thread poll it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" fn on_term(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    // Declared directly against libc (which std already links) so the
    // offline workspace needs no new dependency; the handler only touches
    // an atomic, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: unsafe extern "C" fn(i32)) -> usize;
    }
    // SIGTERM = 15, SIGINT = 2 on every unix this builds for.
    unsafe {
        signal(15, on_term);
        signal(2, on_term);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// The daemon behind the transports: the tenant table plus persistence
/// policy. TCP mode wraps it in a mutex; stdin mode owns it directly.
struct Daemon {
    state: ServeState,
    checkpoint: Option<PathBuf>,
    save_every: u64,
    since_save: u64,
    run_span: Span,
}

impl Daemon {
    /// Saves the checkpoint (when configured) and refreshes the liveness
    /// sidecar. Every save is atomic and bumps the `serve.saves` counter.
    fn save_now(&mut self) -> Result<Option<String>, String> {
        let Some(path) = self.checkpoint.clone() else {
            return Ok(None);
        };
        self.state.note_save();
        self.state
            .save(&path)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        self.since_save = 0;
        // Liveness sidecar: reuse the JobRunner heartbeat codec so
        // `symloc job status` reports the daemon as live. Best-effort,
        // exactly like the runner's own sidecar writes.
        let _ = std::fs::write(Heartbeat::sidecar_path(&path), self.heartbeat().to_json());
        Ok(Some(path.display().to_string()))
    }

    /// The daemon's liveness heartbeat. A daemon has no planned end, so
    /// completed = total = tenants and there is never an ETA.
    fn heartbeat(&self) -> Heartbeat {
        Heartbeat {
            job_kind: JobKind::ServeState,
            fingerprint: self.state.fingerprint(),
            completed: self.state.tenant_count(),
            total: self.state.tenant_count(),
            batches: self.state.saves(),
            items: Some(("accesses".to_string(), self.state.total_accesses())),
            elapsed_secs: self.run_span.elapsed_secs(),
            units_per_sec: 0.0,
            instant_units_per_sec: 0.0,
            eta_secs: None,
        }
    }

    /// Streams `block` into `tenant` and saves when the cadence says so.
    fn record(&mut self, tenant: &str, block: &[u64]) -> Result<(), String> {
        let index = self.state.ensure_tenant(tenant)?;
        self.state.record_block(index, block);
        self.since_save += block.len() as u64;
        if self.save_every > 0 && self.since_save >= self.save_every {
            self.save_now()?;
        }
        Ok(())
    }

    /// Removes the liveness sidecar — the daemon is no longer live.
    fn retire_heartbeat(&self) {
        if let Some(path) = &self.checkpoint {
            let _ = std::fs::remove_file(Heartbeat::sidecar_path(path));
        }
    }
}

/// The sink a flush drives: one resolved tenant of the table. Built
/// under the lock after index resolution, used for exactly one block
/// delivery — tenant insertion invalidates indices, so it never outlives
/// the flush.
struct TenantSink<'a> {
    daemon: &'a mut Daemon,
    tenant: &'a str,
    error: Option<String>,
}

impl AccessSink for TenantSink<'_> {
    fn on_access(&mut self, addr: u64) {
        self.on_block(&[addr]);
    }

    fn on_block(&mut self, block: &[u64]) {
        if self.error.is_none() {
            self.error = self.daemon.record(self.tenant, block).err();
        }
    }
}

/// One connection's framing state: the bound tenant and its batcher.
struct Session {
    tenant: Option<String>,
    batcher: AccessBatcher,
}

impl Session {
    fn new() -> Session {
        Session {
            tenant: None,
            batcher: AccessBatcher::new(),
        }
    }

    /// Delivers everything buffered to the bound tenant.
    fn flush(&mut self, daemon: &mut Daemon) -> Result<(), String> {
        if self.batcher.pending() == 0 {
            return Ok(());
        }
        let tenant = self.tenant.as_deref().unwrap_or_default().to_string();
        let mut sink = TenantSink {
            daemon,
            tenant: &tenant,
            error: None,
        };
        self.batcher.flush(&mut sink);
        match sink.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// What the session loop should do with a handled line.
enum Action {
    /// Silent success (an access line).
    Silent,
    /// Answer with one response line.
    Reply(String),
    /// Answer, then close the connection.
    Close(String),
}

fn err_line(reason: &str) -> String {
    format!("ERR {reason}")
}

/// Renders one tenant's MRC answer. Derived from persisted estimator
/// state only (histogram + log-spaced grid), so a daemon restarted from
/// its checkpoint renders the byte-identical line.
fn mrc_line(tenant: &str, points: &[MrcPoint]) -> String {
    let mut line = format!("OK mrc {tenant} {}", points.len());
    for p in points {
        let _ = write!(line, " {}:{}", p.cache_size, p.miss_ratio);
    }
    line
}

/// Renders a metrics registry as one `name=value` line (name-sorted, so
/// deterministic; histograms report their sample count).
fn stats_line(scope: &str, registry: &MetricsRegistry) -> String {
    let mut line = format!("OK stats {scope}");
    for (name, metric) in registry.iter() {
        match metric {
            Metric::Counter(v) => {
                let _ = write!(line, " {name}={v}");
            }
            Metric::Gauge(v) => {
                let _ = write!(line, " {name}={v}");
            }
            Metric::Histogram(h) => {
                let _ = write!(line, " {name}=count:{}", h.count());
            }
        }
    }
    line
}

/// Handles one protocol line against the daemon. Accesses batch locally
/// in the session and only touch the daemon on block boundaries; every
/// query flushes first so answers always reflect the full stream so far.
fn handle_line(daemon: &Mutex<Daemon>, session: &mut Session, line: &str) -> Action {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(reason) => return Action::Reply(err_line(&reason)),
    };
    match request {
        // Comment lines never touch the daemon — a piped text trace's
        // header costs no lock traffic.
        Request::Comment => Action::Silent,
        Request::Access(addr) => {
            if session.tenant.is_none() {
                return Action::Reply(err_line("no tenant bound (send HELLO <tenant> first)"));
            }
            if session.batcher.push(addr) {
                let mut daemon = daemon.lock().unwrap();
                if let Err(reason) = session.flush(&mut daemon) {
                    return Action::Reply(err_line(&reason));
                }
            }
            Action::Silent
        }
        _ => {
            let mut daemon = daemon.lock().unwrap();
            if let Err(reason) = session.flush(&mut daemon) {
                return Action::Reply(err_line(&reason));
            }
            match request {
                Request::Access(_) | Request::Comment => unreachable!("handled above"),
                Request::Hello(tenant) => match daemon.state.ensure_tenant(tenant) {
                    Ok(_) => {
                        session.tenant = Some(tenant.to_string());
                        Action::Reply(format!("OK tenant {tenant}"))
                    }
                    Err(reason) => Action::Reply(err_line(&reason)),
                },
                Request::Mrc { tenant, points } => {
                    match daemon.state.mrc(tenant, points.unwrap_or(16)) {
                        Ok(points) => Action::Reply(mrc_line(tenant, &points)),
                        Err(reason) => Action::Reply(err_line(&reason)),
                    }
                }
                Request::Mrcj { tenant, points } => {
                    match daemon.state.mrcj_line(tenant, points.unwrap_or(16)) {
                        Ok(doc) => Action::Reply(format!("OK mrcj {tenant} {doc}")),
                        Err(reason) => Action::Reply(err_line(&reason)),
                    }
                }
                Request::Partition(budget) => match daemon.state.partition(budget) {
                    Ok(solution) => {
                        daemon
                            .state
                            .note_partition(budget, solution.predicted_aggregate_miss_ratio);
                        Action::Reply(format!("OK {}", solution.render_compact()))
                    }
                    Err(reason) => Action::Reply(err_line(&reason)),
                },
                Request::Wss(tenant) => match daemon.state.wss(tenant) {
                    Ok(wss) => Action::Reply(format!("OK wss {tenant} {wss}")),
                    Err(reason) => Action::Reply(err_line(&reason)),
                },
                Request::Stats(tenant) => match tenant {
                    Some(tenant) => match daemon.state.tenant_metrics(tenant) {
                        Ok(registry) => Action::Reply(stats_line(tenant, &registry)),
                        Err(reason) => Action::Reply(err_line(&reason)),
                    },
                    None => {
                        let registry = daemon.state.fleet_metrics();
                        Action::Reply(stats_line("fleet", &registry))
                    }
                },
                Request::Save => match daemon.save_now() {
                    Ok(Some(path)) => Action::Reply(format!(
                        "OK saved {path} tenants {}",
                        daemon.state.tenant_count()
                    )),
                    Ok(None) => Action::Reply(err_line(
                        "no checkpoint configured (start with --checkpoint FILE)",
                    )),
                    Err(reason) => Action::Reply(err_line(&reason)),
                },
                Request::Ping => Action::Reply("OK pong".to_string()),
                Request::Quit => Action::Close("OK bye".to_string()),
            }
        }
    }
}

/// Flushes a session's tail into the daemon at connection close.
fn close_session(daemon: &Mutex<Daemon>, session: &mut Session) {
    let mut daemon = daemon.lock().unwrap();
    let _ = session.flush(&mut daemon);
}

/// The shutdown report both transports return.
fn summary(daemon: &Daemon, saved: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} tenant(s), {} access(es), {} rejected HELLO(s), {} partition answer(s)",
        daemon.state.tenant_count(),
        daemon.state.total_accesses(),
        daemon.state.rejected(),
        daemon.state.partitions()
    );
    for tenant in daemon.state.tenants() {
        let _ = writeln!(
            out,
            "  {:24} {:>12} accesses  wss ~{:.0}",
            tenant.name(),
            tenant.accesses(),
            tenant.estimator().estimated_footprint()
        );
    }
    match saved {
        Some(path) => {
            let _ = writeln!(out, "checkpoint saved to {path}");
        }
        None => {
            let _ = writeln!(out, "no checkpoint configured — tenant state not persisted");
        }
    }
    out
}

/// Runs one session over a reader, collecting responses. The stdin
/// transport and the unit tests drive this directly.
fn run_stdin_session(daemon: &Mutex<Daemon>, reader: impl BufRead) -> Result<String, CliError> {
    let mut session = Session::new();
    let mut out = String::new();
    for line in reader.lines() {
        let line = line.map_err(|e| CliError(format!("cannot read stream: {e}")))?;
        match handle_line(daemon, &mut session, &line) {
            Action::Silent => {}
            Action::Reply(reply) => {
                let _ = writeln!(out, "{reply}");
            }
            Action::Close(reply) => {
                let _ = writeln!(out, "{reply}");
                break;
            }
        }
    }
    close_session(daemon, &mut session);
    Ok(out)
}

/// One TCP connection: line in, response line out, until QUIT/EOF/
/// shutdown. Read timeouts keep the thread polling the shutdown flag.
fn run_tcp_session(daemon: &Arc<Mutex<Daemon>>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut session = Session::new();
    let mut line = String::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let trimmed = line.trim_end_matches('\n');
                match handle_line(daemon, &mut session, trimmed) {
                    Action::Silent => {}
                    Action::Reply(reply) => {
                        if writeln!(writer, "{reply}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                    }
                    Action::Close(reply) => {
                        let _ = writeln!(writer, "{reply}");
                        let _ = writer.flush();
                        break;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    close_session(daemon, &mut session);
}

/// The TCP transport: accept loop + thread per connection, until a
/// termination signal. Returns the daemon for the caller's final save
/// and report.
fn run_tcp(daemon: Daemon, port: u16) -> Result<Daemon, CliError> {
    install_signal_handlers();
    SHUTDOWN.store(false, Ordering::SeqCst);
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| CliError(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError(format!("cannot read bound address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError(format!("cannot configure listener: {e}")))?;
    // Announce the bound address immediately (stdout, flushed): with
    // --port 0 this line is how callers discover the ephemeral port.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let daemon = Arc::new(Mutex::new(daemon));
    let mut workers = Vec::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let daemon = Arc::clone(&daemon);
                workers.push(std::thread::spawn(move || run_tcp_session(&daemon, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(CliError(format!("accept failed: {e}"))),
        }
        workers.retain(|w| !w.is_finished());
    }
    for worker in workers {
        let _ = worker.join();
    }
    Ok(Arc::try_unwrap(daemon)
        .map_err(|_| CliError("connection thread leaked past join".to_string()))?
        .into_inner()
        .unwrap())
}

/// Entry point for `symloc serve`.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid flags, an unusable checkpoint, or
/// transport failures.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let Some(parsed) = SERVE.parse(args)? else {
        return Ok(SERVE.help());
    };
    let budget = parsed.usize(BUDGET.name)?.unwrap_or(1024);
    let max_tenants = parsed.usize(MAX_TENANTS.name)?.unwrap_or(64);
    let save_every = parsed.u64(SAVE_EVERY.name)?.unwrap_or(100_000);
    let checkpoint = parsed.value(CHECKPOINT.name).map(PathBuf::from);
    let metrics_path = parsed.value(METRICS.name).map(ToString::to_string);
    let stdin_mode = parsed.switch(STDIN.name);
    let port = parsed.u64(PORT.name)?;
    if stdin_mode && port.is_some() {
        return Err(CliError("--stdin and --port are mutually exclusive".into()));
    }
    let port = match port {
        Some(p) => u16::try_from(p).map_err(|_| CliError("--port must fit in 16 bits".into()))?,
        None if stdin_mode => 0,
        None => {
            return Err(CliError(
                "serve needs a transport: --stdin or --port P (0 = ephemeral)".into(),
            ))
        }
    };

    let (state, resumed) = match &checkpoint {
        Some(path) => ServeState::resume_or_new(path, budget, max_tenants).map_err(CliError)?,
        None => (
            ServeState::new(budget, max_tenants).map_err(CliError)?,
            false,
        ),
    };
    let daemon = Daemon {
        state,
        checkpoint,
        save_every,
        since_save: 0,
        run_span: Span::start(),
    };

    let mut out = String::new();
    if resumed {
        let _ = writeln!(
            out,
            "resumed {} tenant(s), {} access(es) from checkpoint",
            daemon.state.tenant_count(),
            daemon.state.total_accesses()
        );
    }
    let mut daemon = if stdin_mode {
        let daemon = Mutex::new(daemon);
        let session_out = run_stdin_session(&daemon, std::io::stdin().lock())?;
        out.push_str(&session_out);
        daemon.into_inner().unwrap()
    } else {
        run_tcp(daemon, port)?
    };
    let saved = daemon.save_now().map_err(CliError)?;
    daemon.retire_heartbeat();
    super::flags::write_metrics(metrics_path.as_deref(), &daemon.state.fleet_metrics())?;
    out.push_str(&summary(&daemon, saved.as_deref()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon(budget: usize, max_tenants: usize, checkpoint: Option<PathBuf>) -> Mutex<Daemon> {
        Mutex::new(Daemon {
            state: ServeState::new(budget, max_tenants).unwrap(),
            checkpoint,
            save_every: 0,
            since_save: 0,
            run_span: Span::start(),
        })
    }

    fn drive(daemon: &Mutex<Daemon>, script: &str) -> String {
        run_stdin_session(daemon, std::io::Cursor::new(script.to_string())).unwrap()
    }

    #[test]
    fn session_demultiplexes_interleaved_tenants() {
        let daemon = daemon(64, 8, None);
        let out = drive(
            &daemon,
            "HELLO alpha\n1\n2\n1\nHELLO beta\n10\n20\nHELLO alpha\n2\n1\nSTATS\nQUIT\n",
        );
        assert!(out.contains("OK tenant alpha"), "{out}");
        assert!(out.contains("OK tenant beta"), "{out}");
        assert!(out.contains("serve.tenants=2"), "{out}");
        assert!(out.contains("serve.accesses=7"), "{out}");
        assert!(out.contains("OK bye"), "{out}");
        let guard = daemon.lock().unwrap();
        assert_eq!(guard.state.tenant("alpha").unwrap().accesses(), 5);
        assert_eq!(guard.state.tenant("beta").unwrap().accesses(), 2);
    }

    #[test]
    fn protocol_errors_answer_err_and_keep_the_session_alive() {
        let daemon = daemon(64, 1, None);
        let out = drive(
            &daemon,
            "7\nBOGUS\nHELLO a\n1\nHELLO b\nMRC ghost\nWSS a\nPING\n",
        );
        assert!(out.contains("ERR no tenant bound"), "{out}");
        assert!(out.contains("ERR unknown command"), "{out}");
        assert!(out.contains("ERR tenant table full"), "{out}");
        assert!(out.contains("ERR unknown tenant"), "{out}");
        assert!(out.contains("OK wss a "), "{out}");
        assert!(out.contains("OK pong"), "{out}");
        assert_eq!(daemon.lock().unwrap().state.rejected(), 1);
    }

    #[test]
    fn queries_flush_pending_accesses_first() {
        let daemon = daemon(64, 8, None);
        let out = drive(&daemon, "HELLO t\n1\n2\n3\nWSS t\n");
        // Three distinct addresses at full sampling rate: footprint 3.
        assert!(out.contains("OK wss t 3"), "{out}");
    }

    #[test]
    fn save_without_checkpoint_is_a_loud_error() {
        let daemon = daemon(64, 8, None);
        let out = drive(&daemon, "HELLO t\n1\nSAVE\n");
        assert!(out.contains("ERR no checkpoint configured"), "{out}");
    }

    #[test]
    fn mrcj_answers_one_json_line() {
        let daemon = daemon(64, 8, None);
        let out = drive(&daemon, "HELLO t\n1\n2\n1\n3\nMRCJ t 6\nMRCJ ghost\n");
        let line = out
            .lines()
            .find(|l| l.starts_with("OK mrcj t "))
            .expect("mrcj answer");
        let doc = line.strip_prefix("OK mrcj t ").unwrap();
        let parsed = symloc_core::jsonio::parse(doc).expect("payload parses as JSON");
        assert_eq!(
            parsed
                .get("accesses")
                .and_then(symloc_core::jsonio::JsonValue::as_u64),
            Some(4)
        );
        assert!(parsed.get("mrc").is_some());
        assert!(out.contains("ERR unknown tenant \"ghost\""), "{out}");
    }

    #[test]
    fn partition_answers_and_counts_from_the_live_table() {
        let daemon = daemon(64, 8, None);
        // hot re-touches 4 addresses; cold streams 64 distinct ones.
        let mut script = String::from("HELLO hot\n");
        for i in 0..256 {
            let _ = writeln!(script, "{}", i % 4);
        }
        script.push_str("HELLO cold\n");
        for i in 0..64 {
            let _ = writeln!(script, "{}", 1000 + i);
        }
        script.push_str("PARTITION 8\nPARTITION 0\nSTATS\n");
        let out = drive(&daemon, &script);
        let answer = out
            .lines()
            .find(|l| l.starts_with("OK partition 8 "))
            .expect("partition answer");
        assert!(answer.contains(" hot:"), "{answer}");
        assert!(answer.contains(" cold:"), "{answer}");
        assert!(
            out.contains("ERR partition budget must be positive"),
            "{out}"
        );
        assert!(out.contains("partition.requests=1"), "{out}");
        assert!(out.contains("partition.last_budget=8"), "{out}");
    }

    #[test]
    fn partition_on_an_empty_table_is_a_loud_error() {
        let daemon = daemon(64, 8, None);
        let out = drive(&daemon, "PARTITION 64\n");
        assert!(out.contains("ERR no tenants to partition"), "{out}");
    }

    #[test]
    fn mrc_answers_are_byte_identical_across_restart() {
        let dir = std::env::temp_dir().join(format!("symloc-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.ckpt.json");
        let first = daemon(32, 8, Some(path.clone()));
        let before = drive(
            &first,
            "HELLO alpha\n1\n2\n3\n1\n2\n3\n9\nHELLO beta\n5\n6\n5\nMRC alpha\nMRC beta 8\n\
             MRCJ alpha\nPARTITION 16\nSAVE\n",
        );
        // Restart: a fresh daemon resumed from the checkpoint answers the
        // same queries with byte-identical lines.
        let (state, resumed) = ServeState::resume_or_new(&path, 32, 8).unwrap();
        assert!(resumed);
        let second = Mutex::new(Daemon {
            state,
            checkpoint: Some(path.clone()),
            save_every: 0,
            since_save: 0,
            run_span: Span::start(),
        });
        let after = drive(&second, "MRC alpha\nMRC beta 8\nMRCJ alpha\nPARTITION 16\n");
        // Curve and partition answers derive from persisted state only,
        // so a resumed daemon repeats them byte-for-byte.
        let answer_lines = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("OK mrc") || l.starts_with("OK partition"))
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(answer_lines(&before), answer_lines(&after));
        assert_eq!(answer_lines(&before).len(), 4);
        // The liveness sidecar matches what `job status` derives from the
        // checkpoint document.
        let hb = Heartbeat::load(&path)
            .expect("heartbeat sidecar")
            .expect("heartbeat parses");
        let status =
            symloc_core::job::checkpoint_status(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(hb.matches(&status));
        std::fs::remove_dir_all(&dir).ok();
    }
}
