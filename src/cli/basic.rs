//! The original one-shot commands: `analyze`, `retraversal`, `generate`
//! and `optimize`.

use super::flags::CommandSpec;
use super::CliError;
use std::fmt::Write as _;

use symloc_cache::footprint::average_footprint;
use symloc_cache::mrc::MissRatioCurve;
use symloc_cache::reuse::reuse_profile;
use symloc_core::chainfind::ChainFindConfig;
use symloc_core::feasibility::PrecedenceDag;
use symloc_core::hits::{hit_vector_with_scratch, mrc_with_scratch, AnalysisScratch};
use symloc_core::optimize::{best_feasible_exhaustive, optimize_from_identity};
use symloc_core::retraversal::ReTraversal;
use symloc_core::theorems::theorem2_holds;
use symloc_perm::inversions::{inversions, max_inversions};
use symloc_trace::generators::{cyclic_trace, random_trace, sawtooth_trace};
use symloc_trace::io::{read_trace, write_trace};
use symloc_trace::stats::trace_stats;
use symloc_trace::Trace;

/// `symloc analyze` command table.
pub(crate) const ANALYZE: CommandSpec = CommandSpec {
    name: "analyze",
    summary: "generic locality report of any trace file",
    usage: "symloc analyze <trace-file>",
    positionals: &[("trace-file", "a plain-text trace (one address per line)")],
    variadic: false,
    flags: &[],
};

/// `symloc retraversal` command table.
pub(crate) const RETRAVERSAL: CommandSpec = CommandSpec {
    name: "retraversal",
    summary: "interpret a trace as a re-traversal T = A σ(A)",
    usage: "symloc retraversal <trace-file>",
    positionals: &[("trace-file", "a plain-text trace (one address per line)")],
    variadic: false,
    flags: &[],
};

/// `symloc generate` command table.
pub(crate) const GENERATE: CommandSpec = CommandSpec {
    name: "generate",
    summary: "emit a synthetic trace",
    usage: "symloc generate <cyclic|sawtooth|random> <m> <epochs> [out-file]",
    positionals: &[
        ("kind", "cyclic, sawtooth or random"),
        ("m", "number of distinct addresses"),
        ("epochs", "number of traversals"),
        ("out-file", "optional output path (inline report otherwise)"),
    ],
    variadic: false,
    flags: &[],
};

/// `symloc optimize` command table.
pub(crate) const OPTIMIZE: CommandSpec = CommandSpec {
    name: "optimize",
    summary: "best feasible re-traversal order under precedence constraints",
    usage: "symloc optimize <m> [a<b ...]",
    positionals: &[
        ("m", "number of elements"),
        (
            "a<b",
            "zero or more precedence constraints (0-based indices)",
        ),
    ],
    variadic: true,
    flags: &[],
};

/// `symloc analyze <trace-file>` — generic locality report of any trace.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or parsed.
pub fn analyze_file(path: &str) -> Result<String, CliError> {
    let trace = read_trace(path).map_err(|e| CliError(format!("cannot read trace {path}: {e}")))?;
    Ok(analyze_trace(&trace))
}

/// Locality report of an in-memory trace (the body of `symloc analyze`).
#[must_use]
pub fn analyze_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let stats = trace_stats(trace);
    let _ = writeln!(out, "accesses            : {}", stats.accesses);
    let _ = writeln!(out, "footprint           : {}", stats.footprint);
    let _ = writeln!(out, "mean access frequency: {:.3}", stats.mean_frequency);
    match stats.mean_reuse_interval {
        Some(ri) => {
            let _ = writeln!(out, "mean reuse interval : {ri:.2}");
        }
        None => {
            let _ = writeln!(out, "mean reuse interval : (no reuse)");
        }
    }
    if trace.is_empty() {
        return out;
    }
    let profile = reuse_profile(trace);
    let curve = MissRatioCurve::from_profile(&profile);
    let m = profile.footprint();
    let _ = writeln!(
        out,
        "total reuse distance: {}",
        profile.histogram().total_finite_distance()
    );
    let _ = writeln!(out, "normalized MRC area : {:.4}", curve.normalized_area());
    let _ = writeln!(out, "cache-size sweep (fully associative LRU):");
    let mut sizes: Vec<usize> = vec![1, m / 8, m / 4, m / 2, (3 * m) / 4, m];
    sizes.retain(|&c| c >= 1);
    sizes.dedup();
    for c in sizes {
        let _ = writeln!(
            out,
            "  c = {c:>8}  miss ratio {:.4}  avg footprint(window={c}) {:.2}",
            profile.miss_ratio(c),
            average_footprint(trace, c.min(trace.len()))
        );
    }
    out
}

/// `symloc retraversal <trace-file>` — interpret the trace as `T = A σ(A)`.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or is not a re-traversal.
pub fn retraversal_file(path: &str) -> Result<String, CliError> {
    let trace = read_trace(path).map_err(|e| CliError(format!("cannot read trace {path}: {e}")))?;
    retraversal_trace_report(&trace)
}

/// Re-traversal report of an in-memory trace (the body of `symloc retraversal`).
///
/// # Errors
///
/// Returns a [`CliError`] if the trace is not a re-traversal.
pub fn retraversal_trace_report(trace: &Trace) -> Result<String, CliError> {
    let rt =
        ReTraversal::from_trace(trace).map_err(|e| CliError(format!("not a re-traversal: {e}")))?;
    let sigma = rt.sigma();
    let m = rt.degree();
    // One workspace for the hit vector and the curve.
    let mut scratch = AnalysisScratch::new(m);
    let mut out = String::new();
    let _ = writeln!(out, "re-traversal of m = {m} elements");
    let _ = writeln!(out, "sigma (1-based)     : {sigma}");
    let _ = writeln!(
        out,
        "inversions l(sigma) : {} of max {}",
        inversions(sigma),
        max_inversions(m)
    );
    let _ = writeln!(
        out,
        "hit vector hits_C   : {:?}",
        hit_vector_with_scratch(sigma, &mut scratch)
    );
    let _ = writeln!(out, "Theorem 2 check     : {}", theorem2_holds(sigma));
    let curve = mrc_with_scratch(sigma, &mut scratch);
    let _ = writeln!(
        out,
        "miss ratio at m/2   : {:.4}",
        curve.miss_ratio(m.max(2) / 2)
    );
    let _ = writeln!(out, "miss ratio at m     : {:.4}", curve.miss_ratio(m));
    let better = max_inversions(m).saturating_sub(inversions(sigma));
    let _ = writeln!(
        out,
        "headroom            : {better} more inversions available toward the sawtooth order"
    );
    Ok(out)
}

/// `symloc generate <kind> <m> <epochs> [out-file]`.
///
/// With an output path the trace is written there and the report says so;
/// without one the report includes the trace inline (careful with large m).
///
/// # Errors
///
/// Returns a [`CliError`] on an unknown kind, bad numbers, or write failure.
pub fn generate(
    kind: &str,
    m: usize,
    epochs: usize,
    out: Option<&str>,
) -> Result<String, CliError> {
    if m == 0 || epochs == 0 {
        return Err(CliError("m and epochs must be positive".to_string()));
    }
    let trace = match kind {
        "cyclic" => cyclic_trace(m, epochs),
        "sawtooth" => sawtooth_trace(m, epochs),
        "random" => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(0xD1CE);
            random_trace(m, m * epochs, &mut rng)
        }
        other => {
            return Err(CliError(format!(
                "unknown trace kind {other:?} (expected cyclic, sawtooth or random)"
            )))
        }
    };
    let mut report = format!(
        "generated {kind} trace: {} accesses over {} addresses\n",
        trace.len(),
        trace.distinct_count()
    );
    match out {
        Some(path) => {
            write_trace(&trace, path).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(report, "wrote {path}");
        }
        None => {
            let _ = writeln!(report, "{trace}");
        }
    }
    Ok(report)
}

/// `symloc optimize <m> [a<b ...]` — best feasible re-traversal order under
/// precedence constraints written as `a<b` (0-based element indices).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed or inconsistent constraints.
pub fn optimize(m: usize, constraints: &[String]) -> Result<String, CliError> {
    if m == 0 {
        return Err(CliError("m must be positive".to_string()));
    }
    let mut dag = PrecedenceDag::unconstrained(m);
    for spec in constraints {
        let Some((a, b)) = spec.split_once('<') else {
            return Err(CliError(format!(
                "malformed constraint {spec:?} (expected the form a<b)"
            )));
        };
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| CliError(format!("{a:?} is not an element index")))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| CliError(format!("{b:?} is not an element index")))?;
        dag.require_before(a, b)
            .map_err(|e| CliError(format!("cannot add constraint {spec}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "elements: {m}   constraints: {}",
        dag.constraint_count()
    );
    // The greedy climb starts from the identity (the program's original
    // order); when the constraints themselves forbid that order, fall back to
    // the exhaustive search alone (small m) or report the situation.
    match optimize_from_identity(&dag, ChainFindConfig::default()) {
        Ok((greedy, chain)) => {
            let _ = writeln!(out, "greedy (ChainFind) order : {}", greedy.sigma);
            let _ = writeln!(
                out,
                "  inversions {} of max {}   covers taken {}   tied choices {}",
                greedy.inversions,
                max_inversions(m),
                chain.len(),
                chain.arbitrary_choices
            );
        }
        Err(e) => {
            let _ = writeln!(
                out,
                "greedy (ChainFind) order : unavailable ({e}); constraints contradict the original order"
            );
        }
    }
    if m <= 9 {
        let exact = best_feasible_exhaustive(&dag)
            .map_err(|e| CliError(format!("exhaustive search failed: {e}")))?;
        let _ = writeln!(out, "exhaustive optimum       : {}", exact.sigma);
        let _ = writeln!(
            out,
            "  inversions {} of max {}",
            exact.inversions,
            max_inversions(m)
        );
    } else {
        let _ = writeln!(out, "(exhaustive check skipped for m > 9)");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::Permutation;
    use symloc_trace::generators::retraversal_trace;

    #[test]
    fn analyze_trace_report_contents() {
        let report = analyze_trace(&sawtooth_trace(8, 4));
        assert!(report.contains("accesses            : 32"));
        assert!(report.contains("footprint           : 8"));
        assert!(report.contains("miss ratio"));
        let empty = analyze_trace(&Trace::new());
        assert!(empty.contains("accesses            : 0"));
        assert!(empty.contains("(no reuse)"));
    }

    #[test]
    fn retraversal_report_for_valid_and_invalid_traces() {
        let sigma = Permutation::from_one_based(vec![2, 1, 3, 4]).unwrap();
        let report = retraversal_trace_report(&retraversal_trace(&sigma)).unwrap();
        assert!(report.contains("m = 4"));
        assert!(report.contains("[2 1 3 4]"));
        assert!(report.contains("Theorem 2 check     : true"));
        let err = retraversal_trace_report(&Trace::from_usizes(&[0, 0, 1, 1])).unwrap_err();
        assert!(err.to_string().contains("not a re-traversal"));
    }

    #[test]
    fn generate_inline_and_rejections() {
        let inline = generate("sawtooth", 4, 2, None).unwrap();
        assert!(inline.contains("8 accesses over 4 addresses"));
        assert!(inline.contains("0 1 2 3 3 2 1 0"));
        assert!(generate("bogus", 4, 2, None).is_err());
        assert!(generate("cyclic", 0, 2, None).is_err());
    }

    #[test]
    fn optimize_with_and_without_constraints() {
        let free = optimize(5, &[]).unwrap();
        assert!(free.contains("[5 4 3 2 1]"));
        let constrained = optimize(5, &["0<1".to_string(), "2<4".to_string()]).unwrap();
        assert!(constrained.contains("constraints: 2"));
        assert!(constrained.contains("exhaustive optimum"));
        assert!(optimize(0, &[]).is_err());
        assert!(optimize(4, &["nonsense".to_string()]).is_err());
        assert!(optimize(4, &["1<99".to_string()]).is_err());
        assert!(optimize(4, &["3<x".to_string()]).is_err());
        let big = optimize(12, &["0<1".to_string()]).unwrap();
        assert!(big.contains("exhaustive check skipped"));
    }
}
