//! `symloc job` — kind-agnostic checkpoint tooling: `status` summarizes
//! any checkpoint file, `resume` continues it, both dispatching on the job
//! kind the checkpoint itself records (the `core::job` registry).

use super::flags::{embed_json, write_metrics, CommandSpec, FlagSpec, JSON, METRICS, THREADS};
use super::sweep::sweep_report;
use super::tracecmd::{mrc_array, mrc_table};
use super::CliError;
use std::fmt::Write as _;
use std::path::Path;

use symloc_core::job::{checkpoint_status, Heartbeat, JobKind, JobStatus};
use symloc_core::obs::MetricsRegistry;
use symloc_core::shard::{SampledSweep, ShardedSweep};
use symloc_core::tracesweep::{log_spaced_sizes, FusedIngest, SampledIngest, TraceIngest};
use symloc_par::default_threads;
use symloc_trace::stream::TraceSource;

const MAX_UNITS: FlagSpec = FlagSpec::value(
    "--max-units",
    "N",
    "run at most N units (shards/levels/chunks) this invocation",
);

/// `symloc job status` command table.
pub(crate) const JOB_STATUS: CommandSpec = CommandSpec {
    name: "job status",
    summary: "summarize any symloc checkpoint file (kind, plan, progress)",
    usage: "symloc job status <checkpoint> [--json] [--metrics FILE]",
    positionals: &[(
        "checkpoint",
        "a checkpoint file written by any resumable command",
    )],
    variadic: false,
    flags: &[JSON, METRICS],
};

/// `symloc job resume` command table.
pub(crate) const JOB_RESUME: CommandSpec = CommandSpec {
    name: "job resume",
    summary: "continue any symloc checkpoint, dispatching on its recorded kind",
    usage: "symloc job resume <checkpoint> [--threads N] [--max-units N] [--json] [--metrics FILE]",
    positionals: &[(
        "checkpoint",
        "a checkpoint file written by any resumable command",
    )],
    variadic: false,
    flags: &[THREADS, MAX_UNITS, JSON, METRICS],
};

/// What `job status` found next to the checkpoint. The heartbeat sidecar
/// is advisory, so everything short of a live match degrades to a note —
/// never a hard failure of the status (or resume) command.
enum HeartbeatState {
    /// No sidecar: the job either never ran checkpointed or finished (a
    /// completed run removes its heartbeat).
    Absent,
    /// A readable heartbeat matching the checkpoint's identity and
    /// progress: the run is (or just was) in flight.
    Live(Heartbeat),
    /// A readable heartbeat that no longer matches the checkpoint — e.g.
    /// a kill landed between the checkpoint save and the sidecar write,
    /// or the sidecar survived from an older run.
    Stale(Heartbeat),
    /// The sidecar exists but cannot be parsed (corrupt or truncated).
    Unreadable(String),
}

impl HeartbeatState {
    /// Reads and classifies the heartbeat sidecar next to `checkpoint`.
    fn inspect(checkpoint: &Path, status: &JobStatus) -> HeartbeatState {
        match Heartbeat::load(checkpoint) {
            None => HeartbeatState::Absent,
            Some(Err(e)) => HeartbeatState::Unreadable(e),
            Some(Ok(hb)) if hb.matches(status) => HeartbeatState::Live(hb),
            Some(Ok(hb)) => HeartbeatState::Stale(hb),
        }
    }

    /// The machine-readable tag for the `heartbeat_status` JSON field.
    fn tag(&self) -> &'static str {
        match self {
            HeartbeatState::Absent => "absent",
            HeartbeatState::Live(_) => "live",
            HeartbeatState::Stale(_) => "stale",
            HeartbeatState::Unreadable(_) => "unreadable",
        }
    }
}

/// Renders a [`JobStatus`] as the human-readable `job status` report.
fn status_report(status: &JobStatus, heartbeat: &HeartbeatState) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kind        : {} ({})",
        status.kind.describe(),
        status.kind
    );
    let _ = writeln!(out, "fingerprint : {}", status.fingerprint);
    let _ = writeln!(
        out,
        "progress    : {} of {} {}s complete{}",
        status.completed,
        status.total,
        status.kind.unit_name(),
        if status.is_complete() {
            ""
        } else {
            " (resumable with `symloc job resume`)"
        }
    );
    for (label, value) in &status.detail {
        let _ = writeln!(out, "{label:<12}: {value}");
    }
    match heartbeat {
        HeartbeatState::Absent => {}
        HeartbeatState::Live(hb) => {
            let _ = writeln!(
                out,
                "heartbeat   : live — batch {}, {:.2}s elapsed, {:.2} {}s/sec (last batch {:.2})",
                hb.batches,
                hb.elapsed_secs,
                hb.units_per_sec,
                status.kind.unit_name(),
                hb.instant_units_per_sec
            );
            if let Some((name, done)) = &hb.items {
                let _ = writeln!(out, "{name:<12}: {done} streamed so far");
            }
            if let Some(eta) = hb.eta_secs {
                let _ = writeln!(out, "eta         : ~{eta:.1}s at the cumulative rate");
            }
        }
        HeartbeatState::Stale(hb) => {
            let _ = writeln!(
                out,
                "heartbeat   : stale sidecar (recorded {} of {}, does not match the \
                 checkpoint) — ignored",
                hb.completed, hb.total
            );
        }
        HeartbeatState::Unreadable(e) => {
            let _ = writeln!(out, "heartbeat   : unreadable sidecar ({e}) — ignored");
        }
    }
    out
}

/// Renders a [`JobStatus`] as a JSON document.
fn status_json(
    status: &JobStatus,
    heartbeat: &HeartbeatState,
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"kind\": \"{}\",", status.kind);
    let _ = writeln!(
        out,
        "  \"fingerprint\": \"{}\",",
        symloc_core::jsonio::escape(&status.fingerprint)
    );
    let _ = writeln!(out, "  \"complete\": {},", status.is_complete());
    let _ = writeln!(out, "  \"completed\": {},", status.completed);
    let _ = writeln!(out, "  \"total\": {},", status.total);
    out.push_str("  \"detail\": {");
    for (i, (label, value)) in status.detail.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}\"{}\": \"{}\"",
            symloc_core::jsonio::escape(label),
            symloc_core::jsonio::escape(value)
        );
    }
    out.push_str("},\n");
    let _ = writeln!(out, "  \"heartbeat_status\": \"{}\",", heartbeat.tag());
    if let HeartbeatState::Live(hb) = heartbeat {
        let _ = writeln!(out, "  \"heartbeat\": {},", embed_json(&hb.to_json()));
    }
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// Renders a `job resume --json` completion report: the shared progress
/// fields plus per-kind `extra` pairs whose values are raw JSON fragments
/// (numbers, arrays or objects rendered by the caller), plus the run's
/// metrics-registry snapshot.
fn resume_json(
    kind: JobKind,
    fingerprint: &str,
    ran: usize,
    completed: usize,
    total: usize,
    extra: &[(&str, String)],
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"kind\": \"{kind}\",");
    let _ = writeln!(
        out,
        "  \"fingerprint\": \"{}\",",
        symloc_core::jsonio::escape(fingerprint)
    );
    let _ = writeln!(out, "  \"complete\": {},", completed >= total);
    let _ = writeln!(out, "  \"ran\": {ran},");
    let _ = writeln!(out, "  \"completed\": {completed},");
    let _ = write!(out, "  \"total\": {total}");
    for (key, value) in extra {
        let _ = write!(out, ",\n  \"{key}\": {value}");
    }
    let _ = write!(out, ",\n  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("\n}\n");
    out
}

/// `symloc job status <checkpoint>` — decodes any registered checkpoint
/// and reports its kind, fingerprint and progress.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable files, unknown kinds, or
/// structurally invalid checkpoints.
pub(crate) fn status(args: &[String]) -> Result<String, CliError> {
    let Some(parsed) = JOB_STATUS.parse(args)? else {
        return Ok(JOB_STATUS.help());
    };
    let path = parsed.positional(0, "job status", "a checkpoint file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read checkpoint {path}: {e}")))?;
    let status = checkpoint_status(&text)
        .map_err(|e| CliError(format!("cannot decode checkpoint {path}: {e}")))?;
    let heartbeat = HeartbeatState::inspect(Path::new(path), &status);
    let mut registry = MetricsRegistry::new();
    if let HeartbeatState::Live(hb) = &heartbeat {
        hb.record_gauges(&mut registry);
    }
    write_metrics(parsed.value(METRICS.name), &registry)?;
    Ok(if parsed.switch(JSON.name) {
        status_json(&status, &heartbeat, &registry)
    } else {
        status_report(&status, &heartbeat)
    })
}

/// Reconstructs and re-validates the trace source a trace-job checkpoint
/// was recorded against: the fingerprint must resolve to a readable source
/// whose access count still matches the checkpoint.
fn reopen_source(fingerprint: &str, recorded_total: u64) -> Result<TraceSource, CliError> {
    let source = TraceSource::from_fingerprint(fingerprint).map_err(CliError)?;
    let total = source
        .total_accesses()
        .map_err(|e| CliError(format!("cannot scan {source}: {e}")))?;
    if total != recorded_total {
        return Err(CliError(format!(
            "checkpoint was recorded against {source} with {recorded_total} accesses, \
             but the source now has {total} — refusing to resume against changed data"
        )));
    }
    Ok(source)
}

/// `symloc job resume <checkpoint>` — continues any registered checkpoint
/// to completion (or `--max-units`), dispatching on its recorded kind, and
/// prints the finished job's report.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable or invalid checkpoints, vanished
/// or changed trace sources, or checkpoint write failures.
pub(crate) fn resume(args: &[String]) -> Result<String, CliError> {
    let Some(parsed) = JOB_RESUME.parse(args)? else {
        return Ok(JOB_RESUME.help());
    };
    let path_str = parsed
        .positional(0, "job resume", "a checkpoint file")?
        .to_string();
    let path = Path::new(&path_str);
    let threads = parsed.usize(THREADS.name)?.unwrap_or_else(default_threads);
    let limit = parsed.usize(MAX_UNITS.name)?;
    let json = parsed.switch(JSON.name);
    let metrics_path = parsed.value(METRICS.name);
    let mut registry = MetricsRegistry::new();
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read checkpoint {path_str}: {e}")))?;
    // Sniff the kind only — each arm decodes the (possibly large)
    // checkpoint exactly once and prints the banner from the decoded job.
    let kind = symloc_core::job::sniff_kind(&text).ok_or_else(|| {
        CliError(format!(
            "cannot decode checkpoint {path_str}: not a registered symloc checkpoint"
        ))
    })?;
    let ckpt_err = |e: std::io::Error| CliError(format!("cannot write checkpoint {path_str}: {e}"));

    let mut out = String::new();
    let banner = |out: &mut String, fingerprint: &str, completed: usize, total: usize| {
        let _ = writeln!(
            out,
            "resuming {} — {fingerprint} ({completed} of {total} {}s already done)",
            kind.describe(),
            kind.unit_name()
        );
    };
    match kind {
        JobKind::ShardedSweep => {
            let mut sweep = ShardedSweep::from_json(&text, threads).map_err(CliError)?;
            banner(
                &mut out,
                &sweep.spec().fingerprint(),
                sweep.completed_count(),
                sweep.shard_count(),
            );
            let ran = sweep
                .run_with_checkpoint_metered(path, limit, Some(&mut registry), |_, _| {})
                .map_err(ckpt_err)?;
            if json {
                write_metrics(metrics_path, &registry)?;
                return Ok(resume_json(
                    kind,
                    &sweep.spec().fingerprint(),
                    ran,
                    sweep.completed_count(),
                    sweep.shard_count(),
                    &[],
                    &registry,
                ));
            }
            let _ = writeln!(
                out,
                "ran {ran} shard(s); {} of {} complete; checkpoint saved to {path_str}",
                sweep.completed_count(),
                sweep.shard_count()
            );
            match sweep.merged_levels() {
                Some(levels) => out.push_str(&sweep_report(sweep.spec(), &levels, false)),
                None => {
                    let _ = writeln!(out, "sweep incomplete — re-run to continue");
                }
            }
        }
        JobKind::SampledSweep => {
            let mut sweep = SampledSweep::from_json(&text, threads).map_err(CliError)?;
            banner(
                &mut out,
                &sweep.spec().fingerprint(),
                sweep.completed_count(),
                sweep.level_count(),
            );
            let ran = sweep
                .run_with_checkpoint_metered(path, limit, Some(&mut registry), |_, _| {})
                .map_err(ckpt_err)?;
            if json {
                write_metrics(metrics_path, &registry)?;
                return Ok(resume_json(
                    kind,
                    &sweep.spec().fingerprint(),
                    ran,
                    sweep.completed_count(),
                    sweep.level_count(),
                    &[],
                    &registry,
                ));
            }
            let _ = writeln!(
                out,
                "ran {ran} level(s); {} of {} complete; checkpoint saved to {path_str}",
                sweep.completed_count(),
                sweep.level_count()
            );
            match sweep.merged_levels() {
                Some(levels) => out.push_str(&sweep_report(sweep.spec(), &levels, true)),
                None => {
                    let _ = writeln!(out, "sweep incomplete — re-run to continue");
                }
            }
        }
        JobKind::TraceIngest => {
            let mut ingest = TraceIngest::from_json(&text, threads).map_err(CliError)?;
            banner(
                &mut out,
                ingest.fingerprint(),
                ingest.completed_count(),
                ingest.chunk_count(),
            );
            let source = reopen_source(ingest.fingerprint(), ingest.total_accesses())?;
            let ran = ingest
                .run_with_checkpoint_metered(&source, path, limit, Some(&mut registry), |_, _| {})
                .map_err(ckpt_err)?;
            if json {
                let mut extra = Vec::new();
                if let Some(h) = ingest.histogram() {
                    let footprint = usize::try_from(h.cold_count()).unwrap_or(usize::MAX);
                    extra.push(("accesses", h.accesses().to_string()));
                    extra.push(("footprint", footprint.to_string()));
                    extra.push((
                        "mrc",
                        mrc_array(&h.mrc_points(&log_spaced_sizes(footprint, 16))),
                    ));
                }
                write_metrics(metrics_path, &registry)?;
                return Ok(resume_json(
                    kind,
                    ingest.fingerprint(),
                    ran,
                    ingest.completed_count(),
                    ingest.chunk_count(),
                    &extra,
                    &registry,
                ));
            }
            let _ = writeln!(
                out,
                "ran {ran} chunk(s); {} of {} complete; checkpoint saved to {path_str}",
                ingest.completed_count(),
                ingest.chunk_count()
            );
            match ingest.histogram() {
                Some(h) => {
                    let footprint = usize::try_from(h.cold_count()).unwrap_or(usize::MAX);
                    let _ = writeln!(out, "accesses            : {}", h.accesses());
                    let _ = writeln!(out, "footprint           : {footprint}");
                    out.push_str(&mrc_table(&h.mrc_points(&log_spaced_sizes(footprint, 16))));
                }
                None => {
                    let _ = writeln!(out, "ingest incomplete — re-run to continue");
                }
            }
        }
        JobKind::SampledIngest => {
            let mut ingest = SampledIngest::from_json(&text, threads).map_err(CliError)?;
            banner(
                &mut out,
                ingest.fingerprint(),
                ingest.completed_count(),
                ingest.shard_count(),
            );
            let source = reopen_source(ingest.fingerprint(), ingest.total_accesses())?;
            let ran = ingest
                .run_with_checkpoint_metered(&source, path, limit, Some(&mut registry), |_, _| {})
                .map_err(ckpt_err)?;
            if json {
                let mut extra = Vec::new();
                if let Some(summary) = ingest.merged() {
                    let footprint = summary.estimated_footprint().round().max(1.0) as usize;
                    extra.push(("accesses", summary.raw_accesses.to_string()));
                    extra.push(("footprint", footprint.to_string()));
                    extra.push((
                        "mrc",
                        mrc_array(
                            &summary
                                .histogram
                                .mrc_points(&log_spaced_sizes(footprint, 16)),
                        ),
                    ));
                }
                write_metrics(metrics_path, &registry)?;
                return Ok(resume_json(
                    kind,
                    ingest.fingerprint(),
                    ran,
                    ingest.completed_count(),
                    ingest.shard_count(),
                    &extra,
                    &registry,
                ));
            }
            let _ = writeln!(
                out,
                "ran {ran} hash shard(s); {} of {} complete; checkpoint saved to {path_str}",
                ingest.completed_count(),
                ingest.shard_count()
            );
            match ingest.merged() {
                Some(summary) => {
                    let footprint = summary.estimated_footprint().round().max(1.0) as usize;
                    let _ = writeln!(out, "accesses            : {}", summary.raw_accesses);
                    let _ = writeln!(out, "footprint           : ~{footprint} (estimated)");
                    out.push_str(&mrc_table(
                        &summary
                            .histogram
                            .mrc_points(&log_spaced_sizes(footprint, 16)),
                    ));
                }
                None => {
                    let _ = writeln!(out, "sampled ingest incomplete — re-run to continue");
                }
            }
        }
        JobKind::FusedIngest => {
            let mut ingest = FusedIngest::from_json(&text, threads).map_err(CliError)?;
            banner(
                &mut out,
                ingest.fingerprint(),
                ingest.completed_count(),
                ingest.chunk_count(),
            );
            let source = reopen_source(ingest.fingerprint(), ingest.total_accesses())?;
            let ran = ingest
                .run_with_checkpoint_metered(&source, path, limit, Some(&mut registry), |_, _| {})
                .map_err(ckpt_err)?;
            if json {
                let mut extra = vec![("streamed", ingest.streamed_accesses().to_string())];
                if let (Some(h), Some(summary)) =
                    (ingest.exact_histogram(), ingest.sampled_summary())
                {
                    let footprint = usize::try_from(h.cold_count()).unwrap_or(usize::MAX);
                    let est = summary.estimated_footprint().round().max(1.0) as usize;
                    extra.push(("accesses", h.accesses().to_string()));
                    extra.push((
                        "exact",
                        format!(
                            "{{\"footprint\": {footprint}, \"mrc\": {}}}",
                            mrc_array(&h.mrc_points(&log_spaced_sizes(footprint, 16)))
                        ),
                    ));
                    extra.push((
                        "sampled",
                        format!(
                            "{{\"footprint\": {est}, \"min_rate\": {}, \"mrc\": {}}}",
                            summary.min_rate,
                            mrc_array(&summary.histogram.mrc_points(&log_spaced_sizes(est, 16)))
                        ),
                    ));
                }
                write_metrics(metrics_path, &registry)?;
                return Ok(resume_json(
                    kind,
                    ingest.fingerprint(),
                    ran,
                    ingest.completed_count(),
                    ingest.chunk_count(),
                    &extra,
                    &registry,
                ));
            }
            let _ = writeln!(
                out,
                "ran {ran} chunk(s); {} of {} complete; checkpoint saved to {path_str}",
                ingest.completed_count(),
                ingest.chunk_count()
            );
            match (ingest.exact_histogram(), ingest.sampled_summary()) {
                (Some(h), Some(summary)) => {
                    let footprint = usize::try_from(h.cold_count()).unwrap_or(usize::MAX);
                    let est = summary.estimated_footprint().round().max(1.0) as usize;
                    let _ = writeln!(out, "accesses            : {}", h.accesses());
                    let _ = writeln!(
                        out,
                        "streamed            : {} (each access decoded once)",
                        ingest.streamed_accesses()
                    );
                    let _ = writeln!(out, "exact footprint     : {footprint}");
                    out.push_str(&mrc_table(&h.mrc_points(&log_spaced_sizes(footprint, 16))));
                    let _ = writeln!(out, "sampled footprint   : ~{est} (estimated)");
                    out.push_str(&mrc_table(
                        &summary.histogram.mrc_points(&log_spaced_sizes(est, 16)),
                    ));
                }
                _ => {
                    let _ = writeln!(out, "fused ingest incomplete — re-run to continue");
                }
            }
        }
        JobKind::ServeState => {
            // A serve checkpoint is a daemon snapshot, not a batch with
            // remaining units — there is nothing for `job resume` to run.
            return Err(CliError(format!(
                "checkpoint {path_str} holds a {} — it has no pending batch work; \
                 restart the daemon with `symloc serve --checkpoint {path_str}` to \
                 resume its tenants",
                kind.describe()
            )));
        }
    }
    write_metrics(metrics_path, &registry)?;
    Ok(out)
}

/// Dispatches the `symloc job <status|resume>` subcommands.
///
/// # Errors
///
/// See the subcommand docs above: unreadable or invalid checkpoints,
/// vanished or changed trace sources, checkpoint write failures.
pub fn job(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("status") => status(&args[1..]),
        Some("resume") => resume(&args[1..]),
        Some("--help" | "-h") => Ok(format!(
            "symloc job — inspect and continue resumable checkpoints\n\nUSAGE:\n  {}\n  {}\n",
            JOB_STATUS.usage, JOB_RESUME.usage
        )),
        Some(other) => Err(CliError(format!(
            "unknown job subcommand {other:?} (expected status or resume)"
        ))),
        None => Err(CliError("job needs a subcommand (status or resume)".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::{sargs, sweep, trace_mrc};
    use symloc_core::jsonio::{self, JsonValue};

    fn tmp(name: &str) -> (std::path::PathBuf, String) {
        let path =
            std::env::temp_dir().join(format!("symloc_cli_job_{}_{name}", std::process::id()));
        let s = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();
        (path, s)
    }

    #[test]
    fn job_dispatch_and_errors() {
        assert!(job(&sargs("")).is_err());
        assert!(job(&sargs("bogus")).is_err());
        assert!(job(&sargs("status")).is_err());
        assert!(job(&sargs("resume")).is_err());
        assert!(job(&sargs("status /no/such/checkpoint.json")).is_err());
        assert!(job(&sargs("resume /no/such/checkpoint.json")).is_err());
        // Non-checkpoint JSON is rejected with context.
        let (path, path_str) = tmp("garbage.json");
        std::fs::write(&path, "{\"kind\": \"mystery\"}").unwrap();
        let err = job(&sargs(&format!("status {path_str}"))).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn status_and_resume_for_sweep_checkpoints() {
        let (path, path_str) = tmp("sweep.json");
        sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 2 --checkpoint {path_str}"
        )))
        .unwrap();

        let report = job(&sargs(&format!("status {path_str}"))).unwrap();
        assert!(report.contains("exhaustive sharded sweep"), "{report}");
        assert!(report.contains("2 of 4 shards complete"), "{report}");
        assert!(report.contains("m=6;stat=inversions;model=lru_stack"));
        assert!(report.contains("symloc job resume"));

        let json = job(&sargs(&format!("status {path_str} --json"))).unwrap();
        let doc = jsonio::parse(&json).unwrap();
        assert_eq!(
            doc.get("kind").and_then(JsonValue::as_str),
            Some("symloc_sweep_checkpoint")
        );
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(false)));

        // Resume in two steps: bounded, then to completion.
        let bounded = job(&sargs(&format!("resume {path_str} --max-units 1"))).unwrap();
        assert!(
            bounded.contains("ran 1 shard(s); 3 of 4 complete"),
            "{bounded}"
        );
        let finished = job(&sargs(&format!("resume {path_str} --threads 2"))).unwrap();
        assert!(finished.contains("4 of 4 complete"), "{finished}");
        assert!(
            finished.contains("permutations aggregated : 720"),
            "{finished}"
        );

        // The resumed result equals the direct sweep's table.
        let direct = sweep(&sargs("6")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&finished), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn status_and_resume_for_sampled_sweep_checkpoints() {
        let (path, path_str) = tmp("sampled_sweep.json");
        sweep(&sargs(&format!(
            "7 --samples 200 --seed 3 --max-shards 5 --checkpoint {path_str}"
        )))
        .unwrap();
        let report = job(&sargs(&format!("status {path_str}"))).unwrap();
        assert!(report.contains("sampled (level-sharded) sweep"), "{report}");
        assert!(report.contains("5 of 22 levels complete"), "{report}");
        assert!(report.contains("seed"), "{report}");

        let finished = job(&sargs(&format!("resume {path_str}"))).unwrap();
        assert!(finished.contains("22 of 22 complete"), "{finished}");
        let direct = sweep(&sargs("7 --samples 200 --seed 3")).unwrap();
        // The sweep command appends its sampling-plan line after the table;
        // the job resume report ends at the table.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .take_while(|l| !l.starts_with("stratified sampling"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&finished), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn status_and_resume_for_trace_checkpoints() {
        // Exact ingest over a generator source: resumable from the
        // fingerprint alone.
        let (path, path_str) = tmp("ingest.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:60:2000:0.8:3 --shards 6 --threads 2 --checkpoint {path_str} --max-chunks 2"
        )))
        .unwrap();
        let report = job(&sargs(&format!("status {path_str}"))).unwrap();
        assert!(report.contains("exact trace ingest"), "{report}");
        assert!(report.contains("2 of 6 chunks complete"), "{report}");
        assert!(report.contains("gen:zipf:60:2000:0.8:3"), "{report}");

        let finished = job(&sargs(&format!("resume {path_str} --threads 2"))).unwrap();
        assert!(finished.contains("6 of 6 complete"), "{finished}");
        assert!(
            finished.contains("accesses            : 2000"),
            "{finished}"
        );
        assert!(finished.contains("miss ratio"), "{finished}");

        // Sampled hash-sharded ingest round-trips the same way, and the
        // finished checkpoint matches the one the trace command writes.
        let (spath, spath_str) = tmp("sampled_ingest.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --checkpoint {spath_str} --max-chunks 2"
        )))
        .unwrap();
        let report = job(&sargs(&format!("status {spath_str}"))).unwrap();
        assert!(
            report.contains("sampled (hash-sharded) trace ingest"),
            "{report}"
        );
        let finished = job(&sargs(&format!("resume {spath_str}"))).unwrap();
        assert!(finished.contains("4 of 4 complete"), "{finished}");
        let via_job = std::fs::read_to_string(&spath).unwrap();
        let (rpath, rpath_str) = tmp("sampled_ingest_ref.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --checkpoint {rpath_str}"
        )))
        .unwrap();
        assert_eq!(via_job, std::fs::read_to_string(&rpath).unwrap());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&spath).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn status_and_resume_for_fused_checkpoints() {
        let (path, path_str) = tmp("fused_ingest.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --checkpoint {path_str} \
             --max-chunks 2"
        )))
        .unwrap();
        let report = job(&sargs(&format!("status {path_str}"))).unwrap();
        assert!(
            report.contains("fused exact+sampled trace ingest"),
            "{report}"
        );
        assert!(report.contains("2 of 4 chunks complete"), "{report}");
        assert!(report.contains("gen:zipf:200:4000:0.8:5"), "{report}");

        let finished = job(&sargs(&format!("resume {path_str} --threads 2"))).unwrap();
        assert!(finished.contains("4 of 4 complete"), "{finished}");
        assert!(
            finished.contains("streamed            : 4000 (each access decoded once)"),
            "{finished}"
        );
        assert!(finished.contains("exact footprint"), "{finished}");
        assert!(finished.contains("sampled footprint"), "{finished}");

        // The finished checkpoint matches the one the trace command writes
        // in a single uninterrupted run.
        let via_job = std::fs::read_to_string(&path).unwrap();
        let (rpath, rpath_str) = tmp("fused_ingest_ref.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --checkpoint {rpath_str}"
        )))
        .unwrap();
        assert_eq!(via_job, std::fs::read_to_string(&rpath).unwrap());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn resume_json_reports_are_machine_readable() {
        // Fused kind: the completion report carries both curves.
        let (path, path_str) = tmp("fused_json.json");
        trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --checkpoint {path_str} \
             --max-chunks 1"
        )))
        .unwrap();
        // An incomplete bounded resume still emits a parseable document.
        let partial = job(&sargs(&format!("resume {path_str} --max-units 1 --json"))).unwrap();
        let doc = jsonio::parse(&partial).unwrap();
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("ran").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(2));
        assert!(doc.get("exact").is_none());

        let finished = job(&sargs(&format!("resume {path_str} --json"))).unwrap();
        let doc = jsonio::parse(&finished).unwrap();
        assert_eq!(
            doc.get("kind").and_then(JsonValue::as_str),
            Some("symloc_fused_trace_checkpoint")
        );
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("total").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(doc.get("accesses").and_then(JsonValue::as_u64), Some(4000));
        assert_eq!(doc.get("streamed").and_then(JsonValue::as_u64), Some(4000));
        for engine in ["exact", "sampled"] {
            let curve = doc.get(engine).unwrap();
            assert!(
                curve.get("footprint").and_then(JsonValue::as_u64).is_some(),
                "{engine} footprint missing"
            );
            let mrc = curve.get("mrc").and_then(JsonValue::as_array).unwrap();
            assert!(!mrc.is_empty(), "{engine} curve empty");
        }
        assert!(doc
            .get("sampled")
            .unwrap()
            .get("min_rate")
            .and_then(JsonValue::as_f64)
            .is_some());
        std::fs::remove_file(&path).ok();

        // A sweep kind emits the shared progress fields too.
        let (spath, spath_str) = tmp("sweep_json.json");
        sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 2 --checkpoint {spath_str}"
        )))
        .unwrap();
        let finished = job(&sargs(&format!("resume {spath_str} --json"))).unwrap();
        let doc = jsonio::parse(&finished).unwrap();
        assert_eq!(
            doc.get("kind").and_then(JsonValue::as_str),
            Some("symloc_sweep_checkpoint")
        );
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("ran").and_then(JsonValue::as_u64), Some(2));
        std::fs::remove_file(&spath).ok();
    }

    #[test]
    fn resume_refuses_changed_or_memory_sources() {
        // A text-source checkpoint whose file changed length is refused.
        let dir = std::env::temp_dir();
        let trace_path = dir.join(format!("symloc_cli_job_swap_{}.trace", std::process::id()));
        let (ckpt, ckpt_str) = tmp("swap.json");
        std::fs::write(&trace_path, "0\n1\n2\n0\n1\n2\n0\n1\n").unwrap();
        trace_mrc(&sargs(&format!(
            "{} --shards 4 --threads 1 --checkpoint {ckpt_str} --max-chunks 2",
            trace_path.to_string_lossy()
        )))
        .unwrap();
        std::fs::write(&trace_path, "7\n7\n").unwrap();
        let err = job(&sargs(&format!("resume {ckpt_str}"))).unwrap_err();
        assert!(err.to_string().contains("refusing to resume"), "{err}");
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&ckpt).ok();
    }
}
