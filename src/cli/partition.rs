//! `symloc partition` — the offline MRC-driven shared-cache partitioner.
//!
//! Feeds [`symloc_core::partition`] from either of the two places tenant
//! curves already live:
//!
//! * **MRC reports** (`symloc trace mrc --json` output, one file per
//!   tenant, tenant named by file stem): the curve comes from the
//!   report's `mrc` array (or the `exact`/`sampled` sub-document of a
//!   fused report), the traffic weight from its `accesses` count.
//! * **A serve checkpoint** (`--checkpoint`): the daemon's persisted
//!   tenant table, evaluated over the exact grid the live `PARTITION`
//!   wire command uses — the offline answer line is byte-identical to
//!   the daemon's, which the CI smoke test diffs.
//!
//! With `--verify` (report mode), the command closes the loop: it
//! replays each report's recorded trace source through the exact reuse
//! engine, simulates every tenant at its allocated size, and reports
//! predicted vs simulated aggregate miss ratio — plus the same
//! simulation under an equal split, so the solver's advantage is
//! measured, not asserted.

use std::fmt::Write as _;
use std::path::Path;

use symloc_core::jsonio::{self, JsonValue};
use symloc_core::partition::{solve, Bounds, PartitionSolution, TenantCurve};
use symloc_core::serve::{ServeState, PARTITION_MRC_POINTS};
use symloc_core::tracesweep::{MrcPoint, OnlineReuseEngine};
use symloc_trace::stream::TraceSource;

use super::flags::{CommandSpec, FlagSpec, CHECKPOINT, JSON};
use super::CliError;

/// `--points K`: checkpoint-mode curve grid density.
const POINTS: FlagSpec = FlagSpec::value(
    "--points",
    "K",
    "curve points per tenant in --checkpoint mode (default 32, the PARTITION wire grid)",
);

/// `--floor N`: per-tenant minimum allocation.
const FLOOR: FlagSpec = FlagSpec::value(
    "--floor",
    "N",
    "minimum cache blocks every tenant must receive (default 0)",
);

/// `--cap N`: per-tenant maximum allocation.
const CAP: FlagSpec = FlagSpec::value(
    "--cap",
    "N",
    "maximum cache blocks any tenant may receive (default unlimited)",
);

/// `--verify`: replay the workloads under the chosen allocation.
const VERIFY: FlagSpec = FlagSpec::switch(
    "--verify",
    "replay each report's trace source exactly and compare predicted vs simulated \
     aggregate miss ratio (report mode only)",
);

/// The declarative table for `symloc partition`.
pub(crate) const PARTITION: CommandSpec = CommandSpec {
    name: "partition",
    summary: "split a shared cache budget across tenants to minimize aggregate miss ratio",
    usage: "symloc partition <budget> [report.json ...] [--checkpoint FILE]\n  \
            [--points K] [--floor N] [--cap N] [--verify] [--json]",
    positionals: &[
        ("budget", "total cache blocks to split"),
        (
            "report.json",
            "one or more `symloc trace mrc --json` reports, one tenant per file",
        ),
    ],
    variadic: true,
    flags: &[CHECKPOINT, POINTS, FLOOR, CAP, VERIFY, JSON],
};

/// One tenant's curve plus the trace source it was measured over (when
/// the report recorded a reconstructible one).
struct ReportTenant {
    curve: TenantCurve,
    source: Option<String>,
}

/// Extracts `[[size, ratio], ...]` into [`MrcPoint`]s.
fn points_from_array(path: &str, array: &[JsonValue]) -> Result<Vec<MrcPoint>, CliError> {
    let mut points = Vec::with_capacity(array.len());
    for pair in array {
        let pair = pair
            .as_array()
            .ok_or_else(|| CliError(format!("{path}: mrc entry is not a [size, ratio] pair")))?;
        let (size, ratio) = match pair {
            [size, ratio] => (
                size.as_usize()
                    .ok_or_else(|| CliError(format!("{path}: bad mrc cache size")))?,
                ratio
                    .as_f64()
                    .ok_or_else(|| CliError(format!("{path}: bad mrc miss ratio")))?,
            ),
            _ => {
                return Err(CliError(format!(
                    "{path}: mrc entry is not a [size, ratio] pair"
                )))
            }
        };
        points.push(MrcPoint {
            cache_size: size,
            miss_ratio: ratio,
        });
    }
    Ok(points)
}

/// Loads one tenant from a `symloc trace mrc --json` report. Accepts the
/// plain shape (top-level `mrc`) and the fused shape (`exact`/`sampled`
/// sub-documents; exact preferred).
fn load_report(path: &str) -> Result<ReportTenant, CliError> {
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| CliError(format!("cannot derive a tenant name from {path:?}")))?
        .to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read MRC report {path}: {e}")))?;
    let doc = jsonio::parse(&text)
        .map_err(|e| CliError(format!("{path} is not a JSON MRC report: {e}")))?;
    let accesses = doc
        .get("accesses")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CliError(format!("{path}: report has no \"accesses\" count")))?;
    let mrc = doc
        .get("mrc")
        .or_else(|| doc.get("exact").and_then(|e| e.get("mrc")))
        .or_else(|| doc.get("sampled").and_then(|s| s.get("mrc")))
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            CliError(format!(
                "{path}: report has no \"mrc\" array (nor a fused exact/sampled one)"
            ))
        })?;
    let points = points_from_array(path, mrc)?;
    #[allow(clippy::cast_precision_loss)]
    let curve = TenantCurve::from_points(&name, accesses as f64, &points)
        .map_err(|e| CliError(format!("{path}: {e}")))?;
    Ok(ReportTenant {
        curve,
        source: doc
            .get("source")
            .and_then(JsonValue::as_str)
            .map(ToString::to_string),
    })
}

/// One tenant's what-if simulation: exact miss ratios at the solver's
/// allocation and at the equal split.
struct SimulatedTenant {
    name: String,
    accesses: u64,
    solver_miss_ratio: f64,
    equal_miss_ratio: f64,
}

/// Replays every tenant's trace source through the exact engine and
/// simulates both the solver's allocation and the equal split.
fn simulate(
    tenants: &[ReportTenant],
    solution: &PartitionSolution,
    equal_share: u64,
) -> Result<Vec<SimulatedTenant>, CliError> {
    let mut rows = Vec::with_capacity(tenants.len());
    for (tenant, allocation) in tenants.iter().zip(&solution.allocations) {
        let fingerprint = tenant.source.as_deref().ok_or_else(|| {
            CliError(format!(
                "tenant {:?}: report records no trace source to replay (--verify needs one)",
                tenant.curve.name()
            ))
        })?;
        let source = TraceSource::from_fingerprint(fingerprint)
            .map_err(|e| CliError(format!("tenant {:?}: {e}", tenant.curve.name())))?;
        let mut engine = OnlineReuseEngine::new();
        let stream = source
            .stream()
            .map_err(|e| CliError(format!("cannot replay {fingerprint}: {e}")))?;
        engine.record_all(stream);
        let histogram = engine.histogram();
        let at = |size: u64| histogram.miss_ratio(usize::try_from(size).unwrap_or(usize::MAX));
        rows.push(SimulatedTenant {
            name: allocation.name.clone(),
            accesses: histogram.accesses(),
            solver_miss_ratio: at(allocation.size),
            equal_miss_ratio: at(equal_share),
        });
    }
    Ok(rows)
}

/// Traffic-weighted aggregate of per-tenant simulated miss ratios.
fn aggregate(rows: &[SimulatedTenant], pick: impl Fn(&SimulatedTenant) -> f64) -> f64 {
    let total: u64 = rows.iter().map(|r| r.accesses).sum();
    if total == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let weighted: f64 = rows.iter().map(|r| r.accesses as f64 * pick(r)).sum();
    #[allow(clippy::cast_precision_loss)]
    let ratio = weighted / total as f64;
    ratio
}

/// Renders the machine-readable report. The `answer` field is the exact
/// compact line the daemon's `PARTITION` command returns (minus the `OK `
/// prefix), so scripts diff the two directly.
fn json_report(
    solution: &PartitionSolution,
    verify: Option<&(Vec<SimulatedTenant>, u64)>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"budget\": {},", solution.budget);
    let _ = writeln!(out, "  \"allocated\": {},", solution.allocated);
    let _ = writeln!(
        out,
        "  \"predicted_aggregate_miss_ratio\": {},",
        solution.predicted_aggregate_miss_ratio
    );
    let _ = writeln!(
        out,
        "  \"answer\": \"{}\",",
        jsonio::escape(&solution.render_compact())
    );
    out.push_str("  \"allocations\": [\n");
    for (i, a) in solution.allocations.iter().enumerate() {
        let sep = if i + 1 < solution.allocations.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"tenant\": \"{}\", \"size\": {}, \"weight\": {}, \
             \"predicted_miss_ratio\": {}}}{sep}",
            jsonio::escape(&a.name),
            a.size,
            a.weight,
            a.predicted_miss_ratio
        );
    }
    out.push_str("  ]");
    if let Some((rows, equal_share)) = verify {
        out.push_str(",\n  \"verify\": {\n");
        let _ = writeln!(
            out,
            "    \"simulated_aggregate_miss_ratio\": {},",
            aggregate(rows, |r| r.solver_miss_ratio)
        );
        let _ = writeln!(out, "    \"equal_split_share\": {equal_share},");
        let _ = writeln!(
            out,
            "    \"equal_split_simulated_aggregate_miss_ratio\": {},",
            aggregate(rows, |r| r.equal_miss_ratio)
        );
        out.push_str("    \"tenants\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"tenant\": \"{}\", \"accesses\": {}, \"simulated_miss_ratio\": {}, \
                 \"equal_split_miss_ratio\": {}}}{sep}",
                jsonio::escape(&r.name),
                r.accesses,
                r.solver_miss_ratio,
                r.equal_miss_ratio
            );
        }
        out.push_str("    ]\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Renders the human report.
fn text_report(
    solution: &PartitionSolution,
    verify: Option<&(Vec<SimulatedTenant>, u64)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "partition: {} block(s) across {} tenant(s), {} allocated",
        solution.budget,
        solution.allocations.len(),
        solution.allocated
    );
    for a in &solution.allocations {
        let _ = writeln!(
            out,
            "  {:24} {:>12} block(s)  predicted miss ratio {:.4}",
            a.name, a.size, a.predicted_miss_ratio
        );
    }
    let _ = writeln!(
        out,
        "predicted aggregate miss ratio: {:.4}",
        solution.predicted_aggregate_miss_ratio
    );
    let _ = writeln!(out, "answer: {}", solution.render_compact());
    if let Some((rows, equal_share)) = verify {
        let solver = aggregate(rows, |r| r.solver_miss_ratio);
        let equal = aggregate(rows, |r| r.equal_miss_ratio);
        let _ = writeln!(out, "what-if verification (exact replay):");
        for r in rows {
            let _ = writeln!(
                out,
                "  {:24} simulated miss ratio {:.4} (equal split {:.4})",
                r.name, r.solver_miss_ratio, r.equal_miss_ratio
            );
        }
        let _ = writeln!(
            out,
            "simulated aggregate miss ratio: {solver:.4} under the solver's allocation, \
             {equal:.4} under an equal split of {equal_share} block(s) per tenant"
        );
    }
    out
}

/// Entry point for `symloc partition`.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid flags, unreadable or malformed
/// curve sources, or a solver rejection (empty tenant set, degenerate
/// budget, infeasible bounds).
pub fn partition(args: &[String]) -> Result<String, CliError> {
    let Some(parsed) = PARTITION.parse(args)? else {
        return Ok(PARTITION.help());
    };
    let budget: u64 = parsed
        .positional(0, "partition", "a budget in cache blocks")?
        .parse()
        .map_err(|_| CliError("budget must be a number of cache blocks".into()))?;
    let reports = &parsed.positionals[1..];
    let checkpoint = parsed.value(CHECKPOINT.name);
    let points = parsed.usize(POINTS.name)?.unwrap_or(PARTITION_MRC_POINTS);
    let floor = parsed.u64(FLOOR.name)?.unwrap_or(0);
    let cap = parsed.u64(CAP.name)?.unwrap_or(u64::MAX);
    let verify = parsed.switch(VERIFY.name);
    let json = parsed.switch(JSON.name);

    let report_tenants: Vec<ReportTenant> = match (reports.is_empty(), checkpoint) {
        (false, Some(_)) => {
            return Err(CliError(
                "give either MRC report files or --checkpoint, not both".into(),
            ))
        }
        (true, None) => {
            return Err(CliError(
                "partition needs tenant curves: MRC report files or --checkpoint FILE".into(),
            ))
        }
        (false, None) => reports
            .iter()
            .map(|path| load_report(path))
            .collect::<Result<_, _>>()?,
        (true, Some(path)) => {
            if verify {
                return Err(CliError(
                    "--verify replays recorded trace sources, which only MRC reports carry \
                     (a serve checkpoint records curves, not traces)"
                        .into(),
                ));
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read serve checkpoint {path}: {e}")))?;
            let state = ServeState::from_json(&text)
                .map_err(|e| CliError(format!("bad serve checkpoint {path}: {e}")))?;
            let curves = if points == PARTITION_MRC_POINTS {
                state.tenant_curves().map_err(CliError)?
            } else {
                state
                    .tenants()
                    .map(|t| {
                        let mrc = state.mrc(t.name(), points)?;
                        #[allow(clippy::cast_precision_loss)]
                        TenantCurve::from_points(t.name(), t.accesses() as f64, &mrc)
                    })
                    .collect::<Result<_, _>>()
                    .map_err(CliError)?
            };
            curves
                .into_iter()
                .map(|curve| ReportTenant {
                    curve,
                    source: None,
                })
                .collect()
        }
    };

    let curves: Vec<TenantCurve> = report_tenants.iter().map(|t| t.curve.clone()).collect();
    let bounds = vec![Bounds { floor, cap }; curves.len()];
    let solution = solve(&curves, budget, &bounds).map_err(CliError)?;

    let verification = if verify {
        let equal_share = budget / curves.len() as u64;
        Some((
            simulate(&report_tenants, &solution, equal_share)?,
            equal_share,
        ))
    } else {
        None
    };

    Ok(if json {
        json_report(&solution, verification.as_ref())
    } else {
        text_report(&solution, verification.as_ref())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::sargs;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("symloc-partition-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Generates an MRC report the way `symloc trace mrc --json` does.
    fn write_report(dir: &Path, name: &str, spec: &str) -> String {
        let report = crate::cli::trace(&sargs(&format!("mrc {spec} --exact --json"))).unwrap();
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, report).unwrap();
        path.to_string_lossy().to_string()
    }

    #[test]
    fn partitions_reports_and_verifies_against_equal_split() {
        let dir = tmp_dir("reports");
        // Skewed vs uniform: zipf concentrates on few addresses, random
        // spreads across many — the acceptance-criteria pair.
        let skewed = write_report(&dir, "skewed", "gen:zipf:512:6000:1.2:7");
        let uniform = write_report(&dir, "uniform", "gen:random:512:6000:7");
        let out = partition(&sargs(&format!("160 {skewed} {uniform} --verify"))).unwrap();
        assert!(
            out.contains("partition: 160 block(s) across 2 tenant(s)"),
            "{out}"
        );
        assert!(out.contains("skewed"), "{out}");
        assert!(out.contains("what-if verification"), "{out}");
        // The solver's simulated aggregate beats the equal split strictly.
        let line = out
            .lines()
            .find(|l| l.starts_with("simulated aggregate miss ratio:"))
            .unwrap();
        let mut ratios = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|w| w.contains('.'))
            .map(|w| w.parse::<f64>().unwrap());
        let solver = ratios.next().unwrap();
        let equal = ratios.next().unwrap();
        assert!(
            solver < equal,
            "solver {solver} should strictly beat equal split {equal}: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_answer_matches_the_compact_line() {
        let dir = tmp_dir("json");
        let a = write_report(&dir, "a", "gen:cyclic:32:8");
        let out = partition(&sargs(&format!("64 {a} --json"))).unwrap();
        let doc = jsonio::parse(&out).unwrap();
        let answer = doc.get("answer").and_then(JsonValue::as_str).unwrap();
        assert!(answer.starts_with("partition 64 "), "{answer}");
        assert_eq!(doc.get("budget").and_then(JsonValue::as_u64), Some(64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_mode_matches_the_daemon_answer() {
        let dir = tmp_dir("ckpt");
        let path = dir.join("serve.ckpt.json");
        let mut state = ServeState::new(64, 8).unwrap();
        let hot = state.ensure_tenant("hot").unwrap();
        let block: Vec<u64> = (0..300).map(|i| i % 5).collect();
        state.record_block(hot, &block);
        let cold = state.ensure_tenant("cold").unwrap();
        let block: Vec<u64> = (0..300).collect();
        state.record_block(cold, &block);
        state.save(&path).unwrap();
        let daemon_answer = state.partition(32).unwrap().render_compact();
        let out = partition(&sargs(&format!(
            "32 --checkpoint {} --json",
            path.display()
        )))
        .unwrap();
        let doc = jsonio::parse(&out).unwrap();
        assert_eq!(
            doc.get("answer").and_then(JsonValue::as_str),
            Some(daemon_answer.as_str())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_inputs_are_loud_named_errors() {
        let dir = tmp_dir("bad");
        // Mangled checkpoint: valid JSON, broken tenant entry.
        let path = dir.join("serve.ckpt.json");
        let mut state = ServeState::new(64, 8).unwrap();
        let t = state.ensure_tenant("t").unwrap();
        state.record_block(t, &[1, 2, 3, 1]);
        let mangled = state
            .to_json()
            .replace("\"threshold\": ", "\"threshold\": 0, \"x\": ");
        std::fs::write(&path, mangled).unwrap();
        let err = partition(&sargs(&format!("32 --checkpoint {}", path.display()))).unwrap_err();
        assert!(err.0.contains("bad serve checkpoint"), "{err}");
        assert!(err.0.contains("threshold"), "{err}");
        // No curves at all / both sources at once.
        let err = partition(&sargs("32")).unwrap_err();
        assert!(err.0.contains("needs tenant curves"), "{err}");
        let err = partition(&sargs(&format!(
            "32 r.json --checkpoint {}",
            path.display()
        )))
        .unwrap_err();
        assert!(err.0.contains("not both"), "{err}");
        // A report that is not JSON.
        let bogus = dir.join("bogus.json");
        std::fs::write(&bogus, "not json").unwrap();
        let err = partition(&sargs(&format!("8 {}", bogus.display()))).unwrap_err();
        assert!(err.0.contains("not a JSON MRC report"), "{err}");
        // Verify needs sources, which checkpoints don't carry.
        let good = dir.join("good.ckpt.json");
        state.save(&good).unwrap();
        let err = partition(&sargs(&format!(
            "8 --checkpoint {} --verify",
            good.display()
        )))
        .unwrap_err();
        assert!(err.0.contains("--verify"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
