//! `symloc trace` — streaming trace analysis: `mrc` (exact or sampled,
//! resumable), `convert` (format conversion + sidecar chunk indexes) and
//! `index` (build the sidecar for an existing file).

use super::flags::{
    embed_json, write_metrics, CommandSpec, FlagSpec, CHECKPOINT, JSON, METRICS, THREADS,
};
use super::{help_requested, CliError};
use std::fmt::Write as _;
use std::path::Path;

use symloc_core::obs::{MetricsRegistry, Span};
use symloc_core::tracesweep::{
    log_spaced_sizes, FusedIngest, MrcPoint, OnlineReuseEngine, SampledIngest, ShardsEstimator,
    TraceIngest,
};
use symloc_par::default_threads;
use symloc_trace::binio::{
    build_sltr_index, sltr_index_path, SltrIndex, SltrWriter, DEFAULT_INDEX_INTERVAL,
};
use symloc_trace::stream::{build_text_index, AccessSink as _, MeteredSink, TraceSource};

const EXACT: FlagSpec = FlagSpec::switch(
    "--exact",
    "the exact engine (the default); with --sample = fused single-pass both",
);
const SAMPLE: FlagSpec = FlagSpec::value(
    "--sample",
    "S_MAX",
    "bounded-memory SHARDS sampling with this tracked-address budget",
);
const SHARDS: FlagSpec = FlagSpec::value(
    "--shards",
    "N",
    "chunk count (exact) / hash-shard count (sampled); default 8 / 1",
);
const POINTS: FlagSpec = FlagSpec::value(
    "--points",
    "K",
    "MRC evaluation points, log-spaced over the footprint (default 16)",
);
const MAX_CHUNKS: FlagSpec = FlagSpec::value(
    "--max-chunks",
    "N",
    "run at most N chunks/shards this invocation (needs --checkpoint)",
);
const INDEX: FlagSpec = FlagSpec::value(
    "--index",
    "N",
    "sidecar chunk-index interval for the output (0 = none; default 4096)",
);
const INTERVAL: FlagSpec = FlagSpec::value(
    "--interval",
    "N",
    "accesses between indexed offsets (default 4096)",
);

/// `symloc trace mrc` command table.
pub(crate) const TRACE_MRC: CommandSpec = CommandSpec {
    name: "trace mrc",
    summary: "reuse-distance profile and miss-ratio curve of a trace stream",
    usage: "symloc trace mrc <file|gen:...> [flags]",
    positionals: &[("source", "a trace file (text or .sltr) or a gen: spec")],
    variadic: false,
    flags: &[
        EXACT, SAMPLE, SHARDS, THREADS, POINTS, CHECKPOINT, MAX_CHUNKS, JSON, METRICS,
    ],
};

/// `symloc trace convert` command table.
pub(crate) const TRACE_CONVERT: CommandSpec = CommandSpec {
    name: "trace convert",
    summary: "convert a trace between text and .sltr (streaming, indexed)",
    usage: "symloc trace convert <file|gen:...> <out-file> [--index N]",
    positionals: &[
        ("source", "a trace file (text or .sltr) or a gen: spec"),
        (
            "out-file",
            ".sltr extension = binary output, anything else = text",
        ),
    ],
    variadic: false,
    flags: &[INDEX],
};

/// `symloc trace index` command table.
pub(crate) const TRACE_INDEX: CommandSpec = CommandSpec {
    name: "trace index",
    summary: "build the seekable sidecar chunk index for an existing trace",
    usage: "symloc trace index <file> [--interval N]",
    positionals: &[("file", "an existing text or .sltr trace file")],
    variadic: false,
    flags: &[INTERVAL],
};

/// Options of `symloc trace mrc`, parsed from its argument list.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMrcOptions {
    /// The trace source (file or `gen:` spec).
    pub source: TraceSource,
    /// `Some(s_max)` selects the bounded-memory sampled estimator
    /// (`s_max` = total tracked-address budget, split across hash shards).
    pub sample: Option<usize>,
    /// Chunk count for sharded exact ingestion.
    pub shards: usize,
    /// Hash-shard count for the sampled estimator (set by the same
    /// `--shards` flag; defaults to 1 = the sequential estimator).
    pub sample_shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Number of MRC evaluation points (log-spaced over the footprint).
    pub points: usize,
    /// Checkpoint file enabling resumable exact ingestion.
    pub checkpoint: Option<String>,
    /// At most this many chunks this invocation (`None` = run to the end).
    pub max_chunks: Option<usize>,
    /// Emit a machine-readable JSON report instead of the table.
    pub json: bool,
    /// `--exact --sample S` together: the fused single-pass run producing
    /// both the exact and the sampled curve from one streaming pass.
    pub fused: bool,
    /// Write the metrics-registry snapshot (JSON) to this file.
    pub metrics: Option<String>,
}

/// Parses the argument list of `symloc trace mrc` (everything after the
/// `mrc` subcommand).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags or unsupported combinations.
pub fn parse_trace_mrc_options(args: &[String]) -> Result<TraceMrcOptions, CliError> {
    let parsed = TRACE_MRC
        .parse(args)?
        .expect("callers handle --help before parsing");
    let source_arg = parsed
        .positionals
        .first()
        .ok_or_else(|| CliError("trace mrc needs a trace file or gen: spec".into()))?;
    let source = TraceSource::parse(source_arg).map_err(CliError)?;
    let shards = parsed.usize(SHARDS.name)?;
    let sample = parsed.usize(SAMPLE.name)?;
    let options = TraceMrcOptions {
        source,
        sample,
        shards: shards.unwrap_or(8),
        sample_shards: shards.unwrap_or(1),
        threads: parsed.usize(THREADS.name)?.unwrap_or_else(default_threads),
        points: parsed.usize(POINTS.name)?.unwrap_or(16),
        checkpoint: parsed.value(CHECKPOINT.name).map(ToString::to_string),
        max_chunks: parsed.usize(MAX_CHUNKS.name)?,
        json: parsed.switch(JSON.name),
        fused: parsed.switch(EXACT.name) && sample.is_some(),
        metrics: parsed.value(METRICS.name).map(ToString::to_string),
    };
    if options.sample == Some(0) {
        return Err(CliError("--sample needs a positive budget".into()));
    }
    if shards == Some(0) {
        return Err(CliError("--shards must be positive".into()));
    }
    if options.points == 0 {
        return Err(CliError("--points must be positive".into()));
    }
    if let Some(s_max) = options.sample {
        if s_max < options.sample_shards {
            return Err(CliError(format!(
                "--sample {s_max} is below one tracked address per hash shard \
                 (--shards {})",
                options.sample_shards
            )));
        }
    }
    if options.max_chunks.is_some() && options.checkpoint.is_none() {
        return Err(CliError(
            "--max-chunks only makes sense with --checkpoint (a bounded \
             partial ingest needs somewhere to save its progress)"
                .into(),
        ));
    }
    Ok(options)
}

/// Opens a fully validated stream over `source`: scans it once (catching
/// unreadable files and malformed content as a [`CliError`] instead of the
/// panic `stream_range` reserves for validated sources), then streams.
fn validated_stream(source: &TraceSource) -> Result<symloc_trace::stream::AccessIter, CliError> {
    source
        .total_accesses()
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))?;
    source
        .stream()
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))
}

/// Block-streaming counterpart of [`validated_stream`] — the shape the
/// exact hot loop consumes ([`OnlineReuseEngine::record_block`]).
fn validated_block_stream(
    source: &TraceSource,
) -> Result<symloc_trace::stream::AccessBlocks, CliError> {
    let total = source
        .total_accesses()
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))?;
    source
        .stream_blocks_range(0, total)
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))
}

/// Renders the MRC table of a finished (exact or sampled) analysis.
pub(crate) fn mrc_table(points: &[MrcPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12} {:>12}", "cache size", "miss ratio");
    for p in points {
        let _ = writeln!(out, "{:>12} {:>12.4}", p.cache_size, p.miss_ratio);
    }
    out
}

/// Renders MRC points as a JSON `[[size, ratio], ...]` array fragment.
pub(crate) fn mrc_array(points: &[MrcPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}[{}, {}]", p.cache_size, p.miss_ratio);
    }
    out.push(']');
    out
}

/// Renders a finished MRC analysis as a JSON document, with the run's
/// metrics-registry snapshot attached.
fn mrc_json(
    source: &TraceSource,
    engine: &str,
    accesses: u64,
    footprint: usize,
    estimated: bool,
    points: &[MrcPoint],
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"source\": \"{}\",",
        symloc_core::jsonio::escape(&source.fingerprint())
    );
    let _ = writeln!(out, "  \"engine\": \"{engine}\",");
    let _ = writeln!(out, "  \"complete\": true,");
    let _ = writeln!(out, "  \"accesses\": {accesses},");
    let _ = writeln!(out, "  \"footprint\": {footprint},");
    let _ = writeln!(out, "  \"footprint_estimated\": {estimated},");
    let _ = writeln!(out, "  \"mrc\": {},", mrc_array(points));
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// Renders a finished fused run — both curves — as one JSON document.
#[allow(clippy::too_many_arguments)]
fn fused_mrc_json(
    source: &TraceSource,
    accesses: u64,
    streamed: u64,
    footprint: usize,
    exact_points: &[MrcPoint],
    est_footprint: usize,
    min_rate: f64,
    sampled_points: &[MrcPoint],
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"source\": \"{}\",",
        symloc_core::jsonio::escape(&source.fingerprint())
    );
    let _ = writeln!(out, "  \"engine\": \"fused_exact_sampled\",");
    let _ = writeln!(out, "  \"complete\": true,");
    let _ = writeln!(out, "  \"accesses\": {accesses},");
    let _ = writeln!(out, "  \"streamed\": {streamed},");
    let _ = writeln!(
        out,
        "  \"exact\": {{\"footprint\": {footprint}, \"mrc\": {}}},",
        mrc_array(exact_points)
    );
    let _ = writeln!(
        out,
        "  \"sampled\": {{\"footprint\": {est_footprint}, \"footprint_estimated\": true, \
         \"min_rate\": {min_rate}, \"mrc\": {}}},",
        mrc_array(sampled_points)
    );
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// Renders an in-progress checkpointed ingest as a JSON document.
fn mrc_progress_json(
    source: &TraceSource,
    completed: usize,
    total: usize,
    metrics: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"source\": \"{}\",",
        symloc_core::jsonio::escape(&source.fingerprint())
    );
    let _ = writeln!(out, "  \"complete\": false,");
    let _ = writeln!(out, "  \"completed\": {completed},");
    let _ = writeln!(out, "  \"total\": {total},");
    let _ = writeln!(out, "  \"metrics\": {}", embed_json(&metrics.to_json()));
    out.push_str("}\n");
    out
}

/// `symloc trace mrc <file|gen:...>` — streams the trace once and reports
/// its reuse-distance profile and miss-ratio curve: exact (optionally
/// sharded and checkpoint-resumable), SHARDS-sampled in `O(s_max)` memory,
/// or — with `--exact --sample S` together — the fused single-pass run
/// reporting both curves from one streaming pass.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments, unreadable sources,
/// checkpoint I/O failures, or a checkpoint file of a different job kind.
pub fn trace_mrc(args: &[String]) -> Result<String, CliError> {
    if help_requested(args) {
        return Ok(TRACE_MRC.help());
    }
    let options = parse_trace_mrc_options(args)?;
    let source = &options.source;
    let mut registry = MetricsRegistry::new();
    let mut out = String::new();
    let _ = writeln!(out, "trace mrc — {source}");

    if options.fused {
        return trace_mrc_fused(&options, out, &mut registry);
    }

    if let Some(s_max) = options.sample {
        // Hash-sharded (and optionally checkpoint-resumable) parallel
        // sampling; one hash shard without a checkpoint degenerates to the
        // classic single-pass sequential estimator below.
        if options.checkpoint.is_some() || options.sample_shards > 1 {
            let shard_count = options.sample_shards;
            let budget = (s_max / shard_count).max(1);
            let summary = if let Some(checkpoint) = &options.checkpoint {
                let path = Path::new(checkpoint);
                let (mut ingest, resumed) = SampledIngest::resume_or_new(
                    source,
                    shard_count,
                    budget,
                    options.threads,
                    path,
                )
                .map_err(CliError)?;
                if resumed {
                    let _ = writeln!(
                        out,
                        "resumed from {checkpoint}: {} of {} hash shards were already done",
                        ingest.completed_count(),
                        ingest.shard_count()
                    );
                } else if path.exists() {
                    let _ = writeln!(
                        out,
                        "warning: existing checkpoint {checkpoint} does not match this \
                         source/plan (source {source}, {} accesses, {} hash shards); \
                         starting fresh and overwriting it",
                        ingest.total_accesses(),
                        ingest.shard_count()
                    );
                }
                let ran = ingest
                    .run_with_checkpoint_metered(
                        source,
                        path,
                        options.max_chunks,
                        Some(&mut registry),
                        |_, _| {},
                    )
                    .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
                write_metrics(options.metrics.as_deref(), &registry)?;
                let _ = writeln!(
                    out,
                    "ran {ran} hash shard(s); {} of {} complete; checkpoint saved to {checkpoint}",
                    ingest.completed_count(),
                    ingest.shard_count()
                );
                match ingest.merged() {
                    Some(summary) => summary,
                    None => {
                        if options.json {
                            return Ok(mrc_progress_json(
                                source,
                                ingest.completed_count(),
                                ingest.shard_count(),
                                &registry,
                            ));
                        }
                        let _ = writeln!(
                            out,
                            "sampled ingest incomplete — re-run the same command to \
                             continue from the checkpoint"
                        );
                        return Ok(out);
                    }
                }
            } else {
                let mut ingest = SampledIngest::new(source, shard_count, budget, options.threads)
                    .map_err(CliError)?;
                let span = Span::start();
                ingest.run_pending(source, None);
                registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
                span.record(&mut registry, "trace.total_nanos");
                write_metrics(options.metrics.as_deref(), &registry)?;
                ingest.merged().expect("sampled ingest ran to completion")
            };
            let footprint = summary.estimated_footprint().round().max(1.0) as usize;
            let sizes = log_spaced_sizes(footprint, options.points);
            let points = summary.histogram.mrc_points(&sizes);
            if options.json {
                return Ok(mrc_json(
                    source,
                    "sampled_hash_sharded",
                    summary.raw_accesses,
                    footprint,
                    true,
                    &points,
                    &registry,
                ));
            }
            let _ = writeln!(out, "accesses            : {}", summary.raw_accesses);
            let _ = writeln!(
                out,
                "engine              : sampled hash-sharded ({shard_count} shards x {budget} \
                 budget, min rate {:.4}, {} sampled, {} evictions, {} threads)",
                summary.min_rate, summary.sampled_accesses, summary.evictions, options.threads
            );
            let _ = writeln!(out, "footprint           : ~{footprint} (estimated)");
            out.push_str(&mrc_table(&points));
            return Ok(out);
        }

        // The bounded-memory sampled estimator: one sequential pass.
        let mut estimator = ShardsEstimator::new(s_max);
        let span = Span::start();
        estimator.record_all(validated_stream(source)?);
        registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
        span.record(&mut registry, "trace.total_nanos");
        estimator.record_gauges(&mut registry);
        write_metrics(options.metrics.as_deref(), &registry)?;
        let footprint = estimator.estimated_footprint().round().max(1.0) as usize;
        let sizes = log_spaced_sizes(footprint, options.points);
        let points = estimator.mrc_points(&sizes);
        if options.json {
            return Ok(mrc_json(
                source,
                "sampled",
                estimator.raw_accesses(),
                footprint,
                true,
                &points,
                &registry,
            ));
        }
        let _ = writeln!(out, "accesses            : {}", estimator.raw_accesses());
        let _ = writeln!(
            out,
            "engine              : sampled (s_max {s_max}, rate {:.4}, {} sampled, {} evictions)",
            estimator.sampling_rate(),
            estimator.sampled_accesses(),
            estimator.evictions()
        );
        let _ = writeln!(out, "footprint           : ~{footprint} (estimated)");
        out.push_str(&mrc_table(&points));
        return Ok(out);
    }

    let mut engine_name = "exact_streaming";
    let histogram = if let Some(checkpoint) = &options.checkpoint {
        let path = Path::new(checkpoint);
        let (mut ingest, resumed) =
            TraceIngest::resume_or_new(source, options.shards, options.threads, path)
                .map_err(CliError)?;
        if resumed {
            let _ = writeln!(
                out,
                "resumed from {checkpoint}: {} of {} chunks were already done",
                ingest.completed_count(),
                ingest.chunk_count()
            );
        } else if path.exists() {
            // A checkpoint is on disk but did not match this source, access
            // count or chunk plan — say so before overwriting it, so a
            // mistyped --shards or path does not silently discard progress.
            let _ = writeln!(
                out,
                "warning: existing checkpoint {checkpoint} does not match this \
                 source/plan (source {source}, {} accesses, {} chunks); starting \
                 fresh and overwriting it",
                ingest.total_accesses(),
                ingest.chunk_count()
            );
        }
        let ran = ingest
            .run_with_checkpoint_metered(
                source,
                path,
                options.max_chunks,
                Some(&mut registry),
                |_, _| {},
            )
            .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
        write_metrics(options.metrics.as_deref(), &registry)?;
        let _ = writeln!(
            out,
            "ran {ran} chunk(s); {} of {} complete; checkpoint saved to {checkpoint}",
            ingest.completed_count(),
            ingest.chunk_count()
        );
        match ingest.histogram() {
            Some(h) => {
                engine_name = "exact_sharded";
                let _ = writeln!(out, "accesses            : {}", h.accesses());
                let _ = writeln!(
                    out,
                    "engine              : exact sharded ({} chunks, {} threads)",
                    ingest.chunk_count(),
                    options.threads
                );
                h.clone()
            }
            None => {
                if options.json {
                    return Ok(mrc_progress_json(
                        source,
                        ingest.completed_count(),
                        ingest.chunk_count(),
                        &registry,
                    ));
                }
                let _ = writeln!(
                    out,
                    "ingest incomplete — re-run the same command to continue from the checkpoint"
                );
                return Ok(out);
            }
        }
    } else if options.threads > 1 {
        let mut ingest =
            TraceIngest::new(source, options.shards, options.threads).map_err(CliError)?;
        let span = Span::start();
        ingest.run_pending(source, None);
        registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
        span.record(&mut registry, "trace.total_nanos");
        write_metrics(options.metrics.as_deref(), &registry)?;
        let h = ingest
            .histogram()
            .expect("ingest ran to completion")
            .clone();
        engine_name = "exact_sharded";
        let _ = writeln!(out, "accesses            : {}", h.accesses());
        let _ = writeln!(
            out,
            "engine              : exact sharded ({} chunks, {} threads)",
            ingest.chunk_count(),
            options.threads
        );
        h
    } else {
        // The single-threaded exact path runs through a `MeteredSink`, so
        // decode time (pulling blocks off the source) and compute time
        // (the engine's Fenwick work) are split — delivery to the engine
        // is unchanged, so the curve is byte-identical to the unmetered
        // loop.
        let mut sink = MeteredSink::new(OnlineReuseEngine::new());
        let mut blocks = validated_block_stream(source)?;
        let mut buf = Vec::new();
        loop {
            let decode = Span::start();
            let n = blocks.next_block(&mut buf);
            sink.add_decode_nanos(decode.elapsed_nanos());
            if n == 0 {
                break;
            }
            sink.on_block(&buf);
        }
        registry.add("trace.accesses", sink.accesses());
        registry.add("trace.blocks", sink.blocks());
        registry.add("trace.decode_nanos", sink.decode_nanos());
        registry.add("trace.compute_nanos", sink.compute_nanos());
        let engine = sink.into_inner();
        engine.record_gauges(&mut registry);
        write_metrics(options.metrics.as_deref(), &registry)?;
        let _ = writeln!(out, "accesses            : {}", engine.accesses());
        let _ = writeln!(out, "engine              : exact streaming (1 thread)");
        engine.into_histogram()
    };

    let footprint = usize::try_from(histogram.cold_count()).unwrap_or(usize::MAX);
    let sizes = log_spaced_sizes(footprint, options.points);
    let points = histogram.mrc_points(&sizes);
    if options.json {
        return Ok(mrc_json(
            source,
            engine_name,
            histogram.accesses(),
            footprint,
            false,
            &points,
            &registry,
        ));
    }
    let _ = writeln!(out, "footprint           : {footprint}");
    out.push_str(&mrc_table(&points));
    Ok(out)
}

/// The fused `--exact --sample` path of [`trace_mrc`]: **one** streaming
/// pass over the trace produces both the exact and the sampled curve
/// (identical to what separate exact and sampled runs would report),
/// optionally checkpoint-resumable like either separate pipeline.
fn trace_mrc_fused(
    options: &TraceMrcOptions,
    mut out: String,
    registry: &mut MetricsRegistry,
) -> Result<String, CliError> {
    let source = &options.source;
    let s_max = options.sample.expect("fused mode implies --sample");
    let shard_count = options.sample_shards;
    let budget = (s_max / shard_count).max(1);
    let ingest = if let Some(checkpoint) = &options.checkpoint {
        let path = Path::new(checkpoint);
        let (mut ingest, resumed) = FusedIngest::resume_or_new(
            source,
            options.shards,
            shard_count,
            budget,
            options.threads,
            path,
        )
        .map_err(CliError)?;
        if resumed {
            let _ = writeln!(
                out,
                "resumed from {checkpoint}: {} of {} chunks were already done",
                ingest.completed_count(),
                ingest.chunk_count()
            );
        } else if path.exists() {
            let _ = writeln!(
                out,
                "warning: existing checkpoint {checkpoint} does not match this \
                 source/plan (source {source}, {} accesses, {} chunks, {} hash \
                 shards); starting fresh and overwriting it",
                ingest.total_accesses(),
                ingest.chunk_count(),
                ingest.shard_count()
            );
        }
        let ran = ingest
            .run_with_checkpoint_metered(
                source,
                path,
                options.max_chunks,
                Some(&mut *registry),
                |_, _| {},
            )
            .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
        write_metrics(options.metrics.as_deref(), registry)?;
        let _ = writeln!(
            out,
            "ran {ran} chunk(s); {} of {} complete; checkpoint saved to {checkpoint}",
            ingest.completed_count(),
            ingest.chunk_count()
        );
        ingest
    } else {
        let mut ingest =
            FusedIngest::new(source, options.shards, shard_count, budget, options.threads)
                .map_err(CliError)?;
        let span = Span::start();
        ingest.run_pending(source, None);
        registry.set_gauge("job.elapsed_secs", span.elapsed_secs());
        span.record(registry, "trace.total_nanos");
        write_metrics(options.metrics.as_deref(), registry)?;
        ingest
    };
    let (Some(histogram), Some(summary)) = (ingest.exact_histogram(), ingest.sampled_summary())
    else {
        if options.json {
            return Ok(mrc_progress_json(
                source,
                ingest.completed_count(),
                ingest.chunk_count(),
                registry,
            ));
        }
        let _ = writeln!(
            out,
            "fused ingest incomplete — re-run the same command to continue from \
             the checkpoint"
        );
        return Ok(out);
    };
    let footprint = usize::try_from(histogram.cold_count()).unwrap_or(usize::MAX);
    let exact_points = histogram.mrc_points(&log_spaced_sizes(footprint, options.points));
    let est_footprint = summary.estimated_footprint().round().max(1.0) as usize;
    let sampled_points = summary
        .histogram
        .mrc_points(&log_spaced_sizes(est_footprint, options.points));
    if options.json {
        return Ok(fused_mrc_json(
            source,
            histogram.accesses(),
            ingest.streamed_accesses(),
            footprint,
            &exact_points,
            est_footprint,
            summary.min_rate,
            &sampled_points,
            registry,
        ));
    }
    let _ = writeln!(out, "accesses            : {}", histogram.accesses());
    let _ = writeln!(
        out,
        "engine              : fused single-pass ({} chunks -> exact + {} hash \
         shards x {} budget, min rate {:.4}, {} threads)",
        ingest.chunk_count(),
        shard_count,
        budget,
        summary.min_rate,
        options.threads
    );
    let _ = writeln!(
        out,
        "streamed            : {} (each access decoded once)",
        ingest.streamed_accesses()
    );
    let _ = writeln!(out, "exact footprint     : {footprint}");
    out.push_str(&mrc_table(&exact_points));
    let _ = writeln!(out, "sampled footprint   : ~{est_footprint} (estimated)");
    out.push_str(&mrc_table(&sampled_points));
    Ok(out)
}

/// `symloc trace convert <in> <out> [--index N]` — streams a trace from any
/// source into a file, picking the output format by extension (`.sltr` =
/// binary varint, anything else = plain text). Never materializes the
/// trace, so converting a multi-gigabyte generator spec to `.sltr` is fine.
///
/// Both output formats also get a sidecar chunk index at `<out>.idx` (byte
/// offset every `N` accesses — default 4096) so later range reads *seek*
/// instead of decode- or parse-skipping; `--index 0` disables it.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments or I/O failures.
pub fn trace_convert(args: &[String]) -> Result<String, CliError> {
    if help_requested(args) {
        return Ok(TRACE_CONVERT.help());
    }
    let parsed = TRACE_CONVERT.parse(args)?.expect("--help handled above");
    let source_arg = parsed
        .positionals
        .first()
        .ok_or_else(|| CliError("trace convert needs a source".into()))?;
    let out_path = parsed
        .positionals
        .get(1)
        .ok_or_else(|| CliError("trace convert needs an output file".into()))?
        .clone();
    let interval = parsed.u64(INDEX.name)?.unwrap_or(DEFAULT_INDEX_INTERVAL);
    let source = TraceSource::parse(source_arg).map_err(CliError)?;
    let stream = validated_stream(&source)?;
    let binary = Path::new(&out_path)
        .extension()
        .is_some_and(|e| e == "sltr");
    let sidecar = sltr_index_path(Path::new(&out_path));
    let mut indexed = false;
    let written = if binary {
        let io_err = |e| CliError(format!("cannot write {out_path}: {e}"));
        let file = std::fs::File::create(&out_path)
            .map_err(|e| CliError(format!("cannot create {out_path}: {e}")))?;
        if interval > 0 {
            let mut writer = SltrWriter::new_indexed(file, interval).map_err(io_err)?;
            for addr in stream {
                writer.push(addr).map_err(io_err)?;
            }
            let (written, index) = writer.finish_indexed().map_err(io_err)?;
            index
                .write(&sidecar)
                .map_err(|e| CliError(format!("cannot write {}: {e}", sidecar.display())))?;
            indexed = true;
            written
        } else {
            // --index 0: no sidecar, and make sure a stale one from a
            // previous conversion cannot outlive the new payload.
            std::fs::remove_file(&sidecar).ok();
            let mut writer = SltrWriter::new(file).map_err(io_err)?;
            for addr in stream {
                writer.push(addr).map_err(io_err)?;
            }
            writer.finish().map_err(io_err)?
        }
    } else {
        use std::io::Write as _;
        let file = std::fs::File::create(&out_path)
            .map_err(|e| CliError(format!("cannot create {out_path}: {e}")))?;
        let mut writer = std::io::BufWriter::new(file);
        let mut written = 0u64;
        let mut bytes = 0u64;
        let mut offsets = Vec::new();
        (|| -> std::io::Result<()> {
            let header = "# symloc trace\n";
            writer.write_all(header.as_bytes())?;
            bytes += header.len() as u64;
            let mut line = String::new();
            for addr in stream {
                if interval > 0 && written > 0 && written.is_multiple_of(interval) {
                    offsets.push(bytes);
                }
                line.clear();
                let _ = writeln!(line, "{addr}");
                writer.write_all(line.as_bytes())?;
                bytes += line.len() as u64;
                written += 1;
            }
            writer.flush()
        })()
        .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
        if interval > 0 {
            SltrIndex::from_parts(interval, written, bytes, offsets)
                .write(&sidecar)
                .map_err(|e| CliError(format!("cannot write {}: {e}", sidecar.display())))?;
            indexed = true;
        } else {
            std::fs::remove_file(&sidecar).ok();
        }
        written
    };
    Ok(format!(
        "converted {source} -> {out_path} ({written} accesses, {} format{})\n",
        if binary { "sltr" } else { "text" },
        if indexed {
            format!(
                ", {} index every {interval}",
                if binary { "chunk" } else { "line" }
            )
        } else {
            String::new()
        }
    ))
}

/// `symloc trace index <file> [--interval N]` — builds the seekable
/// sidecar chunk index for an *existing* trace file (text or `.sltr`), so
/// sharded ingests seek instead of decode- or parse-skipping to their
/// chunks. Overwrites any previous sidecar.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments, non-file sources, or
/// read/parse failures.
pub fn trace_index(args: &[String]) -> Result<String, CliError> {
    if help_requested(args) {
        return Ok(TRACE_INDEX.help());
    }
    let parsed = TRACE_INDEX.parse(args)?.expect("--help handled above");
    let file = parsed
        .positionals
        .first()
        .ok_or_else(|| CliError("trace index needs a trace file".into()))?;
    let interval = parsed.u64(INTERVAL.name)?.unwrap_or(DEFAULT_INDEX_INTERVAL);
    if interval == 0 {
        return Err(CliError("--interval must be positive".into()));
    }
    let source = TraceSource::parse(file).map_err(CliError)?;
    let (path, index, kind) = match &source {
        TraceSource::Text(path) => (
            path.clone(),
            build_text_index(path, interval)
                .map_err(|e| CliError(format!("cannot index {file}: {e}")))?,
            "line",
        ),
        TraceSource::Binary(path) => (
            path.clone(),
            build_sltr_index(path, interval)
                .map_err(|e| CliError(format!("cannot index {file}: {e}")))?,
            "chunk",
        ),
        TraceSource::Gen(_) | TraceSource::Memory(_) => {
            return Err(CliError(
                "trace index needs a file on disk (generator specs position in O(1) already)"
                    .into(),
            ))
        }
    };
    let sidecar = sltr_index_path(&path);
    index
        .write(&sidecar)
        .map_err(|e| CliError(format!("cannot write {}: {e}", sidecar.display())))?;
    Ok(format!(
        "indexed {file}: {} accesses, {} index every {interval} -> {}\n",
        index.total_accesses(),
        kind,
        sidecar.display()
    ))
}

/// Dispatches the `symloc trace <mrc|convert|index>` subcommands.
///
/// # Errors
///
/// See [`trace_mrc`], [`trace_convert`] and [`trace_index`].
pub fn trace(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("mrc") => trace_mrc(&args[1..]),
        Some("convert") => trace_convert(&args[1..]),
        Some("index") => trace_index(&args[1..]),
        Some("--help" | "-h") => Ok(format!(
            "symloc trace — streaming trace analysis\n\nUSAGE:\n  {}\n  {}\n  {}\n",
            TRACE_MRC.usage, TRACE_CONVERT.usage, TRACE_INDEX.usage
        )),
        Some(other) => Err(CliError(format!(
            "unknown trace subcommand {other:?} (expected mrc, convert or index)"
        ))),
        None => Err(CliError(
            "trace needs a subcommand (mrc, convert or index)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::sargs;
    use symloc_core::jsonio::{self, JsonValue};
    use symloc_trace::io::read_trace;

    #[test]
    fn trace_mrc_option_parsing() {
        let options = parse_trace_mrc_options(&sargs(
            "gen:zipf:100:1000:0.9:1 --sample 64 --threads 2 --points 8",
        ))
        .unwrap();
        assert_eq!(options.sample, Some(64));
        assert_eq!(options.threads, 2);
        assert_eq!(options.points, 8);
        assert!(!options.json);
        assert!(matches!(options.source, TraceSource::Gen(_)));
        assert!(parse_trace_mrc_options(&sargs("")).is_err());
        assert!(parse_trace_mrc_options(&sargs("gen:bogus:1")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --shards 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --points 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --frobnicate 1")).is_err());
        // --exact --sample together select the fused single-pass mode.
        let fused = parse_trace_mrc_options(&sargs("x.trace --exact --sample 9")).unwrap();
        assert!(fused.fused);
        assert_eq!(fused.sample, Some(9));
        assert!(
            !parse_trace_mrc_options(&sargs("x.trace --sample 9"))
                .unwrap()
                .fused
        );
        assert!(
            !parse_trace_mrc_options(&sargs("x.trace --exact"))
                .unwrap()
                .fused
        );
        // The fused budget floor matches the sampled path's.
        assert!(parse_trace_mrc_options(&sargs("x.trace --exact --sample 3 --shards 4")).is_err());
        // Sampled runs checkpoint now (hash shards), and --shards doubles
        // as the hash-shard count on the sampled path.
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 9 --checkpoint c.json")).is_ok());
        let sharded = parse_trace_mrc_options(&sargs("x.trace --sample 64 --shards 4")).unwrap();
        assert_eq!(sharded.sample_shards, 4);
        assert_eq!(
            parse_trace_mrc_options(&sargs("x.trace --sample 64"))
                .unwrap()
                .sample_shards,
            1
        );
        // A budget below one address per shard is rejected.
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 3 --shards 4")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --max-chunks 2")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --exact")).is_ok());
        assert!(
            parse_trace_mrc_options(&sargs("x.trace --json"))
                .unwrap()
                .json
        );
    }

    #[test]
    fn trace_mrc_exact_sampled_and_sharded_agree() {
        // Exact streaming, exact sharded and full-budget sampling must all
        // report the same curve for the same generated trace.
        let exact = trace_mrc(&sargs("gen:sawtooth:50:8 --threads 1 --points 6")).unwrap();
        assert!(exact.contains("accesses            : 400"));
        assert!(exact.contains("exact streaming"));
        assert!(exact.contains("footprint           : 50"));
        let sharded = trace_mrc(&sargs(
            "gen:sawtooth:50:8 --threads 3 --shards 5 --points 6",
        ))
        .unwrap();
        assert!(sharded.contains("exact sharded (5 chunks, 3 threads)"));
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("footprint"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&exact), tail(&sharded));
        // A sampling budget beyond the footprint reproduces the exact curve.
        let sampled = trace_mrc(&sargs("gen:sawtooth:50:8 --sample 100 --points 6")).unwrap();
        assert!(sampled.contains("rate 1.0000"));
        assert!(sampled.contains("~50 (estimated)"));
        for line in tail(&exact).lines().skip(1) {
            assert!(
                sampled.contains(line.trim_start_matches(' ')),
                "missing {line:?}"
            );
        }
    }

    #[test]
    fn trace_mrc_json_output_parses() {
        let report = trace_mrc(&sargs("gen:sawtooth:50:8 --threads 1 --points 6 --json")).unwrap();
        let doc = jsonio::parse(&report).unwrap();
        assert_eq!(
            doc.get("source").and_then(JsonValue::as_str),
            Some("gen:sawtooth:50:8")
        );
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("accesses").and_then(JsonValue::as_u64), Some(400));
        assert_eq!(doc.get("footprint").and_then(JsonValue::as_u64), Some(50));
        let mrc = doc.get("mrc").and_then(JsonValue::as_array).unwrap();
        assert!(!mrc.is_empty());
        for point in mrc {
            let pair = point.as_array().unwrap();
            assert!(pair[0].as_u64().is_some());
            assert!((0.0..=1.0).contains(&pair[1].as_f64().unwrap()));
        }
        // The sampled engine reports an estimated footprint.
        let sampled =
            trace_mrc(&sargs("gen:sawtooth:50:8 --sample 100 --points 6 --json")).unwrap();
        let doc = jsonio::parse(&sampled).unwrap();
        assert_eq!(doc.get("footprint_estimated"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn trace_mrc_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_trace_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        let spec = format!("gen:zipf:60:2000:0.8:3 --shards 6 --threads 2 --checkpoint {path_str}");
        let first = trace_mrc(&sargs(&format!("{spec} --max-chunks 2"))).unwrap();
        assert!(first.contains("2 of 6 complete"));
        assert!(first.contains("ingest incomplete"));

        // A --json probe of the incomplete state reports progress.
        let probe = trace_mrc(&sargs(&format!("{spec} --max-chunks 0 --json"))).unwrap();
        let doc = jsonio::parse(&probe).unwrap();
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(2));

        let second = trace_mrc(&sargs(&spec)).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("6 of 6 complete"));
        assert!(second.contains("accesses            : 2000"));

        // A mismatched chunk plan does not silently discard the checkpoint:
        // the report warns before overwriting.
        let mismatched = trace_mrc(&sargs(&format!(
            "gen:zipf:60:2000:0.8:3 --shards 9 --threads 2 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(mismatched.contains("does not match this source/plan"));
        assert!(mismatched.contains("9 of 9 complete"));

        // The checkpointed result equals the direct streaming analysis.
        let direct = trace_mrc(&sargs("gen:zipf:60:2000:0.8:3 --threads 1")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("footprint"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_mrc_hash_sharded_sampling_and_checkpoint_flow() {
        let path = std::env::temp_dir().join("symloc_cli_sampled_trace_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // Hash-sharded sampled run without a checkpoint.
        let direct = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --points 6",
        ))
        .unwrap();
        assert!(
            direct.contains("sampled hash-sharded (4 shards x 16 budget"),
            "{direct}"
        );
        assert!(direct.contains("accesses            : 4000"));

        // The same plan, checkpointed and interrupted mid-run.
        let spec = format!(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --points 6 --checkpoint {path_str}"
        );
        let first = trace_mrc(&sargs(&format!("{spec} --max-chunks 2"))).unwrap();
        assert!(first.contains("2 of 4 complete"), "{first}");
        assert!(first.contains("sampled ingest incomplete"));

        let second = trace_mrc(&sargs(&spec)).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("4 of 4 complete"));

        // Checkpointed and direct runs agree from the engine line down.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("accesses"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));

        // One hash shard falls back to the classic sequential estimator
        // output.
        let single = trace_mrc(&sargs("gen:zipf:200:4000:0.8:5 --sample 64 --points 6")).unwrap();
        assert!(single.contains("engine              : sampled (s_max 64"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_mrc_fused_agrees_with_separate_exact_and_sampled_runs() {
        // One fused pass must reproduce the exact table of the sharded
        // exact run *and* the sampled table of the hash-sharded sampled
        // run, for the same plans.
        let fused = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --threads 2 --points 6",
        ))
        .unwrap();
        assert!(
            fused.contains(
                "engine              : fused single-pass (4 chunks -> exact + 4 hash \
                 shards x 16 budget"
            ),
            "{fused}"
        );
        assert!(fused.contains("accesses            : 4000"));
        assert!(fused.contains("streamed            : 4000 (each access decoded once)"));
        let exact = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --shards 4 --threads 2 --points 6",
        ))
        .unwrap();
        let sampled = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --points 6",
        ))
        .unwrap();
        let table_after = |s: &str, marker: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with(marker))
                .skip(1)
                .take_while(|l| l.starts_with("  "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            table_after(&fused, "exact footprint"),
            table_after(&exact, "footprint"),
            "fused exact curve must match the two-pass exact curve"
        );
        assert_eq!(
            table_after(&fused, "sampled footprint"),
            table_after(&sampled, "footprint"),
            "fused sampled curve must match the two-pass sampled curve"
        );
    }

    #[test]
    fn trace_mrc_fused_json_reports_both_curves() {
        let report = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --points 6 --json",
        ))
        .unwrap();
        let doc = jsonio::parse(&report).unwrap();
        assert_eq!(
            doc.get("engine").and_then(JsonValue::as_str),
            Some("fused_exact_sampled")
        );
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("accesses").and_then(JsonValue::as_u64), Some(4000));
        // One pass: every access decoded exactly once.
        assert_eq!(doc.get("streamed").and_then(JsonValue::as_u64), Some(4000));
        let exact = doc.get("exact").unwrap();
        assert!(exact.get("footprint").and_then(JsonValue::as_u64).is_some());
        let sampled = doc.get("sampled").unwrap();
        assert_eq!(
            sampled.get("footprint_estimated"),
            Some(&JsonValue::Bool(true))
        );
        assert!(sampled
            .get("min_rate")
            .and_then(JsonValue::as_f64)
            .is_some());
        for engine in [exact, sampled] {
            let mrc = engine.get("mrc").and_then(JsonValue::as_array).unwrap();
            assert!(!mrc.is_empty());
            for point in mrc {
                let pair = point.as_array().unwrap();
                assert!(pair[0].as_u64().is_some());
                assert!((0.0..=1.0).contains(&pair[1].as_f64().unwrap()));
            }
        }
    }

    #[test]
    fn trace_mrc_fused_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join(format!(
            "symloc_cli_fused_trace_checkpoint_{}.json",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        let spec = format!(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --points 6 \
             --checkpoint {path_str}"
        );
        let first = trace_mrc(&sargs(&format!("{spec} --max-chunks 2"))).unwrap();
        assert!(first.contains("2 of 4 complete"), "{first}");
        assert!(first.contains("fused ingest incomplete"));

        // A --json probe of the incomplete state reports progress.
        let probe = trace_mrc(&sargs(&format!("{spec} --max-chunks 0 --json"))).unwrap();
        let doc = jsonio::parse(&probe).unwrap();
        assert_eq!(doc.get("complete"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("completed").and_then(JsonValue::as_u64), Some(2));

        let second = trace_mrc(&sargs(&spec)).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("4 of 4 complete"));

        // Checkpointed and direct fused runs agree from the accesses line.
        let direct = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 4 --points 6",
        ))
        .unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("accesses"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));

        // A mismatched plan warns before overwriting.
        let mismatched = trace_mrc(&sargs(&format!(
            "gen:zipf:200:4000:0.8:5 --exact --sample 64 --shards 6 --points 6 \
             --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(mismatched.contains("does not match this source/plan"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_convert_round_trips_both_formats() {
        let dir = std::env::temp_dir();
        let sltr = dir.join("symloc_cli_convert_test.sltr");
        let text = dir.join("symloc_cli_convert_test.trace");
        let sidecar = sltr_index_path(&sltr);
        let text_sidecar = sltr_index_path(&text);
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {}",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("36 accesses, sltr format, chunk index every 4096"));
        assert!(sidecar.exists(), "convert must write the sidecar index");
        let report = trace_convert(&sargs(&format!(
            "{} {}",
            sltr.to_string_lossy(),
            text.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("36 accesses, text format, line index every 4096"));
        assert!(
            text_sidecar.exists(),
            "text output gets a line index sidecar too"
        );
        assert_eq!(
            read_trace(&text).unwrap(),
            symloc_trace::generators::sawtooth_trace(9, 4)
        );
        // A custom interval lands in the report; --index 0 removes the
        // sidecar again, for either format.
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {} --index 16",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("chunk index every 16"));
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {} --index 0",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(!report.contains("chunk index"));
        assert!(!sidecar.exists(), "--index 0 must clear a stale sidecar");
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {} --index 0",
            text.to_string_lossy()
        )))
        .unwrap();
        assert!(!report.contains("line index"));
        assert!(!text_sidecar.exists(), "--index 0 clears text sidecars too");
        assert!(trace_convert(&sargs("gen:cyclic:4:2")).is_err());
        assert!(trace_convert(&sargs("")).is_err());
        assert!(trace_convert(&sargs("gen:cyclic:4:2 out.sltr extra")).is_err());
        assert!(trace_convert(&sargs("/no/such/file.trace out.sltr")).is_err());
        std::fs::remove_file(&sltr).ok();
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&sidecar).ok();
        std::fs::remove_file(&text_sidecar).ok();
    }

    #[test]
    fn converted_text_index_makes_ranges_seek_identically() {
        // The line index written by `trace convert` must validate and give
        // the same ranges as parse-skipping.
        let dir = std::env::temp_dir();
        let text = dir.join(format!(
            "symloc_cli_convert_textidx_{}.trace",
            std::process::id()
        ));
        let sidecar = sltr_index_path(&text);
        trace_convert(&sargs(&format!(
            "gen:zipf:100:3000:0.8:7 {} --index 64",
            text.to_string_lossy()
        )))
        .unwrap();
        assert!(sidecar.exists());
        let source = TraceSource::Text(text.clone());
        assert_eq!(source.total_accesses().unwrap(), 3000);
        let with_index: Vec<u64> = source.stream_range(640, 700).unwrap().collect();
        std::fs::remove_file(&sidecar).unwrap();
        let without: Vec<u64> = source.stream_range(640, 700).unwrap().collect();
        assert_eq!(with_index, without);
        std::fs::remove_file(&text).ok();
    }

    #[test]
    fn trace_index_builds_sidecars_for_existing_files() {
        let dir = std::env::temp_dir();
        let sltr = dir.join(format!("symloc_cli_index_{}.sltr", std::process::id()));
        let text = dir.join(format!("symloc_cli_index_{}.trace", std::process::id()));
        // Write both formats *without* indexes.
        trace_convert(&sargs(&format!(
            "gen:sawtooth:30:10 {} --index 0",
            sltr.to_string_lossy()
        )))
        .unwrap();
        trace_convert(&sargs(&format!(
            "gen:sawtooth:30:10 {} --index 0",
            text.to_string_lossy()
        )))
        .unwrap();
        let report =
            trace_index(&sargs(&format!("{} --interval 32", sltr.to_string_lossy()))).unwrap();
        assert!(
            report.contains("300 accesses, chunk index every 32"),
            "{report}"
        );
        assert!(sltr_index_path(&sltr).exists());
        let report =
            trace_index(&sargs(&format!("{} --interval 32", text.to_string_lossy()))).unwrap();
        assert!(
            report.contains("300 accesses, line index every 32"),
            "{report}"
        );
        assert!(sltr_index_path(&text).exists());
        // Both sources validate and stream through their new sidecars.
        for source in [
            TraceSource::Binary(sltr.clone()),
            TraceSource::Text(text.clone()),
        ] {
            assert_eq!(source.total_accesses().unwrap(), 300);
            let got: Vec<u64> = source.stream_range(64, 66).unwrap().collect();
            assert_eq!(got.len(), 2);
        }
        // Rejections: generator specs, zero intervals, missing files.
        assert!(trace_index(&sargs("gen:cyclic:4:2")).is_err());
        assert!(trace_index(&sargs(&format!("{} --interval 0", text.to_string_lossy()))).is_err());
        assert!(trace_index(&sargs("/no/such/file.trace")).is_err());
        std::fs::remove_file(sltr_index_path(&sltr)).ok();
        std::fs::remove_file(sltr_index_path(&text)).ok();
        std::fs::remove_file(&sltr).ok();
        std::fs::remove_file(&text).ok();
    }

    #[test]
    fn trace_dispatch_and_errors() {
        use crate::cli::run;
        assert!(trace(&sargs("")).is_err());
        assert!(trace(&sargs("bogus")).is_err());
        assert!(run(&sargs("trace mrc gen:cyclic:10:3 --points 4"))
            .unwrap()
            .contains("trace mrc — gen:cyclic:10:3"));
        assert!(trace_mrc(&sargs("/no/such/file.trace")).is_err());
        assert!(trace_mrc(&sargs("/no/such/file.trace --sample 8")).is_err());
    }

    #[test]
    fn trace_commands_report_malformed_content_as_errors() {
        // Every trace path — exact streaming, sampled, convert, index —
        // must turn malformed file content into a CliError, not a panic
        // (regression: only the sharded path used to validate before
        // streaming).
        let path = std::env::temp_dir().join("symloc_cli_malformed_test.trace");
        let path_str = path.to_string_lossy().to_string();
        std::fs::write(&path, "0\n1\nnot-a-number\n2\n").unwrap();
        let exact = trace_mrc(&sargs(&format!("{path_str} --threads 1"))).unwrap_err();
        assert!(exact.to_string().contains("line 3"), "{exact}");
        assert!(trace_mrc(&sargs(&format!("{path_str} --sample 8"))).is_err());
        assert!(trace_mrc(&sargs(&format!("{path_str} --threads 2"))).is_err());
        assert!(trace_index(&sargs(&path_str)).is_err());
        let out = std::env::temp_dir().join("symloc_cli_malformed_test.sltr");
        assert!(trace_convert(&sargs(&format!("{path_str} {}", out.to_string_lossy()))).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }
}
