//! The `symloc` command-line tool.
//!
//! A small driver over the library for people who have a trace file and want
//! answers without writing Rust:
//!
//! ```text
//! symloc analyze <trace-file>                 locality report of any trace
//! symloc retraversal <trace-file>             interpret a trace as T = A σ(A)
//! symloc generate <kind> <m> <epochs> [file]  emit a synthetic trace
//! symloc optimize <m> [a<b ...]               best feasible re-traversal order
//! ```
//!
//! The command implementations return their report as a `String` (and are
//! unit-tested that way); the thin binary in `src/bin/symloc.rs` only parses
//! `std::env::args` and prints.

use std::fmt::Write as _;
use std::path::Path;

use symloc_cache::footprint::average_footprint;
use symloc_cache::mrc::MissRatioCurve;
use symloc_cache::reuse::reuse_profile;
use symloc_core::chainfind::ChainFindConfig;
use symloc_core::engine::{SweepEngine, SweepLevel, SweepSpec};
use symloc_core::feasibility::PrecedenceDag;
use symloc_core::hits::{hit_vector_with_scratch, mrc_with_scratch, AnalysisScratch};
use symloc_core::model::CacheModel;
use symloc_core::optimize::{best_feasible_exhaustive, optimize_from_identity};
use symloc_core::retraversal::ReTraversal;
use symloc_core::shard::{SampledSweep, ShardedSweep};
use symloc_core::theorems::theorem2_holds;
use symloc_core::tracesweep::{
    log_spaced_sizes, OnlineReuseEngine, SampledIngest, ShardsEstimator, TraceIngest,
};
use symloc_par::default_threads;
use symloc_perm::inversions::{inversions, max_inversions};
use symloc_perm::statistics::Statistic;
use symloc_trace::binio::{sltr_index_path, SltrWriter, DEFAULT_INDEX_INTERVAL};
use symloc_trace::generators::{cyclic_trace, random_trace, sawtooth_trace};
use symloc_trace::io::{read_trace, write_trace};
use symloc_trace::stats::trace_stats;
use symloc_trace::stream::TraceSource;
use symloc_trace::Trace;

/// Errors reported by the CLI, already formatted for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
#[must_use]
pub fn usage() -> String {
    "symloc — symmetric-locality trace analysis\n\
     \n\
     USAGE:\n\
     \x20 symloc analyze <trace-file>\n\
     \x20 symloc retraversal <trace-file>\n\
     \x20 symloc generate <cyclic|sawtooth|random> <m> <epochs> [out-file]\n\
     \x20 symloc optimize <m> [a<b ...]      (each a<b is a precedence constraint)\n\
     \x20 symloc sweep <m> [--stat <inversions|descents|major|displacement>]\n\
     \x20              [--model <lru|assoc:WAYS:lru|fifo|plru>] [--threads N]\n\
     \x20              [--samples BUDGET --seed S]          (stratified sampling)\n\
     \x20              [--shards K] [--checkpoint FILE [--max-shards N]]  (resumable:\n\
     \x20              rank shards when exhaustive, level shards when sampled)\n\
     \x20 symloc trace mrc <file|gen:...> [--exact | --sample S_MAX]\n\
     \x20              [--shards N] [--threads N] [--points K]\n\
     \x20              [--checkpoint FILE [--max-chunks N]]  (resumable ingest;\n\
     \x20              with --sample, --shards N partitions the hash space)\n\
     \x20 symloc trace convert <file|gen:...> <out-file> [--index N]\n\
     \x20              (.sltr <-> text, streaming; .sltr output also writes a\n\
     \x20              seekable .sltr.idx chunk index — interval N, 0 = none)\n\
     \n\
     Trace sources: a plain-text file (one address per line), a binary\n\
     .sltr file, or a generator spec gen:<kind>:<params> with kinds\n\
     cyclic:<m>:<epochs>, sawtooth:<m>:<epochs>, strided:<m>:<stride>:<epochs>,\n\
     tiled:<m>:<tile>:<epochs>, random:<m>:<len>:<seed>, zipf:<m>:<len>:<s>:<seed>.\n"
        .to_string()
}

/// `symloc analyze <trace-file>` — generic locality report of any trace.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or parsed.
pub fn analyze_file(path: &str) -> Result<String, CliError> {
    let trace = read_trace(path).map_err(|e| CliError(format!("cannot read trace {path}: {e}")))?;
    Ok(analyze_trace(&trace))
}

/// Locality report of an in-memory trace (the body of `symloc analyze`).
#[must_use]
pub fn analyze_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let stats = trace_stats(trace);
    let _ = writeln!(out, "accesses            : {}", stats.accesses);
    let _ = writeln!(out, "footprint           : {}", stats.footprint);
    let _ = writeln!(out, "mean access frequency: {:.3}", stats.mean_frequency);
    match stats.mean_reuse_interval {
        Some(ri) => {
            let _ = writeln!(out, "mean reuse interval : {ri:.2}");
        }
        None => {
            let _ = writeln!(out, "mean reuse interval : (no reuse)");
        }
    }
    if trace.is_empty() {
        return out;
    }
    let profile = reuse_profile(trace);
    let curve = MissRatioCurve::from_profile(&profile);
    let m = profile.footprint();
    let _ = writeln!(
        out,
        "total reuse distance: {}",
        profile.histogram().total_finite_distance()
    );
    let _ = writeln!(out, "normalized MRC area : {:.4}", curve.normalized_area());
    let _ = writeln!(out, "cache-size sweep (fully associative LRU):");
    let mut sizes: Vec<usize> = vec![1, m / 8, m / 4, m / 2, (3 * m) / 4, m];
    sizes.retain(|&c| c >= 1);
    sizes.dedup();
    for c in sizes {
        let _ = writeln!(
            out,
            "  c = {c:>8}  miss ratio {:.4}  avg footprint(window={c}) {:.2}",
            profile.miss_ratio(c),
            average_footprint(trace, c.min(trace.len()))
        );
    }
    out
}

/// `symloc retraversal <trace-file>` — interpret the trace as `T = A σ(A)`.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or is not a re-traversal.
pub fn retraversal_file(path: &str) -> Result<String, CliError> {
    let trace = read_trace(path).map_err(|e| CliError(format!("cannot read trace {path}: {e}")))?;
    retraversal_trace_report(&trace)
}

/// Re-traversal report of an in-memory trace (the body of `symloc retraversal`).
///
/// # Errors
///
/// Returns a [`CliError`] if the trace is not a re-traversal.
pub fn retraversal_trace_report(trace: &Trace) -> Result<String, CliError> {
    let rt =
        ReTraversal::from_trace(trace).map_err(|e| CliError(format!("not a re-traversal: {e}")))?;
    let sigma = rt.sigma();
    let m = rt.degree();
    // One workspace for the hit vector and the curve.
    let mut scratch = AnalysisScratch::new(m);
    let mut out = String::new();
    let _ = writeln!(out, "re-traversal of m = {m} elements");
    let _ = writeln!(out, "sigma (1-based)     : {sigma}");
    let _ = writeln!(
        out,
        "inversions l(sigma) : {} of max {}",
        inversions(sigma),
        max_inversions(m)
    );
    let _ = writeln!(
        out,
        "hit vector hits_C   : {:?}",
        hit_vector_with_scratch(sigma, &mut scratch)
    );
    let _ = writeln!(out, "Theorem 2 check     : {}", theorem2_holds(sigma));
    let curve = mrc_with_scratch(sigma, &mut scratch);
    let _ = writeln!(
        out,
        "miss ratio at m/2   : {:.4}",
        curve.miss_ratio(m.max(2) / 2)
    );
    let _ = writeln!(out, "miss ratio at m     : {:.4}", curve.miss_ratio(m));
    let better = max_inversions(m).saturating_sub(inversions(sigma));
    let _ = writeln!(
        out,
        "headroom            : {better} more inversions available toward the sawtooth order"
    );
    Ok(out)
}

/// `symloc generate <kind> <m> <epochs> [out-file]`.
///
/// With an output path the trace is written there and the report says so;
/// without one the report includes the trace inline (careful with large m).
///
/// # Errors
///
/// Returns a [`CliError`] on an unknown kind, bad numbers, or write failure.
pub fn generate(
    kind: &str,
    m: usize,
    epochs: usize,
    out: Option<&str>,
) -> Result<String, CliError> {
    if m == 0 || epochs == 0 {
        return Err(CliError("m and epochs must be positive".to_string()));
    }
    let trace = match kind {
        "cyclic" => cyclic_trace(m, epochs),
        "sawtooth" => sawtooth_trace(m, epochs),
        "random" => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(0xD1CE);
            random_trace(m, m * epochs, &mut rng)
        }
        other => {
            return Err(CliError(format!(
                "unknown trace kind {other:?} (expected cyclic, sawtooth or random)"
            )))
        }
    };
    let mut report = format!(
        "generated {kind} trace: {} accesses over {} addresses\n",
        trace.len(),
        trace.distinct_count()
    );
    match out {
        Some(path) => {
            write_trace(&trace, path).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(report, "wrote {path}");
        }
        None => {
            let _ = writeln!(report, "{trace}");
        }
    }
    Ok(report)
}

/// `symloc optimize <m> [a<b ...]` — best feasible re-traversal order under
/// precedence constraints written as `a<b` (0-based element indices).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed or inconsistent constraints.
pub fn optimize(m: usize, constraints: &[String]) -> Result<String, CliError> {
    if m == 0 {
        return Err(CliError("m must be positive".to_string()));
    }
    let mut dag = PrecedenceDag::unconstrained(m);
    for spec in constraints {
        let Some((a, b)) = spec.split_once('<') else {
            return Err(CliError(format!(
                "malformed constraint {spec:?} (expected the form a<b)"
            )));
        };
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| CliError(format!("{a:?} is not an element index")))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| CliError(format!("{b:?} is not an element index")))?;
        dag.require_before(a, b)
            .map_err(|e| CliError(format!("cannot add constraint {spec}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "elements: {m}   constraints: {}",
        dag.constraint_count()
    );
    // The greedy climb starts from the identity (the program's original
    // order); when the constraints themselves forbid that order, fall back to
    // the exhaustive search alone (small m) or report the situation.
    match optimize_from_identity(&dag, ChainFindConfig::default()) {
        Ok((greedy, chain)) => {
            let _ = writeln!(out, "greedy (ChainFind) order : {}", greedy.sigma);
            let _ = writeln!(
                out,
                "  inversions {} of max {}   covers taken {}   tied choices {}",
                greedy.inversions,
                max_inversions(m),
                chain.len(),
                chain.arbitrary_choices
            );
        }
        Err(e) => {
            let _ = writeln!(
                out,
                "greedy (ChainFind) order : unavailable ({e}); constraints contradict the original order"
            );
        }
    }
    if m <= 9 {
        let exact = best_feasible_exhaustive(&dag)
            .map_err(|e| CliError(format!("exhaustive search failed: {e}")))?;
        let _ = writeln!(out, "exhaustive optimum       : {}", exact.sigma);
        let _ = writeln!(
            out,
            "  inversions {} of max {}",
            exact.inversions,
            max_inversions(m)
        );
    } else {
        let _ = writeln!(out, "(exhaustive check skipped for m > 9)");
    }
    Ok(out)
}

/// Options of `symloc sweep`, parsed from its argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// The sweep spec (degree, statistic, cache model).
    pub spec: SweepSpec,
    /// Worker threads.
    pub threads: usize,
    /// `Some(budget)` selects stratified sampling instead of exhaustion.
    pub samples: Option<usize>,
    /// Seed for sampled sweeps.
    pub seed: u64,
    /// Shard count for checkpointed exhaustive sweeps.
    pub shards: usize,
    /// Checkpoint file enabling sharded resumable execution.
    pub checkpoint: Option<String>,
    /// At most this many shards this invocation (`None` = run to the end).
    pub max_shards: Option<usize>,
}

fn parse_usize(value: Option<&String>, what: &str) -> Result<usize, CliError> {
    value
        .ok_or_else(|| CliError(format!("{what} needs a value")))?
        .parse()
        .map_err(|_| CliError(format!("{what} must be a number")))
}

/// Parses the argument list of `symloc sweep` (everything after the
/// subcommand name).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags, unknown statistic or model
/// names, or an unsupported combination.
pub fn parse_sweep_options(args: &[String]) -> Result<SweepOptions, CliError> {
    let m: usize = args
        .first()
        .ok_or_else(|| CliError("sweep needs m".into()))?
        .parse()
        .map_err(|_| CliError("m must be a number".into()))?;
    let mut options = SweepOptions {
        spec: SweepSpec::figure1(m),
        threads: default_threads(),
        samples: None,
        seed: 42,
        shards: 8,
        checkpoint: None,
        max_shards: None,
    };
    let mut i = 1usize;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--stat" => {
                let name = value.ok_or_else(|| CliError("--stat needs a value".into()))?;
                options.spec.statistic = Statistic::parse(name)
                    .ok_or_else(|| CliError(format!("unknown statistic {name:?}")))?;
            }
            "--model" => {
                let name = value.ok_or_else(|| CliError("--model needs a value".into()))?;
                options.spec.model = CacheModel::parse(name)
                    .ok_or_else(|| CliError(format!("unknown cache model {name:?}")))?;
            }
            "--threads" => options.threads = parse_usize(value, "--threads")?,
            "--samples" => options.samples = Some(parse_usize(value, "--samples")?),
            "--seed" => {
                options.seed = value
                    .ok_or_else(|| CliError("--seed needs a value".into()))?
                    .parse()
                    .map_err(|_| CliError("--seed must be a number".into()))?;
            }
            "--shards" => {
                options.shards = parse_usize(value, "--shards")?;
                if options.shards == 0 {
                    return Err(CliError("--shards must be positive".into()));
                }
            }
            "--checkpoint" => {
                options.checkpoint = Some(
                    value
                        .ok_or_else(|| CliError("--checkpoint needs a file".into()))?
                        .clone(),
                );
            }
            "--max-shards" => options.max_shards = Some(parse_usize(value, "--max-shards")?),
            other => return Err(CliError(format!("unknown sweep flag {other:?}"))),
        }
        i += 2;
    }
    if options.max_shards.is_some() && options.checkpoint.is_none() {
        return Err(CliError(
            "--max-shards only makes sense with --checkpoint (a bounded \
             partial run needs somewhere to save its progress)"
                .into(),
        ));
    }
    if options.samples.is_none() && options.spec.m > 12 {
        return Err(CliError(format!(
            "m = {} is too large for an exhaustive sweep; pass --samples",
            options.spec.m
        )));
    }
    if options.samples.is_some() && options.spec.m > 34 {
        return Err(CliError(format!(
            "m = {} exceeds the largest supported degree (34: Mahonian \
             weights overflow beyond that)",
            options.spec.m
        )));
    }
    Ok(options)
}

/// Renders the level table of a finished sweep.
fn sweep_report(spec: SweepSpec, levels: &[SweepLevel], sampled: bool) -> String {
    let m = spec.m;
    let mut out = String::new();
    let _ = writeln!(out, "sweep of S_{m} — {}", spec.fingerprint());
    let total: u64 = levels.iter().map(|l| l.count).sum();
    let _ = writeln!(out, "permutations aggregated : {total}");
    let c_mid = (m / 2).max(1);
    let _ = write!(
        out,
        "{:>6} {:>12} {:>12} {:>12}",
        "level",
        "count",
        format!("hits(c={c_mid})"),
        format!("mr(c={c_mid})"),
    );
    // Exhaustive sweeps saw the whole population; only sampled sweeps
    // carry a meaningful standard-error column.
    if sampled {
        let _ = write!(out, " {:>12}", "stderr");
    }
    out.push('\n');
    for level in levels {
        let _ = write!(
            out,
            "{:>6} {:>12} {:>12.4} {:>12.4}",
            level.level,
            level.count,
            level.mean_hits(c_mid),
            level.mean_miss_ratio(c_mid),
        );
        if sampled {
            let _ = write!(out, " {:>12.4}", level.stderr_hits(c_mid));
        }
        out.push('\n');
    }
    out
}

/// `symloc sweep <m> [flags]` — generalized sweep over `S_m`: exhaustive
/// (optionally sharded + checkpointed) or Mahonian-weighted stratified
/// sampling, keyed by any statistic, under any cache model.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments or checkpoint I/O errors.
pub fn sweep(args: &[String]) -> Result<String, CliError> {
    let options = parse_sweep_options(args)?;
    let spec = options.spec;
    let engine = SweepEngine::with_threads(spec.m, options.threads);

    if let Some(budget) = options.samples {
        let weights = match spec.statistic {
            Statistic::Descents => "Eulerian",
            Statistic::TotalDisplacement => "footrule",
            _ => "Mahonian",
        };
        let sampling_line = format!(
            "stratified sampling: budget {budget} distributed by {weights} weights (seed {})",
            options.seed
        );

        // Checkpointed sampled sweeps shard the level space: each level's
        // aggregate is deterministic on its own, so completed levels are
        // exact partial progress.
        if let Some(checkpoint) = &options.checkpoint {
            let path = Path::new(checkpoint);
            let (mut sampled, resumed) =
                SampledSweep::resume_or_new(spec, budget, 2, options.seed, options.threads, path);
            let already = sampled.completed_count();
            let ran = sampled
                .run_with_checkpoint(path, options.max_shards, |_, _| {})
                .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
            let mut out = String::new();
            if resumed {
                let _ = writeln!(
                    out,
                    "resumed from {checkpoint}: {already} of {} levels were already done",
                    sampled.level_count()
                );
            }
            let _ = writeln!(
                out,
                "ran {ran} level(s); {} of {} complete; checkpoint saved to {checkpoint}",
                sampled.completed_count(),
                sampled.level_count()
            );
            match sampled.merged_levels() {
                Some(levels) => {
                    out.push_str(&sweep_report(spec, &levels, true));
                    let _ = writeln!(out, "{sampling_line}");
                }
                None => {
                    let _ = writeln!(
                        out,
                        "sweep incomplete — re-run the same command to continue from the checkpoint"
                    );
                }
            }
            return Ok(out);
        }

        let levels =
            engine.sampled_levels_weighted(spec.statistic, spec.model, budget, 2, options.seed);
        let mut out = sweep_report(spec, &levels, true);
        let _ = writeln!(out, "{sampling_line}");
        return Ok(out);
    }

    let Some(checkpoint) = &options.checkpoint else {
        let levels = engine.sweep_levels(spec.statistic, spec.model);
        return Ok(sweep_report(spec, &levels, false));
    };

    let path = Path::new(checkpoint);
    let (mut sharded, resumed) =
        ShardedSweep::resume_or_new(spec, options.shards, options.threads, path);
    let already = sharded.completed_count();
    let ran = sharded
        .run_with_checkpoint(path, options.max_shards, |_, _| {})
        .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
    let mut out = String::new();
    if resumed {
        let _ = writeln!(
            out,
            "resumed from {checkpoint}: {already} of {} shards were already done",
            sharded.shard_count()
        );
    }
    let _ = writeln!(
        out,
        "ran {ran} shard(s); {} of {} complete; checkpoint saved to {checkpoint}",
        sharded.completed_count(),
        sharded.shard_count()
    );
    match sharded.merged_levels() {
        Some(levels) => out.push_str(&sweep_report(spec, &levels, false)),
        None => {
            let _ = writeln!(
                out,
                "sweep incomplete — re-run the same command to continue from the checkpoint"
            );
        }
    }
    Ok(out)
}

/// Options of `symloc trace mrc`, parsed from its argument list.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMrcOptions {
    /// The trace source (file or `gen:` spec).
    pub source: TraceSource,
    /// `Some(s_max)` selects the bounded-memory sampled estimator
    /// (`s_max` = total tracked-address budget, split across hash shards).
    pub sample: Option<usize>,
    /// Chunk count for sharded exact ingestion.
    pub shards: usize,
    /// Hash-shard count for the sampled estimator (set by the same
    /// `--shards` flag; defaults to 1 = the sequential estimator).
    pub sample_shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Number of MRC evaluation points (log-spaced over the footprint).
    pub points: usize,
    /// Checkpoint file enabling resumable exact ingestion.
    pub checkpoint: Option<String>,
    /// At most this many chunks this invocation (`None` = run to the end).
    pub max_chunks: Option<usize>,
}

/// Parses the argument list of `symloc trace mrc` (everything after the
/// `mrc` subcommand).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags or unsupported combinations.
pub fn parse_trace_mrc_options(args: &[String]) -> Result<TraceMrcOptions, CliError> {
    let source_arg = args
        .first()
        .ok_or_else(|| CliError("trace mrc needs a trace file or gen: spec".into()))?;
    let source = TraceSource::parse(source_arg).map_err(CliError)?;
    let mut options = TraceMrcOptions {
        source,
        sample: None,
        shards: 8,
        sample_shards: 1,
        threads: default_threads(),
        points: 16,
        checkpoint: None,
        max_chunks: None,
    };
    let mut exact = false;
    let mut i = 1usize;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--exact" => {
                exact = true;
                i += 1;
                continue;
            }
            "--sample" => {
                let s_max = parse_usize(value, "--sample")?;
                if s_max == 0 {
                    return Err(CliError("--sample needs a positive budget".into()));
                }
                options.sample = Some(s_max);
            }
            "--shards" => {
                options.shards = parse_usize(value, "--shards")?;
                if options.shards == 0 {
                    return Err(CliError("--shards must be positive".into()));
                }
                options.sample_shards = options.shards;
            }
            "--threads" => options.threads = parse_usize(value, "--threads")?,
            "--points" => {
                options.points = parse_usize(value, "--points")?;
                if options.points == 0 {
                    return Err(CliError("--points must be positive".into()));
                }
            }
            "--checkpoint" => {
                options.checkpoint = Some(
                    value
                        .ok_or_else(|| CliError("--checkpoint needs a file".into()))?
                        .clone(),
                );
            }
            "--max-chunks" => options.max_chunks = Some(parse_usize(value, "--max-chunks")?),
            other => return Err(CliError(format!("unknown trace mrc flag {other:?}"))),
        }
        i += 2;
    }
    if exact && options.sample.is_some() {
        return Err(CliError(
            "--exact and --sample are mutually exclusive".into(),
        ));
    }
    if let Some(s_max) = options.sample {
        if s_max < options.sample_shards {
            return Err(CliError(format!(
                "--sample {s_max} is below one tracked address per hash shard \
                 (--shards {})",
                options.sample_shards
            )));
        }
    }
    if options.max_chunks.is_some() && options.checkpoint.is_none() {
        return Err(CliError(
            "--max-chunks only makes sense with --checkpoint (a bounded \
             partial ingest needs somewhere to save its progress)"
                .into(),
        ));
    }
    Ok(options)
}

/// Opens a fully validated stream over `source`: scans it once (catching
/// unreadable files and malformed content as a [`CliError`] instead of the
/// panic `stream_range` reserves for validated sources), then streams.
fn validated_stream(source: &TraceSource) -> Result<symloc_trace::stream::AccessIter, CliError> {
    source
        .total_accesses()
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))?;
    source
        .stream()
        .map_err(|e| CliError(format!("cannot read {source}: {e}")))
}

/// Renders the MRC table of a finished (exact or sampled) analysis.
fn mrc_table(points: &[symloc_core::tracesweep::MrcPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12} {:>12}", "cache size", "miss ratio");
    for p in points {
        let _ = writeln!(out, "{:>12} {:>12.4}", p.cache_size, p.miss_ratio);
    }
    out
}

/// `symloc trace mrc <file|gen:...>` — streams the trace once and reports
/// its reuse-distance profile and miss-ratio curve: exact (optionally
/// sharded and checkpoint-resumable) or SHARDS-sampled in `O(s_max)` memory.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments, unreadable sources, or
/// checkpoint I/O failures.
pub fn trace_mrc(args: &[String]) -> Result<String, CliError> {
    let options = parse_trace_mrc_options(args)?;
    let source = &options.source;
    let mut out = String::new();
    let _ = writeln!(out, "trace mrc — {source}");

    if let Some(s_max) = options.sample {
        // Hash-sharded (and optionally checkpoint-resumable) parallel
        // sampling; one hash shard without a checkpoint degenerates to the
        // classic single-pass sequential estimator below.
        if options.checkpoint.is_some() || options.sample_shards > 1 {
            let shard_count = options.sample_shards;
            let budget = (s_max / shard_count).max(1);
            let summary = if let Some(checkpoint) = &options.checkpoint {
                let path = Path::new(checkpoint);
                let (mut ingest, resumed) = SampledIngest::resume_or_new(
                    source,
                    shard_count,
                    budget,
                    options.threads,
                    path,
                )
                .map_err(CliError)?;
                if resumed {
                    let _ = writeln!(
                        out,
                        "resumed from {checkpoint}: {} of {} hash shards were already done",
                        ingest.completed_count(),
                        ingest.shard_count()
                    );
                } else if path.exists() {
                    let _ = writeln!(
                        out,
                        "warning: existing checkpoint {checkpoint} does not match this \
                         source/plan (source {source}, {} accesses, {} hash shards); \
                         starting fresh and overwriting it",
                        ingest.total_accesses(),
                        ingest.shard_count()
                    );
                }
                let ran = ingest
                    .run_with_checkpoint(source, path, options.max_chunks, |_, _| {})
                    .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
                let _ = writeln!(
                    out,
                    "ran {ran} hash shard(s); {} of {} complete; checkpoint saved to {checkpoint}",
                    ingest.completed_count(),
                    ingest.shard_count()
                );
                match ingest.merged() {
                    Some(summary) => summary,
                    None => {
                        let _ = writeln!(
                            out,
                            "sampled ingest incomplete — re-run the same command to \
                             continue from the checkpoint"
                        );
                        return Ok(out);
                    }
                }
            } else {
                let mut ingest = SampledIngest::new(source, shard_count, budget, options.threads)
                    .map_err(CliError)?;
                ingest.run_pending(source, None);
                ingest.merged().expect("sampled ingest ran to completion")
            };
            let footprint = summary.estimated_footprint().round().max(1.0) as usize;
            let _ = writeln!(out, "accesses            : {}", summary.raw_accesses);
            let _ = writeln!(
                out,
                "engine              : sampled hash-sharded ({shard_count} shards x {budget} \
                 budget, min rate {:.4}, {} sampled, {} evictions, {} threads)",
                summary.min_rate, summary.sampled_accesses, summary.evictions, options.threads
            );
            let _ = writeln!(out, "footprint           : ~{footprint} (estimated)");
            let sizes = log_spaced_sizes(footprint, options.points);
            out.push_str(&mrc_table(&summary.histogram.mrc_points(&sizes)));
            return Ok(out);
        }

        // The bounded-memory sampled estimator: one sequential pass.
        let mut estimator = ShardsEstimator::new(s_max);
        estimator.record_all(validated_stream(source)?);
        let footprint = estimator.estimated_footprint().round().max(1.0) as usize;
        let _ = writeln!(out, "accesses            : {}", estimator.raw_accesses());
        let _ = writeln!(
            out,
            "engine              : sampled (s_max {s_max}, rate {:.4}, {} sampled, {} evictions)",
            estimator.sampling_rate(),
            estimator.sampled_accesses(),
            estimator.evictions()
        );
        let _ = writeln!(out, "footprint           : ~{footprint} (estimated)");
        let sizes = log_spaced_sizes(footprint, options.points);
        out.push_str(&mrc_table(&estimator.mrc_points(&sizes)));
        return Ok(out);
    }

    let histogram = if let Some(checkpoint) = &options.checkpoint {
        let path = Path::new(checkpoint);
        let (mut ingest, resumed) =
            TraceIngest::resume_or_new(source, options.shards, options.threads, path)
                .map_err(CliError)?;
        if resumed {
            let _ = writeln!(
                out,
                "resumed from {checkpoint}: {} of {} chunks were already done",
                ingest.completed_count(),
                ingest.chunk_count()
            );
        } else if path.exists() {
            // A checkpoint is on disk but did not match this source, access
            // count or chunk plan — say so before overwriting it, so a
            // mistyped --shards or path does not silently discard progress.
            let _ = writeln!(
                out,
                "warning: existing checkpoint {checkpoint} does not match this \
                 source/plan (source {source}, {} accesses, {} chunks); starting \
                 fresh and overwriting it",
                ingest.total_accesses(),
                ingest.chunk_count()
            );
        }
        let ran = ingest
            .run_with_checkpoint(source, path, options.max_chunks, |_, _| {})
            .map_err(|e| CliError(format!("cannot write checkpoint {checkpoint}: {e}")))?;
        let _ = writeln!(
            out,
            "ran {ran} chunk(s); {} of {} complete; checkpoint saved to {checkpoint}",
            ingest.completed_count(),
            ingest.chunk_count()
        );
        match ingest.histogram() {
            Some(h) => {
                let _ = writeln!(out, "accesses            : {}", h.accesses());
                let _ = writeln!(
                    out,
                    "engine              : exact sharded ({} chunks, {} threads)",
                    ingest.chunk_count(),
                    options.threads
                );
                h.clone()
            }
            None => {
                let _ = writeln!(
                    out,
                    "ingest incomplete — re-run the same command to continue from the checkpoint"
                );
                return Ok(out);
            }
        }
    } else if options.threads > 1 {
        let mut ingest =
            TraceIngest::new(source, options.shards, options.threads).map_err(CliError)?;
        ingest.run_pending(source, None);
        let h = ingest
            .histogram()
            .expect("ingest ran to completion")
            .clone();
        let _ = writeln!(out, "accesses            : {}", h.accesses());
        let _ = writeln!(
            out,
            "engine              : exact sharded ({} chunks, {} threads)",
            ingest.chunk_count(),
            options.threads
        );
        h
    } else {
        let mut engine = OnlineReuseEngine::new();
        engine.record_all(validated_stream(source)?);
        let _ = writeln!(out, "accesses            : {}", engine.accesses());
        let _ = writeln!(out, "engine              : exact streaming (1 thread)");
        engine.into_histogram()
    };

    let footprint = usize::try_from(histogram.cold_count()).unwrap_or(usize::MAX);
    let _ = writeln!(out, "footprint           : {footprint}");
    let sizes = log_spaced_sizes(footprint, options.points);
    out.push_str(&mrc_table(&histogram.mrc_points(&sizes)));
    Ok(out)
}

/// `symloc trace convert <in> <out> [--index N]` — streams a trace from any
/// source into a file, picking the output format by extension (`.sltr` =
/// binary varint, anything else = plain text). Never materializes the
/// trace, so converting a multi-gigabyte generator spec to `.sltr` is fine.
///
/// A `.sltr` output also gets a sidecar chunk index (`<out>.idx`, byte
/// offset every `N` accesses — default 4096) so later range reads *seek*
/// instead of decode-skipping; `--index 0` disables it.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed arguments or I/O failures.
pub fn trace_convert(args: &[String]) -> Result<String, CliError> {
    let source_arg = args
        .first()
        .ok_or_else(|| CliError("trace convert needs a source".into()))?;
    let out_path = args
        .get(1)
        .ok_or_else(|| CliError("trace convert needs an output file".into()))?;
    let mut interval = DEFAULT_INDEX_INTERVAL;
    let mut i = 2usize;
    while i < args.len() {
        match args[i].as_str() {
            "--index" => {
                interval = parse_usize(args.get(i + 1), "--index")? as u64;
            }
            other => return Err(CliError(format!("unexpected argument {other:?}"))),
        }
        i += 2;
    }
    let source = TraceSource::parse(source_arg).map_err(CliError)?;
    let stream = validated_stream(&source)?;
    let binary = Path::new(out_path).extension().is_some_and(|e| e == "sltr");
    if !binary && interval != DEFAULT_INDEX_INTERVAL {
        return Err(CliError(
            "--index only applies to .sltr output (text traces have no chunk index)".into(),
        ));
    }
    let mut indexed = false;
    let written = if binary {
        let io_err = |e| CliError(format!("cannot write {out_path}: {e}"));
        let file = std::fs::File::create(out_path)
            .map_err(|e| CliError(format!("cannot create {out_path}: {e}")))?;
        if interval > 0 {
            let mut writer = SltrWriter::new_indexed(file, interval).map_err(io_err)?;
            for addr in stream {
                writer.push(addr).map_err(io_err)?;
            }
            let (written, index) = writer.finish_indexed().map_err(io_err)?;
            let sidecar = sltr_index_path(Path::new(out_path));
            index
                .write(&sidecar)
                .map_err(|e| CliError(format!("cannot write {}: {e}", sidecar.display())))?;
            indexed = true;
            written
        } else {
            // --index 0: no sidecar, and make sure a stale one from a
            // previous conversion cannot outlive the new payload.
            std::fs::remove_file(sltr_index_path(Path::new(out_path))).ok();
            let mut writer = SltrWriter::new(file).map_err(io_err)?;
            for addr in stream {
                writer.push(addr).map_err(io_err)?;
            }
            writer.finish().map_err(io_err)?
        }
    } else {
        use std::io::Write as _;
        let file = std::fs::File::create(out_path)
            .map_err(|e| CliError(format!("cannot create {out_path}: {e}")))?;
        let mut writer = std::io::BufWriter::new(file);
        let mut written = 0u64;
        (|| -> std::io::Result<()> {
            writeln!(writer, "# symloc trace")?;
            for addr in stream {
                writeln!(writer, "{addr}")?;
                written += 1;
            }
            writer.flush()
        })()
        .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
        written
    };
    Ok(format!(
        "converted {source} -> {out_path} ({written} accesses, {} format{})\n",
        if binary { "sltr" } else { "text" },
        if indexed {
            format!(", chunk index every {interval}")
        } else {
            String::new()
        }
    ))
}

/// Dispatches the `symloc trace <mrc|convert>` subcommands.
///
/// # Errors
///
/// See [`trace_mrc`] and [`trace_convert`].
pub fn trace(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("mrc") => trace_mrc(&args[1..]),
        Some("convert") => trace_convert(&args[1..]),
        Some(other) => Err(CliError(format!(
            "unknown trace subcommand {other:?} (expected mrc or convert)"
        ))),
        None => Err(CliError("trace needs a subcommand (mrc or convert)".into())),
    }
}

/// Dispatches a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the problem; the caller prints it along
/// with [`usage`].
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError("analyze needs a trace file".into()))?;
            analyze_file(path)
        }
        Some("retraversal") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError("retraversal needs a trace file".into()))?;
            retraversal_file(path)
        }
        Some("generate") => {
            let kind = args
                .get(1)
                .ok_or_else(|| CliError("generate needs a kind".into()))?;
            let m: usize = args
                .get(2)
                .ok_or_else(|| CliError("generate needs m".into()))?
                .parse()
                .map_err(|_| CliError("m must be a number".into()))?;
            let epochs: usize = args
                .get(3)
                .ok_or_else(|| CliError("generate needs an epoch count".into()))?
                .parse()
                .map_err(|_| CliError("epochs must be a number".into()))?;
            generate(kind, m, epochs, args.get(4).map(String::as_str))
        }
        Some("optimize") => {
            let m: usize = args
                .get(1)
                .ok_or_else(|| CliError("optimize needs m".into()))?
                .parse()
                .map_err(|_| CliError("m must be a number".into()))?;
            optimize(m, &args[2..])
        }
        Some("sweep") => sweep(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(CliError(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::Permutation;
    use symloc_trace::generators::retraversal_trace;

    #[test]
    fn usage_and_help() {
        assert!(usage().contains("symloc"));
        assert_eq!(run(&[]).unwrap(), usage());
        assert_eq!(run(&["help".to_string()]).unwrap(), usage());
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn analyze_trace_report_contents() {
        let report = analyze_trace(&sawtooth_trace(8, 4));
        assert!(report.contains("accesses            : 32"));
        assert!(report.contains("footprint           : 8"));
        assert!(report.contains("miss ratio"));
        let empty = analyze_trace(&Trace::new());
        assert!(empty.contains("accesses            : 0"));
        assert!(empty.contains("(no reuse)"));
    }

    #[test]
    fn retraversal_report_for_valid_and_invalid_traces() {
        let sigma = Permutation::from_one_based(vec![2, 1, 3, 4]).unwrap();
        let report = retraversal_trace_report(&retraversal_trace(&sigma)).unwrap();
        assert!(report.contains("m = 4"));
        assert!(report.contains("[2 1 3 4]"));
        assert!(report.contains("Theorem 2 check     : true"));
        let err = retraversal_trace_report(&Trace::from_usizes(&[0, 0, 1, 1])).unwrap_err();
        assert!(err.to_string().contains("not a re-traversal"));
    }

    #[test]
    fn generate_inline_and_to_file() {
        let inline = generate("sawtooth", 4, 2, None).unwrap();
        assert!(inline.contains("8 accesses over 4 addresses"));
        assert!(inline.contains("0 1 2 3 3 2 1 0"));
        let path = std::env::temp_dir().join("symloc_cli_generate_test.trace");
        let path_str = path.to_string_lossy().to_string();
        let to_file = generate("cyclic", 5, 3, Some(&path_str)).unwrap();
        assert!(to_file.contains("wrote"));
        let back = read_trace(&path).unwrap();
        assert_eq!(back, cyclic_trace(5, 3));
        std::fs::remove_file(&path).ok();
        assert!(generate("bogus", 4, 2, None).is_err());
        assert!(generate("cyclic", 0, 2, None).is_err());
    }

    #[test]
    fn optimize_with_and_without_constraints() {
        let free = optimize(5, &[]).unwrap();
        assert!(free.contains("[5 4 3 2 1]"));
        let constrained = optimize(5, &["0<1".to_string(), "2<4".to_string()]).unwrap();
        assert!(constrained.contains("constraints: 2"));
        assert!(constrained.contains("exhaustive optimum"));
        assert!(optimize(0, &[]).is_err());
        assert!(optimize(4, &["nonsense".to_string()]).is_err());
        assert!(optimize(4, &["1<99".to_string()]).is_err());
        assert!(optimize(4, &["3<x".to_string()]).is_err());
        let big = optimize(12, &["0<1".to_string()]).unwrap();
        assert!(big.contains("exhaustive check skipped"));
    }

    fn sargs(spec: &str) -> Vec<String> {
        spec.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn sweep_option_parsing() {
        let options = parse_sweep_options(&sargs(
            "6 --stat major --model assoc:2:fifo --threads 3 --shards 5",
        ))
        .unwrap();
        assert_eq!(options.spec.m, 6);
        assert_eq!(options.spec.statistic, Statistic::MajorIndex);
        assert_eq!(options.spec.model.name(), "set_assoc:2:fifo");
        assert_eq!(options.threads, 3);
        assert_eq!(options.shards, 5);
        assert!(parse_sweep_options(&sargs("")).is_err());
        assert!(parse_sweep_options(&sargs("x")).is_err());
        assert!(parse_sweep_options(&sargs("5 --stat bogus")).is_err());
        assert!(parse_sweep_options(&sargs("5 --model bogus")).is_err());
        assert!(parse_sweep_options(&sargs("5 --shards 0")).is_err());
        assert!(parse_sweep_options(&sargs("5 --frobnicate 1")).is_err());
        assert!(parse_sweep_options(&sargs("5 --stat")).is_err());
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat descents")).is_ok());
        // Every statistic has a stratified sampler now.
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat major")).is_ok());
        assert!(parse_sweep_options(&sargs("5 --samples 100 --stat displacement")).is_ok());
        // Sampled sweeps checkpoint too (level shards).
        assert!(parse_sweep_options(&sargs("5 --samples 10 --checkpoint x.json")).is_ok());
        assert!(parse_sweep_options(&sargs("5 --max-shards 2")).is_err());
        assert!(parse_sweep_options(&sargs("13")).is_err());
        assert!(parse_sweep_options(&sargs("13 --samples 100")).is_ok());
        assert!(parse_sweep_options(&sargs("35 --samples 100")).is_err());
    }

    #[test]
    fn sweep_reports_exhaustive_sampled_and_models() {
        let report = sweep(&sargs("5 --threads 2")).unwrap();
        assert!(report.contains("m=5;stat=inversions;model=lru_stack"));
        assert!(report.contains("permutations aggregated : 120"));
        let by_descents = sweep(&sargs("5 --stat descents --model assoc:2:fifo")).unwrap();
        assert!(by_descents.contains("model=set_assoc:2:fifo"));
        assert!(by_descents.contains("permutations aggregated : 120"));
        let sampled = sweep(&sargs("8 --samples 300 --seed 7")).unwrap();
        assert!(sampled.contains("budget 300 distributed by Mahonian weights"));
    }

    #[test]
    fn sweep_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_sweep_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // First invocation runs 2 of 4 shards and stops.
        let first = sweep(&sargs(&format!(
            "6 --shards 4 --max-shards 2 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(first.contains("2 of 4 complete"));
        assert!(first.contains("sweep incomplete"));

        // Second invocation resumes and finishes.
        let second = sweep(&sargs(&format!("6 --shards 4 --checkpoint {path_str}"))).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("4 of 4 complete"));
        assert!(second.contains("permutations aggregated : 720"));

        // The checkpointed result equals the direct sweep.
        let direct = sweep(&sargs("6")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_mrc_option_parsing() {
        let options = parse_trace_mrc_options(&sargs(
            "gen:zipf:100:1000:0.9:1 --sample 64 --threads 2 --points 8",
        ))
        .unwrap();
        assert_eq!(options.sample, Some(64));
        assert_eq!(options.threads, 2);
        assert_eq!(options.points, 8);
        assert!(matches!(options.source, TraceSource::Gen(_)));
        assert!(parse_trace_mrc_options(&sargs("")).is_err());
        assert!(parse_trace_mrc_options(&sargs("gen:bogus:1")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --shards 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --points 0")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --frobnicate 1")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --exact --sample 9")).is_err());
        // Sampled runs checkpoint now (hash shards), and --shards doubles
        // as the hash-shard count on the sampled path.
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 9 --checkpoint c.json")).is_ok());
        let sharded = parse_trace_mrc_options(&sargs("x.trace --sample 64 --shards 4")).unwrap();
        assert_eq!(sharded.sample_shards, 4);
        assert_eq!(
            parse_trace_mrc_options(&sargs("x.trace --sample 64"))
                .unwrap()
                .sample_shards,
            1
        );
        // A budget below one address per shard is rejected.
        assert!(parse_trace_mrc_options(&sargs("x.trace --sample 3 --shards 4")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --max-chunks 2")).is_err());
        assert!(parse_trace_mrc_options(&sargs("x.trace --exact")).is_ok());
    }

    #[test]
    fn trace_mrc_exact_sampled_and_sharded_agree() {
        // Exact streaming, exact sharded and full-budget sampling must all
        // report the same curve for the same generated trace.
        let exact = trace_mrc(&sargs("gen:sawtooth:50:8 --threads 1 --points 6")).unwrap();
        assert!(exact.contains("accesses            : 400"));
        assert!(exact.contains("exact streaming"));
        assert!(exact.contains("footprint           : 50"));
        let sharded = trace_mrc(&sargs(
            "gen:sawtooth:50:8 --threads 3 --shards 5 --points 6",
        ))
        .unwrap();
        assert!(sharded.contains("exact sharded (5 chunks, 3 threads)"));
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("footprint"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&exact), tail(&sharded));
        // A sampling budget beyond the footprint reproduces the exact curve.
        let sampled = trace_mrc(&sargs("gen:sawtooth:50:8 --sample 100 --points 6")).unwrap();
        assert!(sampled.contains("rate 1.0000"));
        assert!(sampled.contains("~50 (estimated)"));
        for line in tail(&exact).lines().skip(1) {
            assert!(
                sampled.contains(line.trim_start_matches(' ')),
                "missing {line:?}"
            );
        }
    }

    #[test]
    fn trace_mrc_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_trace_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        let spec = format!("gen:zipf:60:2000:0.8:3 --shards 6 --threads 2 --checkpoint {path_str}");
        let first = trace_mrc(&sargs(&format!("{spec} --max-chunks 2"))).unwrap();
        assert!(first.contains("2 of 6 complete"));
        assert!(first.contains("ingest incomplete"));

        let second = trace_mrc(&sargs(&spec)).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("6 of 6 complete"));
        assert!(second.contains("accesses            : 2000"));

        // A mismatched chunk plan does not silently discard the checkpoint:
        // the report warns before overwriting.
        let mismatched = trace_mrc(&sargs(&format!(
            "gen:zipf:60:2000:0.8:3 --shards 9 --threads 2 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(mismatched.contains("does not match this source/plan"));
        assert!(mismatched.contains("9 of 9 complete"));

        // The checkpointed result equals the direct streaming analysis.
        let direct = trace_mrc(&sargs("gen:zipf:60:2000:0.8:3 --threads 1")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("footprint"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_sampled_checkpoint_flow_resumes_and_completes() {
        let path = std::env::temp_dir().join("symloc_cli_sampled_sweep_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // First invocation runs a few levels and stops.
        let first = sweep(&sargs(&format!(
            "7 --samples 200 --seed 3 --max-shards 5 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(first.contains("of 22 complete"), "{first}");
        assert!(first.contains("sweep incomplete"));

        // Second invocation resumes and finishes.
        let second = sweep(&sargs(&format!(
            "7 --samples 200 --seed 3 --checkpoint {path_str}"
        )))
        .unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("22 of 22 complete"));

        // The checkpointed result equals the direct sampled sweep.
        let direct = sweep(&sargs("7 --samples 200 --seed 3")).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("sweep of"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_mrc_hash_sharded_sampling_and_checkpoint_flow() {
        let path = std::env::temp_dir().join("symloc_cli_sampled_trace_checkpoint.json");
        let path_str = path.to_string_lossy().to_string();
        std::fs::remove_file(&path).ok();

        // Hash-sharded sampled run without a checkpoint.
        let direct = trace_mrc(&sargs(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --points 6",
        ))
        .unwrap();
        assert!(
            direct.contains("sampled hash-sharded (4 shards x 16 budget"),
            "{direct}"
        );
        assert!(direct.contains("accesses            : 4000"));

        // The same plan, checkpointed and interrupted mid-run.
        let spec = format!(
            "gen:zipf:200:4000:0.8:5 --sample 64 --shards 4 --points 6 --checkpoint {path_str}"
        );
        let first = trace_mrc(&sargs(&format!("{spec} --max-chunks 2"))).unwrap();
        assert!(first.contains("2 of 4 complete"), "{first}");
        assert!(first.contains("sampled ingest incomplete"));

        let second = trace_mrc(&sargs(&spec)).unwrap();
        assert!(second.contains("resumed from"));
        assert!(second.contains("4 of 4 complete"));

        // Checkpointed and direct runs agree from the engine line down.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("accesses"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&second), tail(&direct));

        // One hash shard falls back to the classic sequential estimator
        // output.
        let single = trace_mrc(&sargs("gen:zipf:200:4000:0.8:5 --sample 64 --points 6")).unwrap();
        assert!(single.contains("engine              : sampled (s_max 64"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_convert_round_trips_both_formats() {
        let dir = std::env::temp_dir();
        let sltr = dir.join("symloc_cli_convert_test.sltr");
        let text = dir.join("symloc_cli_convert_test.trace");
        let sidecar = sltr_index_path(&sltr);
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {}",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("36 accesses, sltr format, chunk index every 4096"));
        assert!(sidecar.exists(), "convert must write the sidecar index");
        let report = trace_convert(&sargs(&format!(
            "{} {}",
            sltr.to_string_lossy(),
            text.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("36 accesses, text format"));
        assert_eq!(
            read_trace(&text).unwrap(),
            symloc_trace::generators::sawtooth_trace(9, 4)
        );
        // A custom interval lands in the report; --index 0 removes the
        // sidecar again.
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {} --index 16",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(report.contains("chunk index every 16"));
        let report = trace_convert(&sargs(&format!(
            "gen:sawtooth:9:4 {} --index 0",
            sltr.to_string_lossy()
        )))
        .unwrap();
        assert!(!report.contains("chunk index"));
        assert!(!sidecar.exists(), "--index 0 must clear a stale sidecar");
        assert!(trace_convert(&sargs("gen:cyclic:4:2")).is_err());
        assert!(trace_convert(&sargs("")).is_err());
        assert!(trace_convert(&sargs("gen:cyclic:4:2 out.sltr extra")).is_err());
        assert!(trace_convert(&sargs("gen:cyclic:4:2 out.trace --index 9")).is_err());
        assert!(trace_convert(&sargs("/no/such/file.trace out.sltr")).is_err());
        std::fs::remove_file(&sltr).ok();
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn trace_dispatch_and_errors() {
        assert!(trace(&sargs("")).is_err());
        assert!(trace(&sargs("bogus")).is_err());
        assert!(run(&sargs("trace mrc gen:cyclic:10:3 --points 4"))
            .unwrap()
            .contains("trace mrc — gen:cyclic:10:3"));
        assert!(trace_mrc(&sargs("/no/such/file.trace")).is_err());
        assert!(trace_mrc(&sargs("/no/such/file.trace --sample 8")).is_err());
    }

    #[test]
    fn trace_commands_report_malformed_content_as_errors() {
        // Every trace path — exact streaming, sampled, convert — must turn
        // malformed file content into a CliError, not a panic (regression:
        // only the sharded path used to validate before streaming).
        let path = std::env::temp_dir().join("symloc_cli_malformed_test.trace");
        let path_str = path.to_string_lossy().to_string();
        std::fs::write(&path, "0\n1\nnot-a-number\n2\n").unwrap();
        let exact = trace_mrc(&sargs(&format!("{path_str} --threads 1"))).unwrap_err();
        assert!(exact.to_string().contains("line 3"), "{exact}");
        assert!(trace_mrc(&sargs(&format!("{path_str} --sample 8"))).is_err());
        assert!(trace_mrc(&sargs(&format!("{path_str} --threads 2"))).is_err());
        let out = std::env::temp_dir().join("symloc_cli_malformed_test.sltr");
        assert!(trace_convert(&sargs(&format!("{path_str} {}", out.to_string_lossy()))).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_dispatches_each_command() {
        // generate to a temp file, then analyze + retraversal it.
        let path = std::env::temp_dir().join("symloc_cli_run_test.trace");
        let path_str = path.to_string_lossy().to_string();
        let gen = run(&[
            "generate".to_string(),
            "sawtooth".to_string(),
            "6".to_string(),
            "2".to_string(),
            path_str.clone(),
        ])
        .unwrap();
        assert!(gen.contains("wrote"));
        let analyze = run(&["analyze".to_string(), path_str.clone()]).unwrap();
        assert!(analyze.contains("footprint           : 6"));
        let rt = run(&["retraversal".to_string(), path_str.clone()]).unwrap();
        assert!(rt.contains("[6 5 4 3 2 1]"));
        std::fs::remove_file(&path).ok();
        // Missing arguments are reported.
        assert!(run(&["analyze".to_string()]).is_err());
        assert!(run(&["retraversal".to_string()]).is_err());
        assert!(run(&["generate".to_string()]).is_err());
        assert!(run(&["generate".to_string(), "cyclic".to_string()]).is_err());
        assert!(run(&["optimize".to_string()]).is_err());
        assert!(run(&["optimize".to_string(), "abc".to_string()]).is_err());
        assert!(run(&["sweep".to_string(), "4".to_string()])
            .unwrap()
            .contains("permutations aggregated : 24"));
        assert!(run(&["sweep".to_string()]).is_err());
        assert!(run(&["analyze".to_string(), "/no/such/file".to_string()]).is_err());
    }
}
