//! The timescale (working-set / footprint) view of symmetric locality.
//!
//! Run with:
//! ```sh
//! cargo run --example timescale_view
//! ```
//!
//! The paper's Problem 3 discussion mentions timescale locality as a
//! candidate edge labeling. This example shows the footprint profile of the
//! classical re-traversals, how the working-set miss-ratio estimate tracks
//! the exact LRU model, and how the timescale labeling behaves inside
//! ChainFind compared with the plain miss-ratio labeling.

use symmetric_locality::prelude::*;

fn main() {
    let m = 32;

    println!("== Footprint profiles of the classical re-traversals ==\n");
    println!("window   cyclic fp(w)   sawtooth fp(w)");
    let cyclic = ReTraversal::cyclic(m).to_trace();
    let sawtooth = ReTraversal::sawtooth(m).to_trace();
    for w in [2usize, 4, 8, 16, 24, 32] {
        println!(
            "{w:>6}   {:>12.2}   {:>14.2}",
            average_footprint(&cyclic, w),
            average_footprint(&sawtooth, w)
        );
    }
    println!("\nA sawtooth window re-touches data around the turning point, so its");
    println!("average footprint stays below the cyclic one at every window size.\n");

    println!("== Working-set estimate vs exact LRU miss ratio ==\n");
    let trace = Schedule::alternating(&Permutation::reverse(m), 6).to_trace();
    let exact = reuse_profile(&trace);
    println!("cache    exact LRU    working-set estimate");
    for c in [4usize, 8, 16, 24, 32] {
        println!(
            "{c:>5}    {:>9.4}    {:>20.4}",
            exact.miss_ratio(c),
            working_set_miss_ratio_estimate(&trace, c)
        );
    }

    println!("\n== Timescale labeling inside ChainFind ==\n");
    for n in [6usize, 8] {
        let start = Permutation::identity(n);
        let mrl = chain_find(&start, &MissRatioLabeling, ChainFindConfig::default());
        let tsl = chain_find(&start, &TimescaleLabeling, ChainFindConfig::default());
        println!(
            "S_{n}: miss-ratio labeling ties on {} of {} steps; timescale labeling on {}",
            mrl.arbitrary_choices,
            mrl.len(),
            tsl.arbitrary_choices
        );
        assert!(mrl.is_saturated() && tsl.is_saturated());
    }
    println!("\nBoth labelings reach the sawtooth order; neither is tie-free, which is");
    println!("the executable face of the paper's open Problem 3.");
}
