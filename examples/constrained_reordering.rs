//! Feasibility-constrained locality optimization (Problem 2 and Definition 7
//! of the paper): when program dependences restrict which re-traversal orders
//! are valid, find the best feasible one.
//!
//! Run with:
//! ```sh
//! cargo run --example constrained_reordering
//! ```

use symmetric_locality::prelude::*;

fn main() {
    let m = 7;

    println!("== Unconstrained: the sawtooth order is optimal ==\n");
    let free = PrecedenceDag::unconstrained(m);
    let best = best_feasible_exhaustive(&free).unwrap();
    println!(
        "optimal σ = {}  ℓ = {} (max {})",
        best.sigma,
        best.inversions,
        max_inversions(m)
    );

    println!("\n== A dependence chain restricts the feasible space ==\n");
    // Elements 0 -> 1 -> 2 carry a data dependence (must keep their order);
    // elements 3..6 are free.
    let mut dag = PrecedenceDag::unconstrained(m);
    dag.require_chain(&[0, 1, 2]).unwrap();
    println!(
        "constraints: {}   feasible re-traversals: {} of {}",
        dag.constraint_count(),
        dag.count_feasible(),
        factorial(m).unwrap()
    );

    let exact = best_feasible_exhaustive(&dag).unwrap();
    println!(
        "exhaustive optimum: σ = {}  ℓ = {}  hits_C = {:?}",
        exact.sigma, exact.inversions, exact.hit_vector
    );

    let (greedy, chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
    println!(
        "greedy ChainFind  : σ = {}  ℓ = {}  ({} covers, {} tied choices)",
        greedy.sigma,
        greedy.inversions,
        chain.len(),
        chain.arbitrary_choices
    );
    assert!(dag.is_feasible(&greedy.sigma));

    println!("\n== Infeasible requests are reported, not silently accepted ==\n");
    let mut cyclic_dag = PrecedenceDag::unconstrained(4);
    cyclic_dag.require_before(0, 1).unwrap();
    cyclic_dag.require_before(1, 2).unwrap();
    match cyclic_dag.require_before(2, 0) {
        Err(e) => println!("adding 2 -> 0 fails as expected: {e}"),
        Ok(()) => unreachable!("cycle must be rejected"),
    }
    let bad_start = Permutation::reverse(4);
    match improve_greedy(&bad_start, &cyclic_dag, ChainFindConfig::default()) {
        Err(e) => println!("starting from an infeasible order fails as expected: {e}"),
        Ok(_) => unreachable!("infeasible start must be rejected"),
    }

    println!("\n== Locality of the constrained optimum vs the extremes ==\n");
    println!("order             ℓ     mr(c=2)  mr(c=4)  normalized integral");
    for (name, sigma) in [
        ("cyclic", Permutation::identity(m)),
        ("constrained best", exact.sigma.clone()),
        ("sawtooth", Permutation::reverse(m)),
    ] {
        println!(
            "{name:<16} {:>3}    {:.4}   {:.4}   {:.4}",
            inversions(&sigma),
            miss_ratio(&sigma, 2),
            miss_ratio(&sigma, 4),
            normalized_truncated_integral(&sigma)
        );
    }
}
