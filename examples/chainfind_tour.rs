//! A tour of the ChainFind algorithm (Algorithm 2 of the paper) and its edge
//! labelings.
//!
//! Run with:
//! ```sh
//! cargo run --example chainfind_tour
//! ```
//!
//! Shows how the miss-ratio labeling λ_e leaves many tied ("arbitrary")
//! choices, how the ranked labeling λ_ψ changes but does not remove them, and
//! how a generator tie-breaker makes the chain unique — the phenomenon behind
//! Figure 2 of the paper.

use symmetric_locality::prelude::*;

fn run_with<L: EdgeLabeling>(m: usize, labeling: &L) -> Chain {
    chain_find(
        &Permutation::identity(m),
        labeling,
        ChainFindConfig::default(),
    )
}

fn main() {
    println!("degree  labeling                    chain  ties  multiplicity");
    println!("------  --------------------------  -----  ----  ------------");
    for m in 3..=8usize {
        let lam_e = run_with(m, &MissRatioLabeling);
        let lam_psi = run_with(m, &RankedMissRatioLabeling::prioritize_second_largest(m));
        let broken = run_with(m, &GeneratorTieBreakLabeling::new(MissRatioLabeling));
        for (name, chain) in [
            ("miss-ratio λ_e", &lam_e),
            ("ranked λ_ψ", &lam_psi),
            ("λ_e + generator tiebreak", &broken),
        ] {
            println!(
                "S_{m:<5} {name:<27} {:>5}  {:>4}  {:>12}",
                chain.len(),
                chain.arbitrary_choices,
                chain.chain_multiplicity
            );
            assert!(chain.is_saturated());
        }
    }

    println!("\n== One chain in detail (S_5, λ_e) ==\n");
    let chain = run_with(5, &MissRatioLabeling);
    println!("step  permutation      ℓ  tie-size  hits_C");
    for (i, step) in chain.steps.iter().enumerate() {
        println!(
            "{:>4}  {:<15}  {}  {:>8}  {:?}",
            i + 1,
            step.perm.to_string(),
            inversions(&step.perm),
            step.tie_size,
            hit_vector(&step.perm).as_slice()
        );
    }

    println!("\n== Tie-break policies produce different but equally long chains ==\n");
    for policy in [
        TieBreak::First,
        TieBreak::LargestGenerator,
        TieBreak::Random(42),
    ] {
        let chain = chain_find(
            &Permutation::identity(6),
            &MissRatioLabeling,
            ChainFindConfig {
                tie_break: policy,
                max_steps: None,
            },
        );
        println!(
            "{policy:?}: length {}, ends at {}",
            chain.len(),
            chain.last()
        );
    }
}
