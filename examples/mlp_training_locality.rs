//! Deep-learning application (Section VI-A of the paper): how re-ordering the
//! backward weight traversal of permutation-equivariant layers improves the
//! temporal locality of training.
//!
//! Run with:
//! ```sh
//! cargo run --example mlp_training_locality
//! ```

use symmetric_locality::prelude::*;

fn main() {
    println!("== Single linear layer: analytical vs measured reuse totals ==\n");
    // The paper's claim for an n×m weight matrix (k = nm elements):
    // cyclic re-traversal costs k² total reuse distance, sawtooth k(k+1)/2.
    for (n, m) in [(8usize, 8usize), (16, 8), (32, 16)] {
        let layer = MlpLayer::new(m, n);
        let k = layer.weight_count();
        let cyclic = layer
            .weight_trace(0, None)
            .concat(&layer.weight_trace(0, None));
        let sawtooth = layer
            .weight_trace(0, None)
            .concat(&layer.weight_trace(0, Some(&Permutation::reverse(k))));
        let cyc = locality_score(&cyclic).total_reuse_distance;
        let saw = locality_score(&sawtooth).total_reuse_distance;
        println!(
            "{n:>3}×{m:<3} (k={k:>4})  cyclic {cyc:>8} (analytical {:>8})  sawtooth {saw:>8} (analytical {:>8})  ratio {:.3}",
            analytical_retraversal_cost(k, false),
            analytical_retraversal_cost(k, true),
            saw as f64 / cyc as f64,
        );
    }

    println!("\n== Full MLP training step: natural vs sawtooth backward order ==\n");
    let mlp = Mlp::from_widths(&[64, 48, 32, 10]);
    let natural = mlp.training_step_trace(None);
    let sawtooth_orders = mlp.sawtooth_backward_orders();
    let optimized = mlp.training_step_trace(Some(&sawtooth_orders));
    let natural_score = locality_score(&natural);
    let optimized_score = locality_score(&optimized);
    println!(
        "weights: {}   accesses per step: {}",
        mlp.total_weights(),
        natural.len()
    );
    println!(
        "natural  backward: total reuse {:>10}, MRC area {:.4}",
        natural_score.total_reuse_distance, natural_score.mrc_area
    );
    println!(
        "sawtooth backward: total reuse {:>10}, MRC area {:.4}",
        optimized_score.total_reuse_distance, optimized_score.mrc_area
    );

    println!("\n== Multi-epoch training schedules (Theorem 4) ==\n");
    let weights = 256;
    let epochs = 8;
    let cyclic = TrainingSchedule::new(weights, epochs, EpochPolicy::Cyclic).report();
    let alternating =
        TrainingSchedule::new(weights, epochs, EpochPolicy::AlternatingSawtooth).report();
    println!("policy                 total reuse   mr(half cache)");
    for report in [&cyclic, &alternating] {
        println!(
            "{:<22} {:>11}   {:.4}",
            report.policy, report.total_reuse_distance, report.miss_ratio_half_cache
        );
    }
    println!(
        "\nreuse-distance improvement of alternation over cyclic: {:.1}%",
        100.0
            * (1.0 - alternating.total_reuse_distance as f64 / cyclic.total_reuse_distance as f64)
    );

    println!("\n== Multi-head attention: per-step locality ==\n");
    let attn = MultiHeadAttention::new(32, 4);
    let natural = locality_score(&attn.step_trace(None));
    let optimized = locality_score(&attn.step_trace(Some(&attn.sawtooth_order())));
    println!(
        "natural  order: total reuse {:>10}, mr(quarter cache) {:.4}",
        natural.total_reuse_distance, natural.miss_ratio_quarter_cache
    );
    println!(
        "sawtooth order: total reuse {:>10}, mr(quarter cache) {:.4}",
        optimized.total_reuse_distance, optimized.miss_ratio_quarter_cache
    );

    println!("\n== Data-order classes and the orders they permit ==\n");
    for (name, order) in [
        (
            "unordered set (stock prices)",
            DataOrder::Unordered { m: 6 },
        ),
        (
            "batch of 2 sentences × 3 words",
            DataOrder::grouped(2, 3).unwrap(),
        ),
        (
            "totally ordered (a novel)",
            DataOrder::TotallyOrdered { m: 6 },
        ),
    ] {
        let rec = recommended_order(&order).unwrap();
        println!(
            "{name:<32} recommended re-traversal {rec}  (ℓ = {})",
            inversions(&rec)
        );
    }
}
