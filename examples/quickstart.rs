//! Quickstart: the symmetric-locality API in one tour.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds re-traversals, computes their hit vectors and miss-ratio curves
//! with Algorithm 1, checks the Bruhat–Locality theorem, and climbs the
//! covering graph with ChainFind.

use symmetric_locality::prelude::*;

fn main() {
    let m = 8;

    println!("== Re-traversals of {m} data elements ==\n");

    // The two classical extremes: cyclic (identity) and sawtooth (reverse).
    let cyclic = Permutation::identity(m);
    let sawtooth = Permutation::reverse(m);

    // And the paper's worked example, scaled to one-based notation.
    let example = Permutation::from_one_based(vec![2, 1, 3, 4, 5, 6, 7, 8]).unwrap();

    for (name, sigma) in [
        ("cyclic   ", &cyclic),
        ("example  ", &example),
        ("sawtooth ", &sawtooth),
    ] {
        let hv = hit_vector(sigma);
        let curve = mrc(sigma);
        println!(
            "{name} σ = {sigma}  ℓ(σ) = {:2}  hits_C = {:?}  mr(c=2) = {:.3}",
            inversions(sigma),
            hv.as_slice(),
            curve.miss_ratio(2),
        );
        // Theorem 2: the truncated hit-vector sum equals the inversion number.
        assert!(theorem2_holds(sigma));
        assert!(corollary1_holds(sigma));
    }

    println!("\n== Trace round-trip ==\n");
    let rt = ReTraversal::new(example.clone());
    let trace = rt.to_trace();
    println!("T = A σ(A) = {trace}");
    let parsed = ReTraversal::from_trace(&trace).unwrap();
    assert_eq!(parsed.sigma(), &example);
    println!("parsed back σ = {}", parsed.sigma());

    println!("\n== Generic cache simulation agrees with Algorithm 1 ==\n");
    let simulated = hit_vector_via_simulation(&example);
    println!("Algorithm 1: {:?}", hit_vector(&example).as_slice());
    println!("LRU stack  : {:?}", simulated.as_slice());
    assert_eq!(hit_vector(&example), simulated);

    println!("\n== ChainFind: climbing from cyclic to sawtooth ==\n");
    let chain = chain_find(&cyclic, &MissRatioLabeling, ChainFindConfig::default());
    println!(
        "chain of {} covers, {} arbitrary (tied) choices, reaches {}",
        chain.len(),
        chain.arbitrary_choices,
        chain.last()
    );
    assert!(chain.last().is_reverse());

    println!("\n== Multi-epoch alternation (Theorem 4) ==\n");
    let epochs = 6;
    let cyclic_schedule = Schedule::all_forward(m, epochs);
    let alternating = Schedule::alternating(&sawtooth, epochs);
    println!(
        "cyclic     total reuse distance over {epochs} epochs: {}",
        cyclic_schedule.total_reuse_distance()
    );
    println!(
        "alternating total reuse distance over {epochs} epochs: {}",
        alternating.total_reuse_distance()
    );
    assert!(alternating.total_reuse_distance() < cyclic_schedule.total_reuse_distance());

    println!("\nAll assertions passed.");
}
