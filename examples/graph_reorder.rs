//! Graph-reordering application (Section VI-C of the paper): improving the
//! locality of repeated neighborhood traversals by relabeling vertices and by
//! choosing the re-traversal order of repeatedly visited vertex subsets.
//!
//! Run with:
//! ```sh
//! cargo run --example graph_reorder
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use symmetric_locality::prelude::*;

fn report(name: &str, r: &LocalityReport) {
    println!(
        "{name:<28} accesses {:>6}  footprint {:>5}  mean RD {:>8.2}  MRC area {:.4}",
        r.accesses,
        r.footprint,
        r.mean_reuse_distance.unwrap_or(f64::NAN),
        r.mrc_area
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    println!("== Relabeling a power-law graph for neighbor scans ==\n");
    let graph = preferential_attachment_graph(400, 3, &mut rng);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    // Adversarial starting labels: a large-stride shuffle.
    let shuffled: Vec<usize> = {
        let n = graph.num_vertices();
        (0..n).map(|i| (i * 181) % n).collect()
    };
    let scrambled = graph.relabel(&shuffled);

    let orderings: Vec<(&str, Vec<usize>)> = vec![
        ("original labels", identity_order(&scrambled)),
        ("BFS relabeling", bfs_order(&scrambled)),
        ("degree-sort relabeling", degree_sort_order(&scrambled)),
    ];
    for (name, order) in orderings {
        let relabeled = scrambled.relabel(&order);
        let score = locality_score(&neighbor_scan_trace(&relabeled, None));
        report(name, &score);
    }

    println!("\n== Re-traversing a hub's neighborhood (symmetric locality) ==\n");
    // The subset a GNN aggregation revisits: the neighborhood of the largest
    // hub, traversed once per layer of a 4-layer model.
    let hub = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let subset: Vec<usize> = graph.neighbors(hub).to_vec();
    let m = subset.len();
    println!("hub vertex {hub} has {m} neighbors\n");

    let cyclic_orders = vec![Permutation::identity(m); 3];
    let sawtooth = symmetric_retraversal_order(m, None).unwrap();
    let alternating = vec![sawtooth.clone(), Permutation::identity(m), sawtooth];

    let cyclic_score = locality_score(&repeated_subset_trace(&subset, &cyclic_orders));
    let alt_score = locality_score(&repeated_subset_trace(&subset, &alternating));
    report("cyclic re-traversal", &cyclic_score);
    report("alternating sawtooth", &alt_score);
    println!(
        "\ntotal reuse distance reduced by {:.1}%",
        100.0
            * (1.0
                - alt_score.total_reuse_distance as f64 / cyclic_score.total_reuse_distance as f64)
    );

    println!("\n== Constrained re-traversal of a partially ordered frontier ==\n");
    // Suppose the first half of the frontier must keep its relative order
    // (e.g. those updates have a dependence chain); the rest is free.
    let mut dag = PrecedenceDag::unconstrained(m);
    let chained: Vec<usize> = (0..m / 2).collect();
    dag.require_chain(&chained).unwrap();
    let constrained = symmetric_retraversal_order(m, Some(&dag)).unwrap();
    println!(
        "constrained optimum: ℓ = {} of a maximum {} (feasible: {})",
        inversions(&constrained),
        max_inversions(m),
        dag.is_feasible(&constrained)
    );
    let constrained_score = locality_score(&repeated_subset_trace(
        &subset,
        &[constrained, Permutation::identity(m)],
    ));
    report("constrained alternation", &constrained_score);
}
