//! Property tests for the unified `core::job` runner: killing any of the
//! five resumable pipelines at **every unit boundary** and resuming from
//! the serialized checkpoint must reproduce the uninterrupted run's final
//! checkpoint *byte-identically*.
//!
//! This is the load-bearing invariant of the whole job abstraction — unit
//! plans are deterministic, partials are mergeable in unit order, and the
//! checkpoint codec is canonical — pinned here across random plans for
//! [`ShardedSweep`], [`SampledSweep`], [`TraceIngest`], [`SampledIngest`]
//! and [`FusedIngest`].

use proptest::prelude::*;
use symloc_core::engine::SweepSpec;
use symloc_core::model::CacheModel;
use symloc_core::obs::MetricsRegistry;
use symloc_core::shard::{SampledSweep, ShardedSweep};
use symloc_core::tracesweep::{FusedIngest, SampledIngest, TraceIngest};
use symloc_perm::statistics::Statistic;
use symloc_trace::stream::{GenSpec, TraceSource};

fn statistic_of(seed: u64) -> Statistic {
    Statistic::ALL[(seed % Statistic::ALL.len() as u64) as usize]
}

/// The registry of a metered run that processed `units` units must have
/// actually observed them — otherwise a "metering is result-invariant"
/// assertion would pass vacuously with metering silently disabled.
fn assert_metering_observed(registry: &MetricsRegistry, units: u64) {
    assert_eq!(registry.counter("job.units"), Some(units));
    let observed = registry.histogram("job.unit_nanos").map(|h| h.count());
    assert_eq!(observed, Some(units));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_sweep_kill_resume_at_every_boundary(
        m in 4usize..7,
        shards in 1usize..6,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = SweepSpec {
            m,
            statistic: statistic_of(seed),
            model: CacheModel::LruStack,
        };
        let mut reference = ShardedSweep::new(spec, shards, threads);
        reference.run_pending(None);
        let reference_json = reference.to_json();

        for kill_at in 0..reference.shard_count() {
            let mut interrupted = ShardedSweep::new(spec, shards, threads);
            prop_assert_eq!(interrupted.run_pending(Some(kill_at)), kill_at);
            let checkpoint = interrupted.to_json();
            // Resume with a *different* thread count: results must not
            // depend on it.
            let mut resumed = ShardedSweep::from_json(&checkpoint, threads % 3 + 1).unwrap();
            prop_assert_eq!(resumed.completed_count(), kill_at);
            resumed.run_pending(None);
            prop_assert_eq!(
                &resumed.to_json(),
                &reference_json,
                "kill at shard {}",
                kill_at
            );
        }
    }

    #[test]
    fn sampled_sweep_kill_resume_at_every_boundary(
        m in 4usize..7,
        budget in 20usize..120,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = SweepSpec {
            m,
            statistic: statistic_of(seed),
            model: CacheModel::LruStack,
        };
        let mut reference = SampledSweep::new(spec, budget, 2, seed, threads);
        reference.run_pending(None);
        let reference_json = reference.to_json();

        for kill_at in 0..reference.level_count() {
            let mut interrupted = SampledSweep::new(spec, budget, 2, seed, threads);
            prop_assert_eq!(interrupted.run_pending(Some(kill_at)), kill_at);
            let checkpoint = interrupted.to_json();
            let mut resumed = SampledSweep::from_json(&checkpoint, threads % 3 + 1).unwrap();
            prop_assert_eq!(resumed.completed_count(), kill_at);
            resumed.run_pending(None);
            prop_assert_eq!(
                &resumed.to_json(),
                &reference_json,
                "kill at level {}",
                kill_at
            );
        }
    }

    #[test]
    fn trace_ingest_kill_resume_at_every_boundary(
        m in 8u64..40,
        epochs in 2u64..6,
        chunks in 1usize..7,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = match seed % 3 {
            0 => format!("gen:cyclic:{m}:{epochs}"),
            1 => format!("gen:sawtooth:{m}:{epochs}"),
            _ => format!("gen:zipf:{m}:{len}:0.8:{s}", len = m * epochs, s = seed % 1000),
        };
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference = TraceIngest::new(&source, chunks, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();

        for kill_at in 0..reference.chunk_count() {
            let mut interrupted = TraceIngest::new(&source, chunks, threads).unwrap();
            prop_assert_eq!(interrupted.run_pending(&source, Some(kill_at)), kill_at);
            let checkpoint = interrupted.to_json();
            let mut resumed = TraceIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
            prop_assert_eq!(resumed.completed_count(), kill_at);
            resumed.run_pending(&source, None);
            prop_assert_eq!(
                &resumed.to_json(),
                &reference_json,
                "{} kill at chunk {}",
                &spec,
                kill_at
            );
        }
    }

    #[test]
    fn sampled_ingest_kill_resume_at_every_boundary(
        m in 50u64..300,
        shard_count in 1usize..6,
        budget in 8usize..64,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = format!("gen:zipf:{m}:{len}:0.9:{s}", len = m * 10, s = seed % 1000);
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference = SampledIngest::new(&source, shard_count, budget, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();

        for kill_at in 0..reference.shard_count() {
            let mut interrupted =
                SampledIngest::new(&source, shard_count, budget, threads).unwrap();
            prop_assert_eq!(interrupted.run_pending(&source, Some(kill_at)), kill_at);
            let checkpoint = interrupted.to_json();
            let mut resumed = SampledIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
            prop_assert_eq!(resumed.completed_count(), kill_at);
            resumed.run_pending(&source, None);
            prop_assert_eq!(
                &resumed.to_json(),
                &reference_json,
                "{} kill at shard {}",
                &spec,
                kill_at
            );
        }
    }

    #[test]
    fn fused_ingest_kill_resume_at_every_boundary(
        m in 30u64..120,
        chunks in 1usize..7,
        shard_count in 1usize..5,
        budget in 8usize..48,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        // The fused checkpoint carries the exact merge state *and* every
        // mid-stream estimator (threshold, counters, tracked timeline), so
        // a kill at any chunk boundary must still resume — with a
        // different thread count — to the byte-identical final document.
        let spec = format!("gen:zipf:{m}:{len}:0.8:{s}", len = m * 8, s = seed % 1000);
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference =
            FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();

        for kill_at in 0..reference.chunk_count() {
            let mut interrupted =
                FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
            prop_assert_eq!(interrupted.run_pending(&source, Some(kill_at)), kill_at);
            let checkpoint = interrupted.to_json();
            let mut resumed = FusedIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
            prop_assert_eq!(resumed.completed_count(), kill_at);
            resumed.run_pending(&source, None);
            prop_assert_eq!(
                &resumed.to_json(),
                &reference_json,
                "{} kill at chunk {}",
                &spec,
                kill_at
            );
        }
    }
}

// Metering invariance: running any of the five pipelines with a
// `MetricsRegistry` attached must not change a single checkpoint byte —
// not in the final document, not in any mid-run checkpoint, and not
// through a metered kill/resume cycle. The registry is asserted non-empty
// so the equality cannot pass with metering accidentally disabled.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn metered_sharded_sweep_is_byte_identical(
        m in 4usize..7,
        shards in 1usize..6,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = SweepSpec {
            m,
            statistic: statistic_of(seed),
            model: CacheModel::LruStack,
        };
        let mut reference = ShardedSweep::new(spec, shards, threads);
        reference.run_pending(None);
        let reference_json = reference.to_json();

        let mut metered = ShardedSweep::new(spec, shards, threads);
        let mut registry = MetricsRegistry::new();
        metered.run_pending_metered(None, Some(&mut registry));
        prop_assert_eq!(&metered.to_json(), &reference_json);
        assert_metering_observed(&registry, reference.shard_count() as u64);

        for kill_at in 0..reference.shard_count() {
            let mut plain = ShardedSweep::new(spec, shards, threads);
            plain.run_pending(Some(kill_at));
            let mut interrupted = ShardedSweep::new(spec, shards, threads);
            let mut registry = MetricsRegistry::new();
            interrupted.run_pending_metered(Some(kill_at), Some(&mut registry));
            let checkpoint = interrupted.to_json();
            prop_assert_eq!(&checkpoint, &plain.to_json(), "kill at shard {}", kill_at);
            let mut resumed = ShardedSweep::from_json(&checkpoint, threads % 3 + 1).unwrap();
            let mut resume_registry = MetricsRegistry::new();
            resumed.run_pending_metered(None, Some(&mut resume_registry));
            prop_assert_eq!(&resumed.to_json(), &reference_json, "kill at shard {}", kill_at);
            assert_metering_observed(
                &resume_registry,
                (reference.shard_count() - kill_at) as u64,
            );
        }
    }

    #[test]
    fn metered_sampled_sweep_is_byte_identical(
        m in 4usize..7,
        budget in 20usize..120,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = SweepSpec {
            m,
            statistic: statistic_of(seed),
            model: CacheModel::LruStack,
        };
        let mut reference = SampledSweep::new(spec, budget, 2, seed, threads);
        reference.run_pending(None);
        let reference_json = reference.to_json();
        let levels = reference.level_count();

        let mut metered = SampledSweep::new(spec, budget, 2, seed, threads);
        let mut registry = MetricsRegistry::new();
        metered.run_pending_metered(None, Some(&mut registry));
        prop_assert_eq!(&metered.to_json(), &reference_json);
        assert_metering_observed(&registry, levels as u64);

        let kill_at = levels / 2;
        let mut plain = SampledSweep::new(spec, budget, 2, seed, threads);
        plain.run_pending(Some(kill_at));
        let mut interrupted = SampledSweep::new(spec, budget, 2, seed, threads);
        let mut registry = MetricsRegistry::new();
        interrupted.run_pending_metered(Some(kill_at), Some(&mut registry));
        let checkpoint = interrupted.to_json();
        prop_assert_eq!(&checkpoint, &plain.to_json());
        let mut resumed = SampledSweep::from_json(&checkpoint, threads % 3 + 1).unwrap();
        resumed.run_pending_metered(None, Some(&mut MetricsRegistry::new()));
        prop_assert_eq!(&resumed.to_json(), &reference_json);
    }

    #[test]
    fn metered_trace_ingest_is_byte_identical(
        m in 8u64..40,
        epochs in 2u64..6,
        chunks in 1usize..7,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = format!("gen:zipf:{m}:{len}:0.8:{s}", len = m * epochs, s = seed % 1000);
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference = TraceIngest::new(&source, chunks, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();
        let total = reference.chunk_count();

        let mut metered = TraceIngest::new(&source, chunks, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        metered.run_pending_metered(&source, None, Some(&mut registry));
        prop_assert_eq!(&metered.to_json(), &reference_json);
        assert_metering_observed(&registry, total as u64);

        let kill_at = total / 2;
        let mut plain = TraceIngest::new(&source, chunks, threads).unwrap();
        plain.run_pending(&source, Some(kill_at));
        let mut interrupted = TraceIngest::new(&source, chunks, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        interrupted.run_pending_metered(&source, Some(kill_at), Some(&mut registry));
        let checkpoint = interrupted.to_json();
        prop_assert_eq!(&checkpoint, &plain.to_json());
        let mut resumed = TraceIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
        resumed.run_pending_metered(&source, None, Some(&mut MetricsRegistry::new()));
        prop_assert_eq!(&resumed.to_json(), &reference_json);
    }

    #[test]
    fn metered_sampled_ingest_is_byte_identical(
        m in 50u64..300,
        shard_count in 1usize..6,
        budget in 8usize..64,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = format!("gen:zipf:{m}:{len}:0.9:{s}", len = m * 10, s = seed % 1000);
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference = SampledIngest::new(&source, shard_count, budget, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();
        let total = reference.shard_count();

        let mut metered = SampledIngest::new(&source, shard_count, budget, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        metered.run_pending_metered(&source, None, Some(&mut registry));
        prop_assert_eq!(&metered.to_json(), &reference_json);
        assert_metering_observed(&registry, total as u64);

        let kill_at = total / 2;
        let mut plain = SampledIngest::new(&source, shard_count, budget, threads).unwrap();
        plain.run_pending(&source, Some(kill_at));
        let mut interrupted = SampledIngest::new(&source, shard_count, budget, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        interrupted.run_pending_metered(&source, Some(kill_at), Some(&mut registry));
        let checkpoint = interrupted.to_json();
        prop_assert_eq!(&checkpoint, &plain.to_json());
        let mut resumed = SampledIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
        resumed.run_pending_metered(&source, None, Some(&mut MetricsRegistry::new()));
        prop_assert_eq!(&resumed.to_json(), &reference_json);
    }

    #[test]
    fn metered_fused_ingest_is_byte_identical(
        m in 30u64..120,
        chunks in 1usize..7,
        shard_count in 1usize..5,
        budget in 8usize..48,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = format!("gen:zipf:{m}:{len}:0.8:{s}", len = m * 8, s = seed % 1000);
        let source = TraceSource::Gen(GenSpec::parse(&spec).unwrap());
        let mut reference =
            FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();
        let total = reference.chunk_count();

        let mut metered =
            FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        metered.run_pending_metered(&source, None, Some(&mut registry));
        prop_assert_eq!(&metered.to_json(), &reference_json);
        assert_metering_observed(&registry, total as u64);

        let kill_at = total / 2;
        let mut plain = FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
        plain.run_pending(&source, Some(kill_at));
        let mut interrupted =
            FusedIngest::new(&source, chunks, shard_count, budget, threads).unwrap();
        let mut registry = MetricsRegistry::new();
        interrupted.run_pending_metered(&source, Some(kill_at), Some(&mut registry));
        let checkpoint = interrupted.to_json();
        prop_assert_eq!(&checkpoint, &plain.to_json());
        let mut resumed = FusedIngest::from_json(&checkpoint, threads % 3 + 1).unwrap();
        resumed.run_pending_metered(&source, None, Some(&mut MetricsRegistry::new()));
        prop_assert_eq!(&resumed.to_json(), &reference_json);
    }
}
