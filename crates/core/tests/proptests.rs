//! Property-based tests for the symmetric-locality core.

use proptest::prelude::*;
use symloc_core::prelude::*;
use symloc_perm::prelude::*;

/// Strategy producing an arbitrary permutation of degree 1..=max_degree.
fn arb_permutation(max_degree: usize) -> impl Strategy<Value = Permutation> {
    (1..=max_degree, any::<u64>()).prop_map(|(m, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        random_permutation(m, &mut rng)
    })
}

proptest! {
    #[test]
    fn theorem2_and_corollary1(sigma in arb_permutation(64)) {
        prop_assert!(theorem2_holds(&sigma));
        prop_assert!(corollary1_holds(&sigma));
    }

    #[test]
    fn algorithm1_matches_generic_simulation(sigma in arb_permutation(40)) {
        prop_assert_eq!(hit_vector(&sigma), hit_vector_via_simulation(&sigma));
    }

    #[test]
    fn naive_and_fast_distances_agree(sigma in arb_permutation(48)) {
        prop_assert_eq!(second_pass_distances_naive(&sigma), second_pass_distances(&sigma));
    }

    #[test]
    fn scratch_kernels_match_allocating_paths(sigma in arb_permutation(48)) {
        // The _with_scratch kernels must be byte-identical to the allocating
        // wrappers, to the paper's naive bit-vector algorithm, and to the
        // generic LRU simulator, for the same σ.
        let mut scratch = AnalysisScratch::new(sigma.degree());
        prop_assert_eq!(
            second_pass_distances_with_scratch(&sigma, &mut scratch).to_vec(),
            second_pass_distances_naive(&sigma)
        );
        prop_assert_eq!(
            hit_vector_with_scratch(&sigma, &mut scratch).to_vec(),
            hit_vector(&sigma).as_slice().to_vec()
        );
        prop_assert_eq!(
            hit_vector_with_scratch(&sigma, &mut scratch).to_vec(),
            hit_vector_via_simulation(&sigma).as_slice().to_vec()
        );
        prop_assert_eq!(rd_histogram_with_scratch(&sigma, &mut scratch), rd_histogram(&sigma));
        prop_assert_eq!(mrc_with_scratch(&sigma, &mut scratch), mrc(&sigma));
    }

    #[test]
    fn scratch_reuse_across_degrees_is_invisible(seeds in proptest::collection::vec(any::<u64>(), 1..=8)) {
        // One workspace across many random permutations of varying degree:
        // retargeting and buffer reuse must never leak state between σ's.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut scratch = AnalysisScratch::new(0);
        for seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = 1 + (seed % 40) as usize;
            let sigma = random_permutation(m, &mut rng);
            let inv = scratch.pass(&sigma);
            prop_assert_eq!(inv, inversions(&sigma), "inversions from the Fenwick pass");
            prop_assert_eq!(scratch.distances().to_vec(), second_pass_distances_naive(&sigma));
            prop_assert_eq!(scratch.compute_hits().to_vec(), hit_vector(&sigma).as_slice().to_vec());
        }
    }

    #[test]
    fn engine_levels_match_reference(m in 1usize..=6, threads in 1usize..=4) {
        prop_assert_eq!(
            SweepEngine::with_threads(m, threads).exhaustive_levels(),
            exhaustive_levels_reference(m, threads)
        );
    }

    #[test]
    fn hit_vector_is_monotone_and_ends_at_m(sigma in arb_permutation(48)) {
        let m = sigma.degree();
        let hv = hit_vector(&sigma);
        let slice = hv.as_slice();
        prop_assert_eq!(slice.len(), m);
        for w in slice.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // At cache size m every second-pass access hits.
        prop_assert_eq!(slice[m - 1], m);
    }

    #[test]
    fn distances_are_a_valid_multiset(sigma in arb_permutation(48)) {
        let m = sigma.degree();
        let d = second_pass_distances(&sigma);
        prop_assert_eq!(d.len(), m);
        for &x in &d {
            prop_assert!(x >= 1 && x <= m);
        }
        // Total reuse distance is between the sawtooth and cyclic extremes.
        let total: u128 = d.iter().map(|&x| x as u128).sum();
        let k = m as u128;
        prop_assert!(total >= k * (k + 1) / 2);
        prop_assert!(total <= k * k);
    }

    #[test]
    fn retraversal_round_trip(sigma in arb_permutation(32)) {
        let rt = ReTraversal::new(sigma.clone());
        let parsed = ReTraversal::from_trace(&rt.to_trace()).unwrap();
        prop_assert_eq!(parsed.sigma(), &sigma);
    }

    #[test]
    fn covers_improve_truncated_sum_by_one(sigma in arb_permutation(12), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(cover) = random_upper_cover(&sigma, &mut rng) {
            let check = theorem3_check(&sigma, &cover.perm).expect("cover");
            prop_assert!(check.holds_in_aggregate());
            prop_assert!(!check.improved_sizes.is_empty());
        }
    }

    #[test]
    fn mrc_decreases_with_inversions(sigma in arb_permutation(16)) {
        // The normalized truncated integral is an affine function of ℓ.
        let measured = normalized_truncated_integral(&sigma);
        let predicted = predicted_truncated_integral(sigma.degree(), inversions(&sigma));
        prop_assert!((measured - predicted).abs() < 1e-9);
        prop_assert!(measured >= 0.5 - 1e-9);
        prop_assert!(measured <= 1.0 + 1e-9);
    }

    #[test]
    fn hit_vector_partition_is_partition_of_length(sigma in arb_permutation(24)) {
        let parts = hit_vector_partition(&sigma);
        prop_assert!(is_partition_of(&parts, inversions(&sigma)));
    }

    #[test]
    fn chainfind_always_saturates_without_constraints(m in 1usize..=7, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let start = random_permutation(m, &mut rng);
        let chain = chain_find(&start, &MissRatioLabeling, ChainFindConfig::default());
        prop_assert!(chain.is_saturated());
        prop_assert_eq!(chain.len(), max_inversions(m) - inversions(&start));
        // Each step is a Bruhat cover of its predecessor.
        let perms = chain.permutations();
        for w in perms.windows(2) {
            prop_assert!(is_cover(&w[0], &w[1]));
        }
    }

    #[test]
    fn feasibility_constrained_chain_stays_feasible(m in 2usize..=6, a in 0usize..6, b in 0usize..6) {
        prop_assume!(a < m && b < m && a != b);
        // Constrain in natural order so the identity (the cyclic baseline the
        // optimizer starts from) is itself feasible.
        let (a, b) = (a.min(b), a.max(b));
        let mut dag = PrecedenceDag::unconstrained(m);
        dag.require_before(a, b).unwrap();
        let (result, chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
        prop_assert!(dag.is_feasible(&result.sigma));
        for p in chain.permutations() {
            prop_assert!(dag.is_feasible(&p));
        }
        // The exhaustive optimum is at least as good.
        let exact = best_feasible_exhaustive(&dag).unwrap();
        prop_assert!(exact.inversions >= result.inversions);
    }

    #[test]
    fn schedules_alternation_never_worse_than_cyclic(m in 2usize..=16, epochs in 2usize..=5) {
        let forward = Schedule::all_forward(m, epochs);
        let alternating = Schedule::alternating(&Permutation::reverse(m), epochs);
        prop_assert!(alternating.total_reuse_distance() <= forward.total_reuse_distance());
    }

    #[test]
    fn locality_cmp_agrees_with_inversions(
        (sigma, tau) in (1usize..=16).prop_flat_map(|m| {
            ((any::<u64>()), (any::<u64>())).prop_map(move |(s1, s2)| {
                use rand::rngs::StdRng;
                use rand::SeedableRng;
                let mut r1 = StdRng::seed_from_u64(s1);
                let mut r2 = StdRng::seed_from_u64(s2);
                (random_permutation(m, &mut r1), random_permutation(m, &mut r2))
            })
        })
    ) {
        prop_assert_eq!(
            locality_cmp(&sigma, &tau),
            inversions(&sigma).cmp(&inversions(&tau))
        );
    }

    #[test]
    fn cache_model_lru_bridge_is_byte_identical_to_scratch_kernel(sigma in arb_permutation(32)) {
        // The CacheModel::LruStack path of the generalized sweep must be
        // indistinguishable from the Algorithm-1 scratch kernel.
        let m = sigma.degree();
        let mut model_scratch = ModelScratch::new(CacheModel::LruStack, m);
        let mut kernel_scratch = AnalysisScratch::new(m);
        let via_model = model_scratch.hit_vector_into(sigma.images()).to_vec();
        let via_kernel: Vec<u64> = hit_vector_with_scratch(&sigma, &mut kernel_scratch)
            .iter()
            .map(|&h| h as u64)
            .collect();
        prop_assert_eq!(via_model, via_kernel);
        prop_assert_eq!(model_scratch.last_inversions(), Some(inversions(&sigma)));
    }

    #[test]
    fn fully_associative_lru_model_equals_stack_model(sigma in arb_permutation(12)) {
        // Bridging through the SetAssocCache simulator with footprint-wide
        // associativity reproduces the stack-distance hit vector exactly.
        use symloc_cache::setassoc::ReplacementPolicy;
        let m = sigma.degree();
        let mut stack = ModelScratch::new(CacheModel::LruStack, m);
        let mut assoc = ModelScratch::new(
            CacheModel::SetAssoc { ways: m, policy: ReplacementPolicy::Lru },
            m,
        );
        let a = stack.hit_vector_into(sigma.images()).to_vec();
        let b = assoc.hit_vector_into(sigma.images()).to_vec();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn generalized_eval_levels_agree_with_statistics(sigma in arb_permutation(16)) {
        use symloc_cache::setassoc::ReplacementPolicy;
        let m = sigma.degree();
        for statistic in Statistic::ALL {
            let mut lru = ModelScratch::new(CacheModel::LruStack, m);
            let (level, _) = lru.eval(statistic, sigma.images());
            prop_assert_eq!(level, statistic.of(&sigma), "{} via LruStack", statistic);
            let mut assoc = ModelScratch::new(
                CacheModel::SetAssoc { ways: 2, policy: ReplacementPolicy::Fifo },
                m,
            );
            let (level, _) = assoc.eval(statistic, sigma.images());
            prop_assert_eq!(level, statistic.of(&sigma), "{} via SetAssoc", statistic);
        }
    }
}
