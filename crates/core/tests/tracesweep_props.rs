//! Property tests for the streaming trace-analysis subsystem.
//!
//! Three pins, each across *every* `symloc_trace::generators` pattern:
//!
//! 1. [`OnlineReuseEngine`] against a literal `O(n²)` stack-distance
//!    definition (scan back to the previous occurrence, count distinct
//!    addresses in between) that shares no code with the Fenwick path.
//! 2. The chunk-sharded merge ([`chunk_partial`] + [`MergeState`]) against
//!    the sequential engine, for arbitrary chunkings.
//! 3. The SHARDS sampled estimator against the exact engine: *equal* when
//!    the budget covers the footprint at full rate, and within a stated
//!    error bound when the budget binds.
//! 4. The fused single-pass ingest against the two separate pipelines:
//!    exact side byte-identical to [`TraceIngest`], sampled side
//!    bit-identical to [`SampledIngest`], across every pattern × shard
//!    count × thread count.

use proptest::prelude::*;
use symloc_core::tracesweep::{
    chunk_partial, log_spaced_sizes, FusedIngest, MergeState, OnlineReuseEngine, SampledIngest,
    ShardsEstimator, StreamHistogram, TraceIngest, SHARDS_MODULUS,
};
use symloc_trace::generators::{
    cyclic_trace, interleaved_trace, move_to_front_trace, multi_epoch_trace, random_trace,
    retraversal_trace, sawtooth_trace, stack_discipline_trace, stream_kernel_trace, strided_trace,
    tiled_trace, zipfian_trace, EpochOrder, StreamKernel,
};
use symloc_trace::stream::TraceSource;
use symloc_trace::Trace;

/// The literal textbook definition, deliberately quadratic and deliberately
/// free of any shared machinery: the reuse distance of access `t` is the
/// number of distinct addresses touched since the previous access to the
/// same address, inclusive of that address itself.
fn stack_distances_naive(trace: &Trace) -> Vec<Option<usize>> {
    let accesses = trace.accesses();
    let mut out = Vec::with_capacity(accesses.len());
    for (t, &addr) in accesses.iter().enumerate() {
        let prev = (0..t).rev().find(|&s| accesses[s] == addr);
        match prev {
            None => out.push(None),
            Some(s) => {
                let mut seen: Vec<symloc_trace::Addr> = Vec::new();
                for &between in &accesses[s + 1..t] {
                    if !seen.contains(&between) {
                        seen.push(between);
                    }
                }
                out.push(Some(seen.len() + 1));
            }
        }
    }
    out
}

fn histogram_of(distances: &[Option<usize>]) -> StreamHistogram {
    let mut h = StreamHistogram::new();
    for d in distances {
        match d {
            Some(d) => h.record_finite(*d, 1),
            None => h.record_cold(1),
        }
    }
    h
}

fn online_engine(trace: &Trace) -> OnlineReuseEngine {
    let mut engine = OnlineReuseEngine::new();
    engine.record_all(trace.iter().map(|a| a.value() as u64));
    engine
}

/// One instance of every generator pattern the trace crate provides,
/// parameterized by a seed so the property tests sweep many shapes.
fn all_generator_patterns(seed: u64) -> Vec<(&'static str, Trace)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 4 + (seed as usize % 13);
    let epochs = 2 + (seed as usize % 3);
    let sigma = symloc_perm::sample::random_permutation(m, &mut rng);
    vec![
        ("cyclic", cyclic_trace(m, epochs)),
        ("sawtooth", sawtooth_trace(m, epochs)),
        ("retraversal", retraversal_trace(&sigma)),
        (
            "multi_epoch",
            multi_epoch_trace(
                m,
                &[
                    EpochOrder::Forward,
                    EpochOrder::Permuted(sigma.clone()),
                    EpochOrder::Reverse,
                ],
            ),
        ),
        ("random", random_trace(m, 40 * epochs, &mut rng)),
        ("zipfian", zipfian_trace(3 * m, 60 * epochs, 0.9, &mut rng)),
        ("strided", strided_trace(m, 1 + seed as usize % m, epochs)),
        ("tiled", tiled_trace(3 * m, 1 + m / 2, epochs)),
        (
            "stack_discipline",
            stack_discipline_trace(m, 30 * epochs, &mut rng),
        ),
        (
            "move_to_front",
            move_to_front_trace(m, 10 * epochs, 1.0, &mut rng),
        ),
        (
            "stream_kernel",
            stream_kernel_trace(StreamKernel::Triad, m, epochs),
        ),
        (
            "interleaved",
            interleaved_trace(&cyclic_trace(m, epochs), &sawtooth_trace(m, epochs)),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn online_engine_matches_naive_definition_on_every_pattern(seed in any::<u64>()) {
        for (name, trace) in all_generator_patterns(seed) {
            let naive = stack_distances_naive(&trace);
            // Per-access distances agree with the literal definition.
            let mut engine = OnlineReuseEngine::new();
            for (addr, expect) in trace.iter().zip(naive.iter()) {
                let got = engine.record(addr.value() as u64);
                prop_assert_eq!(got, *expect, "{} seed {}", name, seed);
            }
            // And so does the aggregated histogram.
            prop_assert_eq!(engine.histogram(), &histogram_of(&naive), "{}", name);
            prop_assert_eq!(engine.footprint(), trace.distinct_count(), "{}", name);
        }
    }

    #[test]
    fn sharded_merge_matches_sequential_on_every_pattern(
        seed in any::<u64>(),
        chunks in 1usize..9,
    ) {
        for (name, trace) in all_generator_patterns(seed) {
            let expected = online_engine(&trace);
            let addrs: Vec<u64> = trace.iter().map(|a| a.value() as u64).collect();
            let mut state = MergeState::new();
            for span in symloc_par::split_indices(addrs.len(), chunks) {
                state.absorb(&chunk_partial(addrs[span.start..span.end].iter().copied()));
            }
            prop_assert_eq!(
                state.histogram(),
                expected.histogram(),
                "{} seed {} chunks {}",
                name, seed, chunks
            );
        }
    }

    #[test]
    fn full_budget_shards_equals_exact_on_every_pattern(seed in any::<u64>()) {
        for (name, trace) in all_generator_patterns(seed) {
            let exact = online_engine(&trace);
            // Budget >= footprint: the sampler never adapts, the estimate
            // is the exact curve.
            let mut shards = ShardsEstimator::new(trace.distinct_count().max(1));
            shards.record_all(trace.iter().map(|a| a.value() as u64));
            prop_assert_eq!(shards.sampling_rate(), 1.0, "{}", name);
            let sizes = log_spaced_sizes(exact.footprint(), 10);
            for &c in &sizes {
                let exact_mr = exact.histogram().miss_ratio(c);
                let est_mr = shards.histogram().miss_ratio(c);
                prop_assert!(
                    (exact_mr - est_mr).abs() < 1e-9,
                    "{} seed {} c {}: exact {} vs sampled {}",
                    name, seed, c, exact_mr, est_mr
                );
            }
        }
    }

    #[test]
    fn parallel_hash_sharded_equals_sequential_on_every_pattern(
        seed in any::<u64>(),
        shard_count in 1usize..8,
    ) {
        // The tentpole equivalence: for every generator pattern and shard
        // count, executing the hash-sharded sampled ingest in parallel is
        // byte-identical (checkpoints and all) to executing it one shard
        // at a time on one thread — and identical across thread counts.
        for (name, trace) in all_generator_patterns(seed) {
            let source = TraceSource::Memory(trace);
            let mut sequential = SampledIngest::new(&source, shard_count, 32, 1).unwrap();
            sequential.run_pending(&source, None);
            let expected = sequential.to_json();
            for threads in [2, 5] {
                let mut parallel =
                    SampledIngest::new(&source, shard_count, 32, threads).unwrap();
                parallel.run_pending(&source, None);
                prop_assert_eq!(
                    parallel.to_json(),
                    expected.clone(),
                    "{} seed {} shards {} threads {}",
                    name, seed, shard_count, threads
                );
            }
            // Every access lands in exactly one hash shard.
            let merged = sequential.merged().unwrap();
            prop_assert_eq!(
                merged.raw_accesses,
                source.total_accesses().unwrap(),
                "{}", name
            );
        }
    }

    #[test]
    fn fused_ingest_equals_separate_pipelines_on_every_pattern(
        seed in any::<u64>(),
        shard_count in 1usize..8,
        threads in 1usize..5,
    ) {
        // The PR-7 tentpole equivalence: one fused streaming pass must
        // reproduce the exact pipeline byte-identically and the sampled
        // pipeline bit-identically at the same shard count — for every
        // generator pattern, hash-shard count and thread count — while its
        // single-pass counter proves each access streamed exactly once.
        for (name, trace) in all_generator_patterns(seed) {
            let source = TraceSource::Memory(trace);
            let mut exact = TraceIngest::new(&source, 4, threads).unwrap();
            exact.run_pending(&source, None);
            let mut sampled = SampledIngest::new(&source, shard_count, 32, threads).unwrap();
            sampled.run_pending(&source, None);
            let mut fused = FusedIngest::new(&source, 4, shard_count, 32, threads).unwrap();
            fused.run_pending(&source, None);
            prop_assert_eq!(
                fused.exact_histogram().unwrap(),
                exact.histogram().unwrap(),
                "{} seed {} shards {} threads {}",
                name, seed, shard_count, threads
            );
            let fused_shards = fused.sampled_shard_results();
            prop_assert_eq!(
                fused_shards.as_slice(),
                sampled.shard_results(),
                "{} seed {} shards {} threads {}",
                name, seed, shard_count, threads
            );
            prop_assert_eq!(
                fused.sampled_summary(),
                sampled.merged(),
                "{} seed {} shards {} threads {}",
                name, seed, shard_count, threads
            );
            prop_assert_eq!(
                fused.streamed_accesses(),
                source.total_accesses().unwrap(),
                "{} seed {}: the fused pass must stream each access exactly once",
                name, seed
            );
        }
    }

    #[test]
    fn one_hash_shard_at_fixed_threshold_is_the_sequential_estimator(
        seed in any::<u64>(),
        threshold_num in 1u64..=4,
    ) {
        // At a fixed global threshold the sampling set is static; a
        // 1-shard parallel ingest must reproduce the classic sequential
        // SHARDS estimator exactly on every pattern.
        let threshold = threshold_num * (SHARDS_MODULUS / 4);
        for (name, trace) in all_generator_patterns(seed) {
            let mut sequential = ShardsEstimator::with_threshold(1 << 20, threshold);
            sequential.record_all(trace.iter().map(|a| a.value() as u64));
            prop_assert_eq!(sequential.evictions(), 0, "{}", name);
            let source = TraceSource::Memory(trace);
            let mut ingest =
                SampledIngest::with_threshold(&source, 1, 1 << 20, threshold, 3).unwrap();
            ingest.run_pending(&source, None);
            let merged = ingest.merged().unwrap();
            prop_assert_eq!(&merged.histogram, sequential.histogram(), "{}", name);
            prop_assert_eq!(merged.sampled_accesses, sequential.sampled_accesses(), "{}", name);
            prop_assert!((merged.min_rate - sequential.sampling_rate()).abs() < 1e-15, "{}", name);
        }
    }

    #[test]
    fn indexed_seek_ingest_equals_decode_skip_ingest_byte_identically(
        seed in any::<u64>(),
        chunks in 1usize..9,
        interval in 1u64..40,
    ) {
        // The .sltr chunk index must change how chunk workers reach their
        // range (seek vs decode-skip), never what they read: the final
        // ingest checkpoints must be byte-identical.
        use symloc_trace::binio::{sltr_index_path, write_sltr, write_sltr_indexed};
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "symloc_props_indexed_{}_{}.sltr",
            std::process::id(),
            seed
        ));
        let sidecar = sltr_index_path(&path);
        for (name, trace) in all_generator_patterns(seed).into_iter().take(4) {
            // Decode-skip run (no sidecar on disk).
            std::fs::remove_file(&sidecar).ok();
            write_sltr(&trace, &path).unwrap();
            let source = TraceSource::Binary(path.clone());
            let mut plain = TraceIngest::new(&source, chunks, 2).unwrap();
            plain.run_pending(&source, None);
            let expected = plain.to_json();
            // Indexed run of the same payload.
            write_sltr_indexed(&trace, &path, interval).unwrap();
            let mut indexed = TraceIngest::new(&source, chunks, 2).unwrap();
            indexed.run_pending(&source, None);
            prop_assert_eq!(
                indexed.to_json(),
                expected,
                "{} seed {} chunks {} interval {}",
                name, seed, chunks, interval
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn bounded_budget_shards_stays_within_error_bound(seed in any::<u64>()) {
        // A large skewed workload with the budget at ~1/4 of the footprint:
        // memory stays at O(s_max) and the worst pointwise MRC error stays
        // inside the stated bound. (Spatial sampling keeps/drops whole
        // addresses, so the bound is dominated by hot-address hash luck;
        // the trace mixes a seeded zipf body to vary the shape.)
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = zipfian_trace(2000, 20_000, 0.6, &mut rng);
        let exact = online_engine(&trace);
        let budget = 512usize;
        let mut shards = ShardsEstimator::new(budget);
        shards.record_all(trace.iter().map(|a| a.value() as u64));
        prop_assert!(shards.tracked_addresses() <= budget);
        prop_assert!(shards.sampling_rate() < 1.0);
        let mut worst = 0.0f64;
        for &c in &log_spaced_sizes(exact.footprint(), 10) {
            worst = worst
                .max((shards.histogram().miss_ratio(c) - exact.histogram().miss_ratio(c)).abs());
        }
        prop_assert!(worst < 0.12, "worst pointwise error {} (seed {})", worst, seed);
    }
}

/// Renders the checkpoint document the seed-era (pre-interner) ingest wrote
/// after absorbing `done` of `chunks` chunks — built from the naive model
/// alone, sharing no serialization code with `TraceIngest::to_json`: the
/// histogram and cold count come from the literal quadratic distances of
/// the absorbed prefix, and the timeline is the prefix's distinct addresses
/// ordered by last access (the order the seed-era HashMap engine produced
/// by sorting its live slots).
fn seed_era_checkpoint_json(
    fingerprint: &str,
    total: u64,
    chunks: usize,
    done: usize,
    prefix: &[u64],
) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut cold = 0u64;
    let mut finite: BTreeMap<usize, u64> = BTreeMap::new();
    for (t, &addr) in prefix.iter().enumerate() {
        match (0..t).rev().find(|&s| prefix[s] == addr) {
            None => cold += 1,
            Some(s) => {
                let mut seen: Vec<u64> = Vec::new();
                for &between in &prefix[s + 1..t] {
                    if !seen.contains(&between) {
                        seen.push(between);
                    }
                }
                *finite.entry(seen.len() + 1).or_insert(0) += 1;
            }
        }
    }
    let mut last_access: BTreeMap<u64, usize> = BTreeMap::new();
    for (t, &addr) in prefix.iter().enumerate() {
        last_access.insert(addr, t);
    }
    let mut by_last: Vec<(usize, u64)> = last_access.into_iter().map(|(a, t)| (t, a)).collect();
    by_last.sort_unstable();

    let mut out = String::new();
    out.push_str("{\n  \"kind\": \"symloc_trace_ingest_checkpoint\",\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"fingerprint\": \"{fingerprint}\",");
    let _ = writeln!(out, "  \"total_accesses\": {total},");
    let _ = writeln!(out, "  \"chunk_count\": {chunks},");
    let _ = writeln!(out, "  \"next_chunk\": {done},");
    let _ = writeln!(out, "  \"cold\": {cold},");
    out.push_str("  \"histogram\": [");
    for (i, (d, c)) in finite.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}[{d}, {c}]");
    }
    out.push_str("],\n");
    out.push_str("  \"timeline\": [");
    for (i, (_, addr)) in by_last.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{addr}");
    }
    out.push_str("]\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interned engine's checkpoints are byte-compatible with seed-era
    /// documents, both ways: a mid-ingest checkpoint written today is
    /// byte-identical to the independently rendered seed-era document, and
    /// resuming that old-format document through `core::job` finishes to
    /// exactly the JSON of an uninterrupted run.
    #[test]
    fn interned_checkpoints_stay_byte_compatible_with_seed_era_documents(
        seed in any::<u64>(),
        chunks in 1usize..7,
        quarter in 0u32..=4,
    ) {
        for (name, trace) in all_generator_patterns(seed) {
            let addrs: Vec<u64> = trace.iter().map(|a| a.value() as u64).collect();
            let source = TraceSource::Memory(trace);
            let mut full = TraceIngest::new(&source, chunks, 1).unwrap();
            full.run_pending(&source, None);
            let expected = full.to_json();
            let chunk_count = full.chunk_count();
            let done = (chunk_count * quarter as usize) / 4;
            let spans = symloc_par::split_indices(addrs.len(), chunk_count);
            let prefix_end = if done == 0 { 0 } else { spans[done - 1].end };
            let doc = seed_era_checkpoint_json(
                &source.fingerprint(),
                addrs.len() as u64,
                chunk_count,
                done,
                &addrs[..prefix_end],
            );

            // Today's engine, stopped at the same chunk, serializes the
            // exact bytes the seed-era engine wrote.
            let mut mid = TraceIngest::new(&source, chunks, 1).unwrap();
            mid.run_pending(&source, Some(done));
            prop_assert_eq!(
                mid.to_json(),
                doc.clone(),
                "{} seed {} chunks {} done {}",
                name, seed, chunk_count, done
            );

            // And the old-format document resumes through core::job to the
            // identical final checkpoint.
            let mut resumed = TraceIngest::from_json(&doc, 2).unwrap();
            resumed.run_pending(&source, None);
            prop_assert_eq!(
                resumed.to_json(),
                expected,
                "{} seed {} chunks {} done {}",
                name, seed, chunk_count, done
            );
        }
    }
}
