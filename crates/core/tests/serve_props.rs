//! Property tests for the serve tenant table: killing the daemon at
//! **every batch boundary** and restarting from the serialized
//! checkpoint must reproduce the uninterrupted run's final checkpoint
//! *byte-identically* — the same invariant `job_props` pins for the five
//! batch pipelines, applied to [`JobKind::ServeState`].
//!
//! Byte-identical state implies byte-identical answers, but the MRC
//! check below is asserted separately anyway: it is the acceptance
//! criterion a live client actually observes across a restart.

use proptest::prelude::*;
use symloc_core::serve::ServeState;

/// The tenant keyspaces a random session draws from.
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Plays a batch schedule into a state, resolving tenant indices per
/// batch exactly like a live session flush does.
fn play(state: &mut ServeState, batches: &[(usize, Vec<u64>)]) {
    for (tenant, block) in batches {
        let index = state.ensure_tenant(TENANTS[*tenant]).unwrap();
        state.record_block(index, block);
    }
}

/// Every tenant's MRC and WSS answers, in tenant order.
fn answers(state: &ServeState) -> Vec<String> {
    state
        .tenants()
        .map(|t| {
            let name = t.name();
            format!(
                "{name}: wss={} mrc={:?}",
                state.wss(name).unwrap(),
                state.mrc(name, 12).unwrap()
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn serve_state_kill_resume_at_every_batch_boundary(
        budget in 2usize..24,
        batches in proptest::collection::vec(
            (0usize..TENANTS.len(), proptest::collection::vec(0u64..48, 1..24)),
            1..10,
        ),
    ) {
        // The uninterrupted reference run.
        let mut reference = ServeState::new(budget, TENANTS.len()).unwrap();
        play(&mut reference, &batches);
        reference.note_save();
        let final_checkpoint = reference.to_json();
        let final_answers = answers(&reference);

        for kill_at in 0..=batches.len() {
            // Run to the kill point, checkpoint, "crash".
            let mut interrupted = ServeState::new(budget, TENANTS.len()).unwrap();
            play(&mut interrupted, &batches[..kill_at]);
            let checkpoint = interrupted.to_json();

            // Restart: the codec round-trips byte-identically…
            let mut resumed = ServeState::from_json(&checkpoint).unwrap();
            prop_assert_eq!(&resumed.to_json(), &checkpoint, "kill at batch {}", kill_at);

            // …and finishing the stream lands on the reference checkpoint
            // byte for byte (note_save stands in for the daemon's final
            // save so the save counters line up too).
            play(&mut resumed, &batches[kill_at..]);
            resumed.note_save();
            prop_assert_eq!(&resumed.to_json(), &final_checkpoint, "kill at batch {}", kill_at);

            // The answers a client sees across the restart are identical.
            prop_assert_eq!(&answers(&resumed), &final_answers, "kill at batch {}", kill_at);
        }
    }

    #[test]
    fn serve_checkpoints_resume_through_the_job_codec(
        budget in 2usize..24,
        batches in proptest::collection::vec(
            (0usize..TENANTS.len(), proptest::collection::vec(0u64..48, 1..24)),
            1..6,
        ),
    ) {
        // resume_or_new restores a matching checkpoint from disk exactly,
        // and a knob change plans fresh instead of misreading it.
        let dir = std::env::temp_dir().join(format!(
            "symloc-serve-props-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.ckpt.json");
        let mut state = ServeState::new(budget, TENANTS.len()).unwrap();
        play(&mut state, &batches);
        state.save(&path).unwrap();

        let (resumed, was_resumed) =
            ServeState::resume_or_new(&path, budget, TENANTS.len()).unwrap();
        prop_assert!(was_resumed);
        prop_assert_eq!(resumed.to_json(), state.to_json());

        let (fresh, was_resumed) =
            ServeState::resume_or_new(&path, budget + 1, TENANTS.len()).unwrap();
        prop_assert!(!was_resumed);
        prop_assert_eq!(fresh.tenant_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
