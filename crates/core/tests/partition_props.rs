//! Property tests for the MRC-driven partitioner.
//!
//! The load-bearing invariant is **greedy == DP**: the marginal-gain
//! greedy over convex minorants must match the exact dynamic-programming
//! reference *exactly* — same allocations, same objective — on every
//! generated instance, including non-convex curves (LRU cliffs), tied
//! tenants, floors and caps. The remaining properties pin the hull
//! (endpoints preserved, monotone, convex, never above the curve) and
//! the solver's budget discipline.

use proptest::prelude::*;
use symloc_core::partition::{exact_reference, solve, Bounds, TenantCurve};
use symloc_core::tracesweep::MrcPoint;

/// A random monotone MRC: up to 6 points over small sizes, each ratio a
/// non-increasing multiple of 1/16 (exact in binary, so float ties
/// between tenants are honest ties).
fn curve_strategy() -> impl Strategy<Value = Vec<MrcPoint>> {
    (
        proptest::collection::vec(1usize..5, 1..6),
        proptest::collection::vec(0u32..5, 1..6),
    )
        .prop_map(|(size_steps, ratio_steps)| {
            let n = size_steps.len().min(ratio_steps.len());
            let mut size = 0usize;
            let mut ratio = 16u32; // sixteenths, starting at 1.0
            let mut points = Vec::with_capacity(n);
            for i in 0..n {
                size += size_steps[i];
                ratio = ratio.saturating_sub(ratio_steps[i]);
                points.push(MrcPoint {
                    cache_size: size,
                    miss_ratio: f64::from(ratio) / 16.0,
                });
            }
            points
        })
}

/// 1–3 tenants with quarter-integer weights (exact in binary too).
fn tenants_strategy() -> impl Strategy<Value = Vec<TenantCurve>> {
    proptest::collection::vec((curve_strategy(), 0u32..12), 1..4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (points, weight_quarters))| {
                TenantCurve::from_points(
                    &format!("t{i}"),
                    f64::from(weight_quarters) / 4.0,
                    &points,
                )
                .expect("generated curves are valid")
            })
            .collect()
    })
}

/// Per-tenant bounds that are always feasible for `budget`.
fn bounds_for(tenants: usize, budget: u64, seed: &[(u64, u64)]) -> Vec<Bounds> {
    (0..tenants)
        .map(|i| {
            let (floor_raw, cap_raw) = seed.get(i).copied().unwrap_or((0, u64::MAX));
            let floor = floor_raw % (budget / tenants as u64 + 1);
            let cap = floor + 1 + cap_raw % (budget + 1);
            Bounds { floor, cap }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_matches_the_exact_dp_reference(
        tenants in tenants_strategy(),
        budget in 1u64..24,
        bound_seed in proptest::collection::vec((0u64..8, 0u64..24), 0..4),
    ) {
        let bounds = bounds_for(tenants.len(), budget, &bound_seed);
        let greedy = solve(&tenants, budget, &bounds).unwrap();
        let dp = exact_reference(&tenants, budget, &bounds).unwrap();
        let sizes = |s: &symloc_core::partition::PartitionSolution| {
            s.allocations.iter().map(|a| a.size).collect::<Vec<_>>()
        };
        prop_assert_eq!(sizes(&greedy), sizes(&dp));
        // Same allocation on the same hulls: the objective is bitwise
        // identical, not merely close.
        prop_assert_eq!(
            greedy.predicted_aggregate_miss_ratio.to_bits(),
            dp.predicted_aggregate_miss_ratio.to_bits()
        );
    }

    #[test]
    fn allocations_respect_budget_floors_and_caps(
        tenants in tenants_strategy(),
        budget in 1u64..200,
        bound_seed in proptest::collection::vec((0u64..16, 0u64..64), 0..4),
    ) {
        let bounds = bounds_for(tenants.len(), budget, &bound_seed);
        let solution = solve(&tenants, budget, &bounds).unwrap();
        prop_assert!(solution.allocated <= budget);
        prop_assert_eq!(
            solution.allocations.iter().map(|a| a.size).sum::<u64>(),
            solution.allocated
        );
        for (a, b) in solution.allocations.iter().zip(&bounds) {
            prop_assert!(a.size >= b.floor, "{} < floor {}", a.size, b.floor);
            prop_assert!(a.size <= b.cap, "{} > cap {}", a.size, b.cap);
            prop_assert!((0.0..=1.0).contains(&a.predicted_miss_ratio));
        }
        prop_assert!((0.0..=1.0).contains(&solution.predicted_aggregate_miss_ratio));
        // Determinism: solving the identical instance reproduces the
        // compact answer byte for byte.
        let again = solve(&tenants, budget, &bounds).unwrap();
        prop_assert_eq!(again.render_compact(), solution.render_compact());
    }

    #[test]
    fn hull_preserves_endpoints_monotonicity_and_convexity(
        points in curve_strategy(),
        weight_quarters in 0u32..12,
    ) {
        let weight = f64::from(weight_quarters) / 4.0;
        let curve = TenantCurve::from_points("t", weight, &points).unwrap();
        let hull = curve.hull();
        let vertices = hull.vertices();

        // Endpoints preserved: the (0, weight) anchor and the last
        // sampled point are always hull vertices with their curve values.
        prop_assert_eq!(vertices.first().copied(), Some((0u64, weight)));
        let last_size = curve.max_size();
        let last = *vertices.last().unwrap();
        prop_assert_eq!(last.0, last_size);
        prop_assert_eq!(last.1.to_bits(), (weight * curve.miss_ratio_at(last_size)).to_bits());

        for pair in vertices.windows(2) {
            // Strictly increasing sizes, non-increasing misses.
            prop_assert!(pair[0].0 < pair[1].0);
            prop_assert!(pair[1].1 <= pair[0].1 + 1e-12);
        }
        // Convexity: slopes non-decreasing (gains shrink), checked via
        // cross-products to avoid division.
        for triple in vertices.windows(3) {
            let (x0, y0) = triple[0];
            let (x1, y1) = triple[1];
            let (x2, y2) = triple[2];
            #[allow(clippy::cast_precision_loss)]
            let lhs = (y1 - y0) * ((x2 - x1) as f64);
            #[allow(clippy::cast_precision_loss)]
            let rhs = (y2 - y1) * ((x1 - x0) as f64);
            prop_assert!(lhs <= rhs + 1e-9, "slopes decrease: {lhs} vs {rhs}");
        }
        // Minorant: the hull never sits above the curve at any sampled
        // size (and interpolates below it everywhere in between).
        for p in &points {
            let s = p.cache_size as u64;
            prop_assert!(
                hull.misses_at(s) <= weight * curve.miss_ratio_at(s) + 1e-9,
                "hull above curve at {s}"
            );
        }
    }
}
