//! Appendix-F analytics: hit vectors as integer partitions, Mahonian census,
//! and the normalized truncated miss-vector integral.

use crate::hits::hit_vector;
use std::collections::BTreeMap;
use symloc_perm::inversions::{inversions, max_inversions};
use symloc_perm::iter::LexIter;
use symloc_perm::mahonian::{is_partition_of, mahonian_row};
use symloc_perm::Permutation;

/// The increment profile of a hit vector, read as an integer partition of
/// `ℓ(σ)`.
///
/// For a re-traversal the hit vector is non-decreasing and its truncated sum
/// is `ℓ(σ)` (Theorem 2); the paper observes that the values
/// `hits_c` for `c = 1 .. m-1`, written in non-increasing order, form an
/// integer partition of `ℓ(σ)`.
#[must_use]
pub fn hit_vector_partition(sigma: &Permutation) -> Vec<usize> {
    let hv = hit_vector(sigma);
    let m = sigma.degree();
    if m <= 1 {
        return Vec::new();
    }
    let mut parts: Vec<usize> = hv.as_slice()[..m - 1]
        .iter()
        .copied()
        .filter(|&h| h > 0)
        .collect();
    parts.sort_unstable_by(|a, b| b.cmp(a));
    parts
}

/// A census of hit-vector partitions per Bruhat level.
///
/// `census[n]` maps each partition (of `n`) to the number of permutations at
/// level `n` whose hit vector realizes it; the counts at each level sum to
/// the Mahonian number `M(m, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCensus {
    degree: usize,
    levels: Vec<BTreeMap<Vec<usize>, usize>>,
}

impl PartitionCensus {
    /// Builds the census by exhaustive enumeration of `S_m` (small `m` only).
    ///
    /// # Panics
    ///
    /// Panics if `m > 9` to guard against accidental factorial blow-up.
    #[must_use]
    pub fn build(m: usize) -> Self {
        assert!(m <= 9, "PartitionCensus::build: degree {m} too large");
        let max = max_inversions(m);
        let mut levels = vec![BTreeMap::new(); max + 1];
        for sigma in LexIter::new(m) {
            let level = inversions(&sigma);
            let partition = hit_vector_partition(&sigma);
            *levels[level].entry(partition).or_insert(0) += 1;
        }
        PartitionCensus { degree: m, levels }
    }

    /// Degree of the underlying symmetric group.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The partition counts at a given level.
    #[must_use]
    pub fn level(&self, n: usize) -> Option<&BTreeMap<Vec<usize>, usize>> {
        self.levels.get(n)
    }

    /// Number of levels (`m(m-1)/2 + 1`).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total permutation count per level (must equal the Mahonian row).
    #[must_use]
    pub fn level_totals(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|l| l.values().sum::<usize>())
            .collect()
    }

    /// Number of distinct partitions realized at each level.
    #[must_use]
    pub fn distinct_partitions_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(BTreeMap::len).collect()
    }

    /// Checks every partition at level `n` really is a partition of `n`, and
    /// that level totals match the Mahonian numbers.
    #[must_use]
    pub fn verify(&self) -> bool {
        let mahonian: Vec<usize> = mahonian_row(self.degree)
            .iter()
            .map(|&x| x as usize)
            .collect();
        if self.level_totals() != mahonian {
            return false;
        }
        self.levels
            .iter()
            .enumerate()
            .all(|(n, level)| level.keys().all(|p| is_partition_of(p, n)))
    }
}

/// The normalized truncated miss-vector integral of Appendix F.
///
/// The truncated cache-hit vector (sizes `1 .. m-1`) is normalized by `m`
/// (the second-traversal length) and complemented into a miss vector; its
/// mean value is
/// `1 - ℓ(σ) / (m(m-1))`, which falls from 1 at the identity to 0.5 at the
/// sawtooth with slope `1/(m(m-1))` per unit of inversion number. The value
/// is computed from the measured hit vector, not from `ℓ` directly.
#[must_use]
pub fn normalized_truncated_integral(sigma: &Permutation) -> f64 {
    let m = sigma.degree();
    if m <= 1 {
        return 1.0;
    }
    let hv = hit_vector(sigma);
    let sum: usize = hv.as_slice()[..m - 1].iter().sum();
    1.0 - sum as f64 / (m as f64 * (m - 1) as f64)
}

/// The analytical value of the integral predicted by Theorem 2:
/// `1 - ℓ / (m(m-1))`.
#[must_use]
pub fn predicted_truncated_integral(m: usize, inversions: usize) -> f64 {
    if m <= 1 {
        return 1.0;
    }
    1.0 - inversions as f64 / (m as f64 * (m - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_extremes() {
        assert!(hit_vector_partition(&Permutation::identity(5)).is_empty());
        assert_eq!(
            hit_vector_partition(&Permutation::reverse(4)),
            vec![3, 2, 1]
        );
        assert!(hit_vector_partition(&Permutation::identity(1)).is_empty());
        assert!(hit_vector_partition(&Permutation::identity(0)).is_empty());
    }

    #[test]
    fn partition_sums_to_inversions() {
        for sigma in LexIter::new(6) {
            let p = hit_vector_partition(&sigma);
            assert!(is_partition_of(&p, inversions(&sigma)), "σ={sigma}");
        }
    }

    #[test]
    fn census_verifies_for_small_degrees() {
        for m in 1..=6usize {
            let census = PartitionCensus::build(m);
            assert_eq!(census.degree(), m);
            assert_eq!(census.level_count(), max_inversions(m) + 1);
            assert!(census.verify(), "m={m}");
        }
    }

    #[test]
    fn census_level_zero_and_max_are_single_partitions() {
        let census = PartitionCensus::build(5);
        assert_eq!(census.level(0).unwrap().len(), 1);
        assert_eq!(census.level(10).unwrap().len(), 1);
        assert!(census.level(11).is_none());
        // Level 1: the only partition of 1 is [1], realized by all 4 covers.
        let level1 = census.level(1).unwrap();
        assert_eq!(level1.len(), 1);
        assert_eq!(level1[&vec![1usize]], 4);
        assert_eq!(census.distinct_partitions_per_level()[0], 1);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn census_rejects_large_degree() {
        let _ = PartitionCensus::build(10);
    }

    #[test]
    fn integral_matches_prediction_exhaustively() {
        for m in 2..=6usize {
            for sigma in LexIter::new(m) {
                let measured = normalized_truncated_integral(&sigma);
                let predicted = predicted_truncated_integral(m, inversions(&sigma));
                assert!(
                    (measured - predicted).abs() < 1e-12,
                    "m={m} σ={sigma}: {measured} vs {predicted}"
                );
            }
        }
    }

    #[test]
    fn integral_extremes_and_slope() {
        let m = 7;
        assert!((normalized_truncated_integral(&Permutation::identity(m)) - 1.0).abs() < 1e-12);
        assert!((normalized_truncated_integral(&Permutation::reverse(m)) - 0.5).abs() < 1e-12);
        // One Bruhat step changes the integral by exactly 1/(m(m-1)).
        let e = Permutation::identity(m);
        let s0 = e.mul_adjacent_right(0).unwrap();
        let delta = normalized_truncated_integral(&e) - normalized_truncated_integral(&s0);
        assert!((delta - 1.0 / (m as f64 * (m - 1) as f64)).abs() < 1e-12);
        assert_eq!(
            normalized_truncated_integral(&Permutation::identity(1)),
            1.0
        );
        assert_eq!(predicted_truncated_integral(0, 0), 1.0);
    }
}
