//! Multi-epoch scheduling (Theorem 4 and Section VI-A2 of the paper).
//!
//! When the same data set is traversed many times (`A A A A ..`, e.g. the
//! weights of a layer across training steps), Theorem 4 says the optimal
//! schedule alternates the original order with the optimal reordering:
//! `A σ(A) A σ(A) ..`. This module builds such schedules, materializes their
//! traces, and scores whole schedules so the claim can be measured.

use crate::epochs::EpochChain;
use crate::hits::total_reuse_distance;
use symloc_cache::reuse::reuse_profile;
use symloc_perm::Permutation;
use symloc_trace::generators::{multi_epoch_trace, EpochOrder};
use symloc_trace::Trace;

/// A schedule of traversal orders over the same `m` data elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    m: usize,
    epochs: Vec<EpochOrder>,
}

impl Schedule {
    /// A schedule that repeats the forward order every epoch (the baseline
    /// `A A A ..`).
    #[must_use]
    pub fn all_forward(m: usize, epochs: usize) -> Self {
        Schedule {
            m,
            epochs: vec![EpochOrder::Forward; epochs],
        }
    }

    /// The alternating schedule of Theorem 4: `A, σ(A), A, σ(A), ..`.
    #[must_use]
    pub fn alternating(sigma: &Permutation, epochs: usize) -> Self {
        let m = sigma.degree();
        let epochs = (0..epochs)
            .map(|e| {
                if e % 2 == 0 {
                    EpochOrder::Forward
                } else {
                    EpochOrder::Permuted(sigma.clone())
                }
            })
            .collect();
        Schedule { m, epochs }
    }

    /// The canonical sawtooth schedule: forward, reverse, forward, reverse...
    #[must_use]
    pub fn sawtooth(m: usize, epochs: usize) -> Self {
        Schedule {
            m,
            epochs: (0..epochs)
                .map(|e| {
                    if e % 2 == 0 {
                        EpochOrder::Forward
                    } else {
                        EpochOrder::Reverse
                    }
                })
                .collect(),
        }
    }

    /// A schedule from explicit epoch orders.
    ///
    /// # Panics
    ///
    /// Panics if any permuted epoch has a degree other than `m`.
    #[must_use]
    pub fn from_orders(m: usize, epochs: Vec<EpochOrder>) -> Self {
        for e in &epochs {
            if let EpochOrder::Permuted(p) = e {
                assert_eq!(p.degree(), m, "epoch degree mismatch");
            }
        }
        Schedule { m, epochs }
    }

    /// Number of data elements.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// Number of epochs.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The epoch orders.
    #[must_use]
    pub fn orders(&self) -> &[EpochOrder] {
        &self.epochs
    }

    /// Materializes the full access trace of the schedule.
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        multi_epoch_trace(self.m, &self.epochs)
    }

    /// Total finite reuse distance of the schedule's trace (lower = better
    /// locality). This is the scalar the paper's Section VI-A2 compares
    /// (`n²m²` for cyclic vs `nm(nm+1)/2` for sawtooth).
    #[must_use]
    pub fn total_reuse_distance(&self) -> u128 {
        reuse_profile(&self.to_trace())
            .histogram()
            .total_finite_distance()
    }

    /// The permutation each epoch traverses in (`Forward` = identity,
    /// `Reverse` = sawtooth).
    #[must_use]
    pub fn epoch_permutations(&self) -> Vec<Permutation> {
        self.epochs
            .iter()
            .map(|e| match e {
                EpochOrder::Forward => Permutation::identity(self.m),
                EpochOrder::Reverse => Permutation::reverse(self.m),
                EpochOrder::Permuted(p) => p.clone(),
            })
            .collect()
    }

    /// The schedule as an [`EpochChain`], relabeled so its first epoch is the
    /// canonical order (the relabeling argument of Theorem 4's proof: the
    /// first epoch is all cold misses whatever its order, so only the
    /// *relative* reorderings matter).
    #[must_use]
    pub fn to_epoch_chain(&self) -> EpochChain {
        let perms = self.epoch_permutations();
        let Some((first, rest)) = perms.split_first() else {
            return EpochChain::new(self.m, Vec::new());
        };
        let relabel = first.inverse();
        let orders = rest.iter().map(|p| relabel.compose(p)).collect();
        EpochChain::new(self.m, orders)
    }

    /// [`Schedule::total_reuse_distance`] computed analytically from the
    /// per-transition Algorithm-1 kernels (Theorem 4's decomposition) through
    /// one reused scratch workspace — `O(epochs · m log m)` instead of
    /// simulating the `epochs · m`-access trace through an LRU stack.
    #[must_use]
    pub fn analytical_total_reuse_distance(&self) -> u128 {
        self.to_epoch_chain().analytical_total_reuse_distance()
    }

    /// [`Schedule::hits`] computed analytically (same decomposition as
    /// [`Schedule::analytical_total_reuse_distance`]).
    #[must_use]
    pub fn analytical_hits(&self, c: usize) -> usize {
        self.to_epoch_chain().analytical_hits(c)
    }

    /// Number of LRU hits of the schedule's trace at cache size `c`.
    #[must_use]
    pub fn hits(&self, c: usize) -> usize {
        reuse_profile(&self.to_trace()).hits(c)
    }

    /// Miss ratio of the schedule's trace at cache size `c`.
    #[must_use]
    pub fn miss_ratio(&self, c: usize) -> f64 {
        reuse_profile(&self.to_trace()).miss_ratio(c)
    }
}

/// The paper's analytical totals for one re-traversal of `k = n·m` elements:
/// cyclic order costs `k²` total reuse distance, sawtooth costs `k(k+1)/2`.
#[must_use]
pub fn analytical_retraversal_cost(k: usize, sawtooth: bool) -> u128 {
    let k = k as u128;
    if sawtooth {
        k * (k + 1) / 2
    } else {
        k * k
    }
}

/// Convenience check that the single-re-traversal totals computed by
/// Algorithm 1 match the analytical formulas for both extremes.
#[must_use]
pub fn analytical_totals_match(k: usize) -> bool {
    total_reuse_distance(&Permutation::identity(k)) == analytical_retraversal_cost(k, false)
        && total_reuse_distance(&Permutation::reverse(k)) == analytical_retraversal_cost(k, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_have_expected_shapes() {
        let s = Schedule::all_forward(4, 3);
        assert_eq!(s.degree(), 4);
        assert_eq!(s.epoch_count(), 3);
        assert_eq!(s.to_trace().len(), 12);

        let alt = Schedule::alternating(&Permutation::reverse(4), 4);
        assert_eq!(alt.orders().len(), 4);
        assert_eq!(alt.to_trace(), Schedule::sawtooth(4, 4).to_trace());
    }

    #[test]
    fn from_orders_validates_degrees() {
        let s = Schedule::from_orders(
            3,
            vec![
                EpochOrder::Forward,
                EpochOrder::Permuted(Permutation::reverse(3)),
            ],
        );
        assert_eq!(s.epoch_count(), 2);
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn from_orders_rejects_bad_degree() {
        let _ = Schedule::from_orders(3, vec![EpochOrder::Permuted(Permutation::reverse(4))]);
    }

    #[test]
    fn alternating_beats_all_forward() {
        let m = 16;
        let epochs = 6;
        let forward = Schedule::all_forward(m, epochs);
        let alternating = Schedule::alternating(&Permutation::reverse(m), epochs);
        assert!(alternating.total_reuse_distance() < forward.total_reuse_distance());
        // At half-capacity cache the alternating schedule hits, the cyclic one
        // does not.
        let c = m / 2;
        assert!(alternating.hits(c) > 0);
        assert_eq!(forward.hits(c), 0);
        assert!(alternating.miss_ratio(c) < forward.miss_ratio(c));
    }

    #[test]
    fn alternating_with_suboptimal_sigma_is_between() {
        let m = 12;
        let epochs = 6;
        // A mildly-reordered sigma: swap the first two elements only.
        let mild = Permutation::identity(m).mul_adjacent_right(0).unwrap();
        let forward = Schedule::all_forward(m, epochs).total_reuse_distance();
        let mild_total = Schedule::alternating(&mild, epochs).total_reuse_distance();
        let best = Schedule::alternating(&Permutation::reverse(m), epochs).total_reuse_distance();
        assert!(best < mild_total);
        assert!(mild_total < forward);
    }

    #[test]
    fn analytical_schedule_costs_match_simulation() {
        // The Theorem-4 decomposition through the scratch kernels must agree
        // with full LRU trace simulation, including for schedules whose first
        // epoch is not the canonical order.
        let m = 9;
        let perm = Permutation::from_images(vec![3, 1, 4, 0, 8, 2, 6, 7, 5]).unwrap();
        let schedules = [
            Schedule::all_forward(m, 4),
            Schedule::sawtooth(m, 5),
            Schedule::alternating(&perm, 4),
            Schedule::from_orders(
                m,
                vec![
                    EpochOrder::Reverse,
                    EpochOrder::Permuted(perm.clone()),
                    EpochOrder::Forward,
                ],
            ),
            Schedule::all_forward(m, 0),
            Schedule::all_forward(0, 3),
        ];
        for s in &schedules {
            assert_eq!(
                s.analytical_total_reuse_distance(),
                s.total_reuse_distance(),
                "orders {:?}",
                s.orders()
            );
            for c in 0..=m {
                assert_eq!(
                    s.analytical_hits(c),
                    s.hits(c),
                    "c={c} orders {:?}",
                    s.orders()
                );
            }
        }
    }

    #[test]
    fn analytical_formulas_match_algorithm1() {
        for k in [1usize, 2, 5, 16, 40] {
            assert!(analytical_totals_match(k), "k={k}");
        }
        assert_eq!(analytical_retraversal_cost(4, false), 16);
        assert_eq!(analytical_retraversal_cost(4, true), 10);
    }

    #[test]
    fn degenerate_schedules() {
        let s = Schedule::all_forward(0, 3);
        assert_eq!(s.to_trace().len(), 0);
        assert_eq!(s.total_reuse_distance(), 0);
        let s = Schedule::all_forward(4, 0);
        assert_eq!(s.to_trace().len(), 0);
        assert_eq!(s.miss_ratio(2), 0.0);
    }
}
