//! Analytical locality of multi-epoch traversal chains (the paper's
//! "non-periodic data reuse" future-work direction, Section VI-D / VIII-E).
//!
//! A schedule `A, σ₁(A), σ₂(A), …, σ_k(A)` re-traverses the same data `k`
//! times. Each *consecutive pair* of epochs is itself a re-traversal whose
//! generating permutation is the relative reordering `σ_{i-1}⁻¹ ∘ σ_i`
//! (relabel the earlier epoch to the canonical order `A`; the later epoch
//! then reads `σ_{i-1}⁻¹(σ_i(q))` at step `q` — the paper's relabeling
//! argument from Theorem 4's proof). The whole schedule's locality therefore
//! decomposes into the per-transition symmetric locality:
//!
//! * total truncated hit sum = Σ_i ℓ(σ_{i-1}⁻¹ σ_i), and
//! * total finite reuse distance = Σ_i (m² − ℓ(σ_{i-1}⁻¹ σ_i)).
//!
//! The functions here compute that decomposition directly from the
//! permutations and are cross-validated against full trace simulation.

use crate::hits::AnalysisScratch;
use symloc_cache::histogram::ReuseDistanceHistogram;
use symloc_perm::inversions::inversions;
use symloc_perm::Permutation;

/// A multi-epoch traversal chain: epoch 0 is the canonical order `A`
/// (identity), epoch `i >= 1` traverses in the order `orders[i-1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochChain {
    m: usize,
    orders: Vec<Permutation>,
}

impl EpochChain {
    /// Builds a chain over `m` elements from the orders of epochs `1..`.
    ///
    /// # Panics
    ///
    /// Panics if any order has a degree other than `m`.
    #[must_use]
    pub fn new(m: usize, orders: Vec<Permutation>) -> Self {
        for order in &orders {
            assert_eq!(order.degree(), m, "epoch order degree mismatch");
        }
        EpochChain { m, orders }
    }

    /// The cyclic chain: every epoch repeats the canonical order.
    #[must_use]
    pub fn cyclic(m: usize, epochs_after_first: usize) -> Self {
        EpochChain {
            m,
            orders: vec![Permutation::identity(m); epochs_after_first],
        }
    }

    /// The alternating chain of Theorem 4: `A, σ(A), A, σ(A), …`.
    #[must_use]
    pub fn alternating(sigma: &Permutation, epochs_after_first: usize) -> Self {
        let m = sigma.degree();
        let orders = (0..epochs_after_first)
            .map(|i| {
                if i % 2 == 0 {
                    sigma.clone()
                } else {
                    Permutation::identity(m)
                }
            })
            .collect();
        EpochChain { m, orders }
    }

    /// Number of data elements.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// Number of epochs including the first canonical traversal.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.orders.len() + 1
    }

    /// The relative permutation of each epoch transition:
    /// `rel_i = σ_{i-1}⁻¹ ∘ σ_i` (with `σ_0 = e`), whose re-traversal
    /// `A rel_i(A)` has the same locality as the transition.
    #[must_use]
    pub fn transition_permutations(&self) -> Vec<Permutation> {
        let mut previous = Permutation::identity(self.m);
        let mut out = Vec::with_capacity(self.orders.len());
        for order in &self.orders {
            out.push(previous.inverse().compose(order));
            previous = order.clone();
        }
        out
    }

    /// The inversion number (symmetric locality) of each transition.
    #[must_use]
    pub fn transition_localities(&self) -> Vec<usize> {
        self.transition_permutations()
            .iter()
            .map(inversions)
            .collect()
    }

    /// Total truncated hit sum of the whole chain: `Σ_i ℓ(rel_i)`.
    /// By Theorem 2 this equals the number of (cache-size, access) hit pairs
    /// below the footprint accumulated over all transitions.
    #[must_use]
    pub fn total_locality(&self) -> usize {
        self.transition_localities().iter().sum()
    }

    /// Analytical total finite reuse distance of the whole chain:
    /// `Σ_i (m² − ℓ(rel_i))`.
    #[must_use]
    pub fn analytical_total_reuse_distance(&self) -> u128 {
        let m = self.m as u128;
        self.transition_localities()
            .iter()
            .map(|&l| m * m - l as u128)
            .sum()
    }

    /// The reuse-distance histogram of the whole chain predicted from the
    /// per-transition hit vectors (m cold accesses for the first epoch, then
    /// one finite distance per element per transition).
    ///
    /// One [`AnalysisScratch`] is reused across all transitions.
    #[must_use]
    pub fn analytical_histogram(&self) -> ReuseDistanceHistogram {
        let mut scratch = AnalysisScratch::new(self.m);
        let mut histogram = ReuseDistanceHistogram::new();
        for _ in 0..self.m {
            histogram.record(None);
        }
        for rel in self.transition_permutations() {
            scratch.pass(&rel);
            for &d in scratch.distances() {
                histogram.record(Some(d));
            }
        }
        histogram
    }

    /// The total hit count of the chain at cache size `c`, predicted
    /// analytically as the sum of per-transition hits.
    ///
    /// One [`AnalysisScratch`] is reused across all transitions.
    #[must_use]
    pub fn analytical_hits(&self, c: usize) -> usize {
        let mut scratch = AnalysisScratch::new(self.m);
        self.transition_permutations()
            .iter()
            .map(|rel| crate::hits::hits_with_scratch(rel, c, &mut scratch))
            .sum()
    }

    /// Materializes the chain's access trace (for cross-validation against
    /// the analytical quantities).
    #[must_use]
    pub fn to_trace(&self) -> symloc_trace::Trace {
        let mut trace: symloc_trace::Trace = (0..self.m).collect();
        for order in &self.orders {
            for i in 0..self.m {
                trace.push(symloc_trace::Addr(order.apply(i)));
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_cache::reuse::reuse_profile;
    use symloc_perm::sample::random_permutation;

    #[test]
    fn chain_shapes() {
        let chain = EpochChain::cyclic(5, 3);
        assert_eq!(chain.degree(), 5);
        assert_eq!(chain.epoch_count(), 4);
        assert_eq!(chain.transition_localities(), vec![0, 0, 0]);
        assert_eq!(chain.total_locality(), 0);

        let alt = EpochChain::alternating(&Permutation::reverse(5), 4);
        assert_eq!(alt.transition_localities(), vec![10, 10, 10, 10]);
        assert_eq!(alt.total_locality(), 40);
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn degree_mismatch_rejected() {
        let _ = EpochChain::new(4, vec![Permutation::reverse(5)]);
    }

    #[test]
    fn alternating_transitions_are_w0_both_ways() {
        // A -> w0(A) has relative permutation w0; w0(A) -> A has relative
        // permutation w0^{-1} = w0; so every transition has maximal locality.
        let w0 = Permutation::reverse(6);
        let chain = EpochChain::alternating(&w0, 5);
        for rel in chain.transition_permutations() {
            assert!(rel.is_reverse());
        }
    }

    #[test]
    fn analytical_quantities_match_simulation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        for m in [4usize, 7, 12] {
            // A chain of three random epoch orders.
            let orders: Vec<Permutation> =
                (0..3).map(|_| random_permutation(m, &mut rng)).collect();
            let chain = EpochChain::new(m, orders);
            let profile = reuse_profile(&chain.to_trace());
            // Total finite reuse distance matches the analytical formula.
            assert_eq!(
                profile.histogram().total_finite_distance(),
                chain.analytical_total_reuse_distance(),
                "m={m}"
            );
            // Full histogram matches.
            assert_eq!(profile.histogram(), &chain.analytical_histogram(), "m={m}");
            // Hits at every cache size match.
            for c in 1..=m {
                assert_eq!(profile.hits(c), chain.analytical_hits(c), "m={m} c={c}");
            }
            // The truncated-hit identity generalizes: Σ_{c<m} hits_c = Σ_i ℓ(rel_i).
            let truncated: usize = (1..m).map(|c| profile.hits(c)).sum();
            assert_eq!(truncated, chain.total_locality(), "m={m}");
        }
    }

    #[test]
    fn alternation_maximizes_total_locality_over_fixed_second_order() {
        // Among chains A, σ(A), A, σ(A) with σ ranging over S_4, the sawtooth
        // maximizes the total locality, as Theorem 4 predicts.
        let m = 4;
        let mut best: Option<(usize, Permutation)> = None;
        for sigma in symloc_perm::iter::LexIter::new(m) {
            let chain = EpochChain::alternating(&sigma, 3);
            let score = chain.total_locality();
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, sigma));
            }
        }
        let (_, winner) = best.unwrap();
        assert!(winner.is_reverse());
    }

    #[test]
    fn degenerate_chains() {
        let chain = EpochChain::new(0, vec![]);
        assert_eq!(chain.epoch_count(), 1);
        assert_eq!(chain.total_locality(), 0);
        assert_eq!(chain.analytical_total_reuse_distance(), 0);
        assert_eq!(chain.to_trace().len(), 0);
        let single = EpochChain::cyclic(3, 0);
        assert_eq!(single.to_trace().len(), 3);
        assert_eq!(single.analytical_hits(2), 0);
    }
}
