//! Exhaustive and sampled sweeps over `S_m`, parallelized with `symloc-par`.
//!
//! These drive the paper's Figure 1 (average miss-ratio curve per inversion
//! number) and its extensions to larger degrees where exhaustive enumeration
//! is replaced by stratified sampling.
//!
//! The entry points here are thin wrappers over [`crate::engine::SweepEngine`],
//! which streams permutations through per-worker
//! [`crate::hits::AnalysisScratch`] workspaces instead of allocating per
//! permutation. The original per-permutation path is kept as
//! [`exhaustive_levels_reference`] for cross-checks and speedup measurement.

use crate::engine::SweepEngine;
use crate::hits::hit_vector;
use symloc_cache::mrc::MissRatioCurve;
use symloc_par::parallel_map_chunked;
use symloc_perm::inversions::{inversions, max_inversions};
use symloc_perm::iter::RankRangeIter;
use symloc_perm::rank::{factorial, RankRange};
use symloc_perm::statistics::Statistic;

pub use crate::engine::{SweepLevel, SweepSpec};
pub use crate::model::CacheModel;
pub use crate::shard::ShardedSweep;

/// Aggregated hit-vector statistics for one Bruhat level (inversion count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAggregate {
    /// The inversion number of the level.
    pub inversions: usize,
    /// Number of permutations aggregated.
    pub count: u64,
    /// Element-wise sum of hit vectors (index 0 = cache size 1).
    pub hit_sums: Vec<u64>,
}

impl LevelAggregate {
    pub(crate) fn empty(inversions: usize, m: usize) -> Self {
        LevelAggregate {
            inversions,
            count: 0,
            hit_sums: vec![0; m],
        }
    }

    fn absorb(&mut self, hits: &[usize]) {
        self.count += 1;
        for (sum, &h) in self.hit_sums.iter_mut().zip(hits) {
            *sum += h as u64;
        }
    }

    fn merge(&mut self, other: &LevelAggregate) {
        self.count += other.count;
        for (a, b) in self.hit_sums.iter_mut().zip(&other.hit_sums) {
            *a += b;
        }
    }

    /// The average hit count at cache size `c` (1-based).
    #[must_use]
    pub fn mean_hits(&self, c: usize) -> f64 {
        if self.count == 0 || c == 0 || c > self.hit_sums.len() {
            return 0.0;
        }
        self.hit_sums[c - 1] as f64 / self.count as f64
    }

    /// The average miss-ratio curve of the level, over cache sizes
    /// `0 ..= m`, with `2m` accesses per re-traversal.
    #[must_use]
    pub fn average_mrc(&self) -> MissRatioCurve {
        let m = self.hit_sums.len();
        let accesses = 2 * m;
        let mut ratios = Vec::with_capacity(m + 1);
        if self.count == 0 || m == 0 {
            ratios.push(0.0);
            return MissRatioCurve::from_ratios(ratios, 0);
        }
        ratios.push(1.0);
        for c in 1..=m {
            let mean_hits = self.hit_sums[c - 1] as f64 / self.count as f64;
            ratios.push(1.0 - mean_hits / accesses as f64);
        }
        MissRatioCurve::from_ratios(ratios, accesses)
    }
}

/// Exhaustively sweeps all of `S_m`, grouping hit vectors by inversion
/// number, in parallel over `threads` workers.
///
/// Returns one [`LevelAggregate`] per inversion count `0 ..= m(m-1)/2`.
/// This is the data behind Figure 1 of the paper (`m = 5` there).
///
/// Thin wrapper over [`SweepEngine::exhaustive_levels`].
///
/// # Panics
///
/// Panics if `m > 12` (the factorial sweep would be prohibitive).
#[must_use]
pub fn exhaustive_levels(m: usize, threads: usize) -> Vec<LevelAggregate> {
    SweepEngine::with_threads(m, threads).exhaustive_levels()
}

/// The original per-permutation implementation of [`exhaustive_levels`]:
/// allocates a fresh `Permutation`, Fenwick tree, histogram and hit vector
/// for every σ.
///
/// Kept as the reference the engine is cross-checked against in tests, and
/// as the baseline the `bench_fig1_sweep` bench and `BENCH_sweep.json`
/// measure the batched engine's speedup over.
///
/// # Panics
///
/// Panics if `m > 12`.
#[must_use]
pub fn exhaustive_levels_reference(m: usize, threads: usize) -> Vec<LevelAggregate> {
    assert!(
        m <= 12,
        "exhaustive_levels: degree {m} too large for a factorial sweep"
    );
    let total = factorial(m).expect("m <= 12") as usize;
    let max_inv = max_inversions(m);
    let partials = parallel_map_chunked(total, threads.max(1), |chunk| {
        let mut levels: Vec<LevelAggregate> =
            (0..=max_inv).map(|l| LevelAggregate::empty(l, m)).collect();
        let range = RankRange {
            start: chunk.start as u128,
            end: chunk.end as u128,
        };
        for sigma in RankRangeIter::new(m, range) {
            let l = inversions(&sigma);
            let hv = hit_vector(&sigma);
            levels[l].absorb(hv.as_slice());
        }
        levels
    });
    let mut merged: Vec<LevelAggregate> =
        (0..=max_inv).map(|l| LevelAggregate::empty(l, m)).collect();
    for partial in &partials {
        for (acc, level) in merged.iter_mut().zip(partial) {
            acc.merge(level);
        }
    }
    merged
}

/// The average miss-ratio curve per inversion number for `S_m` — the exact
/// series plotted in Figure 1 of the paper.
#[must_use]
pub fn average_mrc_by_inversion(m: usize, threads: usize) -> Vec<MissRatioCurve> {
    exhaustive_levels(m, threads)
        .iter()
        .map(LevelAggregate::average_mrc)
        .collect()
}

/// Stratified-sampling version of [`exhaustive_levels`] for degrees where
/// `m!` is out of reach: draws `samples_per_level` permutations uniformly at
/// each inversion count and aggregates their hit vectors.
///
/// Thin wrapper over [`SweepEngine::sampled_levels`], which builds each
/// level's Mahonian sampling table once and reuses per-worker scratch.
#[must_use]
pub fn sampled_levels(
    m: usize,
    samples_per_level: usize,
    seed: u64,
    threads: usize,
) -> Vec<LevelAggregate> {
    SweepEngine::with_threads(m, threads).sampled_levels(samples_per_level, seed)
}

/// Generalized sweep: all of `S_m` with levels keyed by any [`Statistic`]
/// and hit vectors evaluated under any [`CacheModel`], including second
/// moments for error estimation.
///
/// Thin wrapper over [`SweepEngine::sweep_levels`]; for the classic
/// Figure-1 pair (`Inversions`, `LruStack`) it agrees with
/// [`exhaustive_levels`], which remains the specialized fast path.
///
/// # Panics
///
/// Panics if `m > 12`.
#[must_use]
pub fn sweep_levels(
    m: usize,
    statistic: Statistic,
    model: CacheModel,
    threads: usize,
) -> Vec<SweepLevel> {
    SweepEngine::with_threads(m, threads).sweep_levels(statistic, model)
}

/// Mahonian-weighted stratified sampling: a global `budget` of draws is
/// split across inversion levels proportionally to their Mahonian sizes
/// (with a floor of `min_per_level`), each hit vector evaluated under
/// `model`.
///
/// Thin wrapper over [`SweepEngine::sampled_levels_weighted`], keyed by the
/// inversion number; pass a different supported [`Statistic`] to the engine
/// method directly for e.g. Eulerian-weighted descent sampling.
#[must_use]
pub fn sampled_levels_weighted(
    m: usize,
    model: CacheModel,
    budget: usize,
    min_per_level: usize,
    seed: u64,
    threads: usize,
) -> Vec<SweepLevel> {
    SweepEngine::with_threads(m, threads).sampled_levels_weighted(
        Statistic::Inversions,
        model,
        budget,
        min_per_level,
        seed,
    )
}

/// Verifies the Figure-1 monotonicity claim on aggregated levels: at every
/// cache size `c < m`, the average miss ratio is non-increasing in the
/// inversion number.
#[must_use]
pub fn levels_are_monotone(levels: &[LevelAggregate]) -> bool {
    let Some(first) = levels.first() else {
        return true;
    };
    let m = first.hit_sums.len();
    for c in 1..m {
        let mut prev = f64::INFINITY;
        for level in levels {
            let mr = level.average_mrc().miss_ratio(c);
            if mr > prev + 1e-9 {
                return false;
            }
            prev = mr;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::mahonian::mahonian_row;

    #[test]
    fn exhaustive_levels_counts_match_mahonian() {
        for m in 1..=6usize {
            let levels = exhaustive_levels(m, 2);
            let mahonian = mahonian_row(m);
            assert_eq!(levels.len(), mahonian.len());
            for (level, &expected) in levels.iter().zip(mahonian.iter()) {
                assert_eq!(
                    u128::from(level.count),
                    expected,
                    "m={m} l={}",
                    level.inversions
                );
            }
        }
    }

    #[test]
    fn exhaustive_levels_threads_agree() {
        let a = exhaustive_levels(5, 1);
        let b = exhaustive_levels(5, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn wrapper_matches_reference_implementation() {
        for m in 0..=6usize {
            assert_eq!(
                exhaustive_levels(m, 2),
                exhaustive_levels_reference(m, 2),
                "m={m}"
            );
        }
    }

    #[test]
    fn theorem2_holds_in_aggregate() {
        // Sum over a level of truncated hit sums = level * count.
        for level in exhaustive_levels(5, 2) {
            let truncated: u64 = level.hit_sums[..4].iter().sum();
            assert_eq!(truncated, level.inversions as u64 * level.count);
        }
    }

    #[test]
    fn figure1_average_mrcs_are_ordered_by_level() {
        // Higher inversion number => better (lower) average miss ratio at
        // every cache size below m, matching Figure 1's separation.
        let levels = exhaustive_levels(5, 2);
        assert!(levels_are_monotone(&levels));
        let curves = average_mrc_by_inversion(5, 2);
        assert_eq!(curves.len(), 11);
        // Identity level: flat at 1.0 below m.
        for c in 0..5 {
            assert!((curves[0].miss_ratio(c) - 1.0).abs() < 1e-12);
        }
        // Sawtooth level: mr(c) = 1 - c/(2m).
        for c in 1..=5 {
            assert!((curves[10].miss_ratio(c) - (1.0 - c as f64 / 10.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_hits_accessor() {
        let levels = exhaustive_levels(4, 1);
        let top = levels.last().unwrap();
        assert_eq!(top.count, 1);
        assert!((top.mean_hits(1) - 1.0).abs() < 1e-12);
        assert!((top.mean_hits(4) - 4.0).abs() < 1e-12);
        assert_eq!(top.mean_hits(0), 0.0);
        assert_eq!(top.mean_hits(9), 0.0);
    }

    #[test]
    fn sampled_levels_cover_every_level() {
        let levels = sampled_levels(8, 10, 42, 3);
        assert_eq!(levels.len(), max_inversions(8) + 1);
        for level in &levels {
            assert_eq!(level.count, 10);
            // Theorem 2 holds for sampled aggregates too.
            let truncated: u64 = level.hit_sums[..7].iter().sum();
            assert_eq!(truncated, level.inversions as u64 * level.count);
        }
    }

    #[test]
    fn sampled_levels_reproducible_for_fixed_seed() {
        let a = sampled_levels(6, 5, 7, 2);
        let b = sampled_levels(6, 5, 7, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_degrees() {
        let levels = exhaustive_levels(1, 2);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].count, 1);
        let curves = average_mrc_by_inversion(1, 1);
        assert_eq!(curves.len(), 1);
        assert!(levels_are_monotone(&[]));
        let l0 = exhaustive_levels(0, 2);
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].average_mrc().max_size(), 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_levels_rejects_huge_degree() {
        let _ = exhaustive_levels(13, 2);
    }

    #[test]
    fn generalized_wrappers_delegate_to_the_engine() {
        let by_descents = sweep_levels(5, Statistic::Descents, CacheModel::LruStack, 2);
        assert_eq!(by_descents.len(), 5); // descent levels 0..=4 of S_5
        assert_eq!(by_descents.iter().map(|l| l.count).sum::<u64>(), 120);
        let sampled = sampled_levels_weighted(7, CacheModel::LruStack, 500, 2, 9, 2);
        assert_eq!(sampled.len(), max_inversions(7) + 1);
        assert!(sampled.iter().all(|l| l.count >= 2));
    }
}
