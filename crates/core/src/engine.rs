//! The batched sweep engine: streaming, allocation-free aggregation of
//! Algorithm-1 analyses over ranges of `S_m`.
//!
//! The Figure-1 family of experiments evaluates the hit vector of *every*
//! permutation of `S_m` (or a stratified sample at larger degrees) and
//! aggregates by inversion number. Done naively that is one `Permutation`,
//! one Fenwick tree, one histogram and one hit vector allocated per
//! permutation — millions of allocations per sweep. The [`SweepEngine`]
//! batches the sweep per worker instead:
//!
//! 1. the rank space `0 .. m!` is split into contiguous chunks
//!    ([`symloc_par::parallel_reduce_chunked`]),
//! 2. each worker positions one [`RankRangeStream`] by unranking the chunk
//!    start, then walks the chunk with in-place `next_permutation` steps,
//! 3. each permutation's distances and inversion number come from one
//!    [`AnalysisScratch`] Fenwick pass (the inversion count is a free
//!    by-product of the same tree queries), and
//! 4. aggregation happens into per-worker dense distance counters that are
//!    merged once, when the workers join — no locks, no per-permutation
//!    `Vec`s, no intermediate collections.
//!
//! The per-level *distance counts* are aggregated rather than per-level hit
//! vectors: since every hit vector is the prefix sum of its distance counts,
//! summing counts first and prefix-summing once per level at the end computes
//! the same [`LevelAggregate`]s with `m` fewer additions per permutation.
//!
//! ```
//! use symloc_core::engine::SweepEngine;
//!
//! let levels = SweepEngine::new(5).exhaustive_levels();
//! assert_eq!(levels.len(), 11); // inversion levels 0 ..= 10 of S_5
//! assert_eq!(levels.iter().map(|l| l.count).sum::<u64>(), 120);
//! ```

use crate::hits::AnalysisScratch;
use crate::model::{CacheModel, ModelScratch};
use crate::sweep::LevelAggregate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symloc_par::{default_threads, parallel_map_chunked, parallel_reduce_chunked};
use symloc_perm::inversions::max_inversions;
use symloc_perm::iter::RankRangeStream;
use symloc_perm::rank::{factorial, RankRange};
use symloc_perm::sample::{InversionSampler, LevelSampler, LevelSamplerScratch};
use symloc_perm::statistics::Statistic;

/// What one generalized sweep computes: degree, level statistic and cache
/// model. Construction is validation-free; the engine validates degrees
/// when a sweep starts.
///
/// The spec is the unit the sharded/checkpointable runner
/// ([`crate::shard::ShardedSweep`]) fingerprints, so two processes agree on
/// whether a checkpoint belongs to the sweep they are about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepSpec {
    /// The degree `m` swept over.
    pub m: usize,
    /// The statistic levels are keyed by.
    pub statistic: Statistic,
    /// The cache model hit vectors are evaluated under.
    pub model: CacheModel,
}

impl SweepSpec {
    /// The paper's Figure-1 sweep: levels by inversion number under the
    /// fully associative LRU stack model.
    #[must_use]
    pub fn figure1(m: usize) -> Self {
        SweepSpec {
            m,
            statistic: Statistic::Inversions,
            model: CacheModel::LruStack,
        }
    }

    /// A stable one-line fingerprint of the spec, embedded in checkpoints.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!("m={};stat={};model={}", self.m, self.statistic, self.model)
    }
}

impl std::fmt::Display for SweepSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.fingerprint())
    }
}

/// Aggregated hit-vector statistics of one level of a generalized sweep:
/// the permutation count, the element-wise hit sums, and the element-wise
/// sums of squared hits, from which the standard error of each mean hit
/// count follows.
///
/// The sum-of-squares makes sampled sweeps quantifiable: a stratified
/// sample reports not just the level's mean hit vector but how tight that
/// estimate is ([`SweepLevel::stderr_hits`]). For exhaustive sweeps the
/// "error" is zero-information (the whole population was seen) but the
/// moments are still exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepLevel {
    /// The statistic value of the level.
    pub level: usize,
    /// Number of permutations aggregated.
    pub count: u64,
    /// Element-wise sum of hit vectors (index 0 = cache size 1).
    pub hit_sums: Vec<u64>,
    /// Element-wise sum of squared hits (index 0 = cache size 1).
    pub hit_sq_sums: Vec<u64>,
}

impl SweepLevel {
    /// An empty aggregate for `level` over `S_m`.
    #[must_use]
    pub fn empty(level: usize, m: usize) -> Self {
        SweepLevel {
            level,
            count: 0,
            hit_sums: vec![0; m],
            hit_sq_sums: vec![0; m],
        }
    }

    /// Absorbs one permutation's hit vector.
    pub fn absorb(&mut self, hits: &[u64]) {
        self.count += 1;
        for ((sum, sq), &h) in self
            .hit_sums
            .iter_mut()
            .zip(self.hit_sq_sums.iter_mut())
            .zip(hits)
        {
            *sum += h;
            *sq += h * h;
        }
    }

    /// Merges another aggregate of the same level into this one.
    ///
    /// # Panics
    ///
    /// Panics if the levels or degrees differ.
    pub fn merge(&mut self, other: &SweepLevel) {
        assert_eq!(self.level, other.level, "cannot merge different levels");
        assert_eq!(
            self.hit_sums.len(),
            other.hit_sums.len(),
            "cannot merge different degrees"
        );
        self.count += other.count;
        for (a, b) in self.hit_sums.iter_mut().zip(&other.hit_sums) {
            *a += b;
        }
        for (a, b) in self.hit_sq_sums.iter_mut().zip(&other.hit_sq_sums) {
            *a += b;
        }
    }

    /// The mean hit count at cache size `c` (1-based), or 0 out of range.
    #[must_use]
    pub fn mean_hits(&self, c: usize) -> f64 {
        if self.count == 0 || c == 0 || c > self.hit_sums.len() {
            return 0.0;
        }
        self.hit_sums[c - 1] as f64 / self.count as f64
    }

    /// The sample standard error of [`SweepLevel::mean_hits`] at cache size
    /// `c`: `s/√n` with the Bessel-corrected sample standard deviation `s`.
    /// Returns 0 when fewer than two permutations were aggregated (or out
    /// of range).
    #[must_use]
    pub fn stderr_hits(&self, c: usize) -> f64 {
        if self.count < 2 || c == 0 || c > self.hit_sums.len() {
            return 0.0;
        }
        let n = self.count as f64;
        let sum = self.hit_sums[c - 1] as f64;
        let sq = self.hit_sq_sums[c - 1] as f64;
        let variance = ((sq - sum * sum / n) / (n - 1.0)).max(0.0);
        (variance / n).sqrt()
    }

    /// The mean miss ratio at cache size `c`, out of `2m` accesses.
    #[must_use]
    pub fn mean_miss_ratio(&self, c: usize) -> f64 {
        let m = self.hit_sums.len();
        if m == 0 {
            return 0.0;
        }
        1.0 - self.mean_hits(c) / (2 * m) as f64
    }

    /// Downgrades to the legacy Figure-1 [`LevelAggregate`] (drops the
    /// second moment).
    #[must_use]
    pub fn to_level_aggregate(&self) -> LevelAggregate {
        LevelAggregate {
            inversions: self.level,
            count: self.count,
            hit_sums: self.hit_sums.clone(),
        }
    }
}

fn empty_sweep_levels(statistic: Statistic, m: usize) -> Vec<SweepLevel> {
    (0..statistic.level_count(m))
        .map(|l| SweepLevel::empty(l, m))
        .collect()
}

fn merge_sweep_levels(mut a: Vec<SweepLevel>, b: Vec<SweepLevel>) -> Vec<SweepLevel> {
    for (x, y) in a.iter_mut().zip(&b) {
        x.merge(y);
    }
    a
}

/// Per-worker (and merged) sweep state: for every inversion level, the
/// number of permutations seen and their dense reuse-distance counts.
#[derive(Debug, Clone)]
struct LevelCounts {
    /// Permutations aggregated per level.
    perms: Vec<u64>,
    /// `dist_counts[level][d]` = occurrences of reuse distance `d` (`1..=m`)
    /// across the level's permutations. Index 0 is unused.
    dist_counts: Vec<Vec<u64>>,
}

impl LevelCounts {
    fn empty(max_inv: usize, m: usize) -> Self {
        LevelCounts {
            perms: vec![0; max_inv + 1],
            dist_counts: vec![vec![0; m + 1]; max_inv + 1],
        }
    }

    fn absorb_distances(&mut self, level: usize, distances: &[usize]) {
        self.perms[level] += 1;
        let counts = &mut self.dist_counts[level];
        for &d in distances {
            counts[d] += 1;
        }
    }

    fn merge(mut self, other: LevelCounts) -> LevelCounts {
        for (a, b) in self.perms.iter_mut().zip(other.perms) {
            *a += b;
        }
        for (row_a, row_b) in self.dist_counts.iter_mut().zip(other.dist_counts) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a += b;
            }
        }
        self
    }

    /// Converts to [`LevelAggregate`]s: the hit vector of a level is the
    /// prefix sum of its distance counts.
    fn into_level_aggregates(self, m: usize) -> Vec<LevelAggregate> {
        self.perms
            .into_iter()
            .zip(self.dist_counts)
            .enumerate()
            .map(|(level, (count, counts))| {
                let mut hit_sums = Vec::with_capacity(m);
                let mut acc = 0u64;
                for &count in &counts[1..] {
                    acc += count;
                    hit_sums.push(acc);
                }
                LevelAggregate {
                    inversions: level,
                    count,
                    hit_sums,
                }
            })
            .collect()
    }
}

/// A parallel sweep evaluator over `S_m` with per-worker scratch.
///
/// See the [module docs](self) for the batching strategy. The engine is
/// cheap to construct (it owns no buffers itself; workers build their
/// scratch when a sweep starts) and deterministic: results are independent
/// of the thread count.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    m: usize,
    threads: usize,
}

impl SweepEngine {
    /// An engine over `S_m` using every available hardware thread.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self::with_threads(m, default_threads())
    }

    /// An engine over `S_m` with an explicit worker count (`0` and `1` both
    /// mean sequential).
    #[must_use]
    pub fn with_threads(m: usize, threads: usize) -> Self {
        SweepEngine {
            m,
            threads: threads.max(1),
        }
    }

    /// The degree `m` swept over.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Exhaustively sweeps all of `S_m`, grouping hit vectors by inversion
    /// number. Returns one [`LevelAggregate`] per inversion count
    /// `0 ..= m(m-1)/2` — the data behind Figure 1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `m > 12` (the factorial sweep would be prohibitive).
    #[must_use]
    pub fn exhaustive_levels(&self) -> Vec<LevelAggregate> {
        let m = self.m;
        assert!(
            m <= 12,
            "exhaustive_levels: degree {m} too large for a factorial sweep"
        );
        let total = factorial(m).expect("m <= 12") as usize;
        let max_inv = max_inversions(m);
        let merged = parallel_reduce_chunked(
            total,
            self.threads,
            || LevelCounts::empty(max_inv, m),
            |mut acc, chunk| {
                let mut scratch = AnalysisScratch::new(m);
                let mut stream = RankRangeStream::new(
                    m,
                    RankRange {
                        start: chunk.start as u128,
                        end: chunk.end as u128,
                    },
                );
                while let Some(images) = stream.next_images() {
                    let level = scratch.pass_images(images);
                    acc.absorb_distances(level, scratch.distances());
                }
                acc
            },
            LevelCounts::merge,
        );
        merged.into_level_aggregates(m)
    }

    /// Stratified-sampling sweep for degrees where `m!` is out of reach:
    /// draws `samples_per_level` permutations uniformly at each inversion
    /// count and aggregates their hit vectors.
    ///
    /// Each level builds its [`InversionSampler`] (the Mahonian completion
    /// table) once and reuses it for every draw; each worker reuses one
    /// scratch and one set of sampling buffers across its levels. The result
    /// is deterministic in `seed` and independent of the thread count.
    #[must_use]
    pub fn sampled_levels(&self, samples_per_level: usize, seed: u64) -> Vec<LevelAggregate> {
        let m = self.m;
        let max_inv = max_inversions(m);
        parallel_map_chunked(max_inv + 1, self.threads, |chunk| {
            let mut scratch = AnalysisScratch::new(m);
            let (mut images, mut code, mut available) = (Vec::new(), Vec::new(), Vec::new());
            let mut out = Vec::with_capacity(chunk.len());
            for level in chunk.start..chunk.end {
                let sampler = InversionSampler::new(m, level)
                    .expect("level <= max_inversions by construction");
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (level as u64).wrapping_mul(0x9E37_79B9));
                let mut counts = LevelCounts::empty(0, m);
                for _ in 0..samples_per_level {
                    sampler.sample_images_into(&mut rng, &mut images, &mut code, &mut available);
                    let drawn_level = scratch.pass_images(&images);
                    debug_assert_eq!(drawn_level, level, "sampler must hit its level");
                    counts.absorb_distances(0, scratch.distances());
                }
                let mut aggregate = counts
                    .into_level_aggregates(m)
                    .pop()
                    .expect("one aggregate per LevelCounts");
                aggregate.inversions = level;
                out.push(aggregate);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Generalized exhaustive sweep: all of `S_m`, levels keyed by any
    /// [`Statistic`], hit vectors evaluated under any [`CacheModel`].
    /// Returns one [`SweepLevel`] per statistic value `0 ..= max_value(m)`,
    /// with second moments for error estimation.
    ///
    /// For `statistic = Inversions`, `model = LruStack` the counts and hit
    /// sums agree with [`SweepEngine::exhaustive_levels`] (which remains
    /// the specialized fast path: it aggregates distance *counts* and
    /// prefix-sums once per level, which a second moment cannot use).
    ///
    /// # Panics
    ///
    /// Panics if `m > 12`.
    #[must_use]
    pub fn sweep_levels(&self, statistic: Statistic, model: CacheModel) -> Vec<SweepLevel> {
        let total = factorial_for_sweep(self.m);
        self.sweep_rank_range(
            statistic,
            model,
            RankRange {
                start: 0,
                end: total,
            },
        )
    }

    /// The sharded building block of [`SweepEngine::sweep_levels`]: sweeps
    /// only the permutations whose lexicographic ranks lie in `range`,
    /// still parallel over the engine's workers. Aggregates from disjoint
    /// ranges [`SweepLevel::merge`] into exactly the full-space result —
    /// which is what makes rank-range checkpointing
    /// ([`crate::shard::ShardedSweep`]) exact.
    ///
    /// # Panics
    ///
    /// Panics if `m > 12` or the range extends past `m!`.
    #[must_use]
    pub fn sweep_rank_range(
        &self,
        statistic: Statistic,
        model: CacheModel,
        range: RankRange,
    ) -> Vec<SweepLevel> {
        let m = self.m;
        let total = factorial_for_sweep(m);
        assert!(
            range.end <= total && range.start <= range.end,
            "sweep_rank_range: invalid rank range {}..{} for m={m}",
            range.start,
            range.end
        );
        let len = range.len() as usize;
        parallel_reduce_chunked(
            len,
            self.threads,
            || empty_sweep_levels(statistic, m),
            |mut acc, chunk| {
                let mut scratch = ModelScratch::new(model, m);
                let mut stream = RankRangeStream::new(
                    m,
                    RankRange {
                        start: range.start + chunk.start as u128,
                        end: range.start + chunk.end as u128,
                    },
                );
                while let Some(images) = stream.next_images() {
                    let (level, hits) = scratch.eval(statistic, images);
                    acc[level].absorb(hits);
                }
                acc
            },
            merge_sweep_levels,
        )
    }

    /// Stratified-sampling sweep with a *global* sample budget distributed
    /// by the exact level sizes of `statistic`: level `ℓ` receives
    /// `max(min_per_level.max(2), round(budget · |level ℓ| / m!))` draws
    /// (see [`weighted_sample_counts_for`]; the floor is never below 2 so
    /// every level has a defined standard error), so heavily populated
    /// middle levels — whose means summarize the most permutations — get
    /// proportionally more samples while thin extreme levels keep a
    /// floor. The floor means the actual draw total can exceed `budget`
    /// when the budget is small relative to the level count. Hit vectors are
    /// evaluated under any [`CacheModel`].
    ///
    /// Every statistic has a stratified sampler (Mahonian, Eulerian and
    /// footrule weights all come from dynamic programs); empty levels (odd
    /// total displacements) receive zero draws and report as empty
    /// aggregates.
    ///
    /// Deterministic in `seed` and independent of the thread count. Each
    /// level's aggregate depends only on `(statistic, model, m, level,
    /// draws, seed)` — the property [`crate::shard::SampledSweep`] builds
    /// its per-level checkpoints on.
    ///
    /// # Panics
    ///
    /// Panics if `m > 34` (level weights overflow `u128` beyond that).
    #[must_use]
    pub fn sampled_levels_weighted(
        &self,
        statistic: Statistic,
        model: CacheModel,
        budget: usize,
        min_per_level: usize,
        seed: u64,
    ) -> Vec<SweepLevel> {
        let m = self.m;
        let counts = weighted_sample_counts_for(statistic, m, budget, min_per_level);
        parallel_map_chunked(counts.len(), self.threads, |chunk| {
            let mut scratch = ModelScratch::new(model, m);
            let mut sampler_scratch = LevelSamplerScratch::default();
            let mut images = Vec::new();
            let mut out = Vec::with_capacity(chunk.len());
            for (level, &draws) in counts.iter().enumerate().take(chunk.end).skip(chunk.start) {
                out.push(sample_one_level(
                    &mut scratch,
                    &mut sampler_scratch,
                    &mut images,
                    statistic,
                    m,
                    level,
                    draws,
                    seed,
                ));
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// One level of a weighted sampled sweep, on its own: `draws` uniform
    /// permutations at `level` of `statistic`, aggregated under `model`.
    /// Bit-for-bit the aggregate [`SweepEngine::sampled_levels_weighted`]
    /// produces for the same `(level, draws, seed)` — which is what makes
    /// per-level checkpointing of sampled sweeps exact.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the statistic's maximum for `m`.
    #[must_use]
    pub fn sampled_level(
        &self,
        statistic: Statistic,
        model: CacheModel,
        level: usize,
        draws: usize,
        seed: u64,
    ) -> SweepLevel {
        let mut scratch = ModelScratch::new(model, self.m);
        let mut sampler_scratch = LevelSamplerScratch::default();
        let mut images = Vec::new();
        sample_one_level(
            &mut scratch,
            &mut sampler_scratch,
            &mut images,
            statistic,
            self.m,
            level,
            draws,
            seed,
        )
    }
}

/// The single-level body both [`SweepEngine::sampled_levels_weighted`] and
/// [`SweepEngine::sampled_level`] run: deterministic in `(statistic, m,
/// level, draws, seed)` and independent of how the scratch buffers were
/// previously used. Zero draws never construct a sampler, so empty levels
/// (which have no sampler) are representable.
#[allow(clippy::too_many_arguments)]
fn sample_one_level(
    scratch: &mut ModelScratch,
    sampler_scratch: &mut LevelSamplerScratch,
    images: &mut Vec<usize>,
    statistic: Statistic,
    m: usize,
    level: usize,
    draws: usize,
    seed: u64,
) -> SweepLevel {
    let mut agg = SweepLevel::empty(level, m);
    if draws == 0 {
        return agg;
    }
    let sampler = LevelSampler::new(statistic, m, level).expect("non-empty level admits a sampler");
    let mut rng = StdRng::seed_from_u64(seed ^ (level as u64).wrapping_mul(0x9E37_79B9));
    for _ in 0..draws {
        sampler.sample_images_into(&mut rng, images, sampler_scratch);
        let (drawn, hits) = scratch.eval(statistic, images);
        debug_assert_eq!(drawn, level, "sampler must hit its level");
        agg.absorb(hits);
    }
    agg
}

/// The per-level draw counts [`SweepEngine::sampled_levels_weighted`] uses:
/// level `ℓ` gets `max(min_per_level.max(2), round(budget · w_ℓ / m!))`
/// draws, where `w_ℓ` is the exact level size under `statistic` (the
/// Mahonian row for inversions and major index, the Eulerian row for
/// descents, the footrule row for total displacement). Levels with
/// `w_ℓ = 0` — odd total displacements — get **zero** draws: there is
/// nothing to sample there, and the floor only applies to levels that
/// exist. Exposed so callers (CLI, benches) can report or cost a sampling
/// plan without running it.
///
/// # Panics
///
/// Panics if `m > 34` (level weights overflow `u128` beyond that).
#[must_use]
pub fn weighted_sample_counts_for(
    statistic: Statistic,
    m: usize,
    budget: usize,
    min_per_level: usize,
) -> Vec<usize> {
    // The level sizes come from the single source of truth the statistic
    // itself exposes, so the sampling weights cannot drift from it.
    let weights = statistic.level_weights(m);
    let total: u128 = weights.iter().sum();
    let floor = min_per_level.max(2);
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    weights
        .iter()
        .map(|&w| {
            if w == 0 {
                return 0;
            }
            let share = budget as f64 * (w as f64 / total as f64);
            (share.round() as usize).max(floor)
        })
        .collect()
}

/// The inversion-keyed special case of [`weighted_sample_counts_for`]
/// (Mahonian weights), kept as the stable convenience entry point.
///
/// # Panics
///
/// Panics if `m > 34`.
#[must_use]
pub fn weighted_sample_counts(m: usize, budget: usize, min_per_level: usize) -> Vec<usize> {
    weighted_sample_counts_for(Statistic::Inversions, m, budget, min_per_level)
}

/// `m!` for an exhaustive sweep, with the shared degree guard.
///
/// # Panics
///
/// Panics if `m > 12`.
fn factorial_for_sweep(m: usize) -> u128 {
    assert!(
        m <= 12,
        "exhaustive sweep: degree {m} too large for a factorial sweep"
    );
    factorial(m).expect("m <= 12")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::exhaustive_levels_reference;
    use symloc_perm::mahonian::mahonian_row;

    #[test]
    fn engine_matches_reference_implementation_exhaustively() {
        for m in 0..=6usize {
            for threads in [1, 4] {
                let engine = SweepEngine::with_threads(m, threads).exhaustive_levels();
                let reference = exhaustive_levels_reference(m, threads);
                assert_eq!(engine, reference, "m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn engine_counts_match_mahonian() {
        let levels = SweepEngine::with_threads(6, 3).exhaustive_levels();
        let mahonian = mahonian_row(6);
        assert_eq!(levels.len(), mahonian.len());
        for (level, &expected) in levels.iter().zip(mahonian.iter()) {
            assert_eq!(u128::from(level.count), expected, "l={}", level.inversions);
        }
    }

    #[test]
    fn engine_is_thread_count_invariant() {
        let sequential = SweepEngine::with_threads(7, 1).exhaustive_levels();
        for threads in [2, 5, 16] {
            assert_eq!(
                SweepEngine::with_threads(7, threads).exhaustive_levels(),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_accessors() {
        let engine = SweepEngine::with_threads(5, 0);
        assert_eq!(engine.degree(), 5);
        assert_eq!(engine.threads(), 1);
        assert!(SweepEngine::new(4).threads() >= 1);
    }

    #[test]
    fn sampled_levels_hit_their_levels_and_are_deterministic() {
        let engine = SweepEngine::with_threads(9, 3);
        let levels = engine.sampled_levels(8, 42);
        assert_eq!(levels.len(), max_inversions(9) + 1);
        for level in &levels {
            assert_eq!(level.count, 8);
            // Theorem 2 in aggregate: truncated hit sums = ℓ · count.
            let truncated: u64 = level.hit_sums[..8].iter().sum();
            assert_eq!(truncated, level.inversions as u64 * level.count);
        }
        let again = SweepEngine::with_threads(9, 7).sampled_levels(8, 42);
        assert_eq!(levels, again, "seeded sampling must not depend on threads");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn engine_rejects_huge_exhaustive_degree() {
        let _ = SweepEngine::new(13).exhaustive_levels();
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn generalized_sweep_rejects_huge_degree() {
        let _ = SweepEngine::new(13).sweep_levels(Statistic::Inversions, CacheModel::LruStack);
    }

    #[test]
    fn generalized_sweep_matches_fast_path_on_figure1() {
        for m in 0..=6usize {
            for threads in [1, 3] {
                let engine = SweepEngine::with_threads(m, threads);
                let fast = engine.exhaustive_levels();
                let general = engine.sweep_levels(Statistic::Inversions, CacheModel::LruStack);
                assert_eq!(general.len(), fast.len(), "m={m}");
                for (g, f) in general.iter().zip(&fast) {
                    assert_eq!(g.to_level_aggregate(), *f, "m={m} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn generalized_sweep_covers_every_statistic() {
        let m = 5;
        let engine = SweepEngine::with_threads(m, 2);
        for statistic in Statistic::ALL {
            let levels = engine.sweep_levels(statistic, CacheModel::LruStack);
            assert_eq!(levels.len(), statistic.level_count(m), "{statistic}");
            let total: u64 = levels.iter().map(|l| l.count).sum();
            assert_eq!(total, 120, "{statistic} must see all of S_5");
            // Level sizes match the statistic's exact distribution.
            let weights = statistic.level_weights(m);
            for (level, &w) in levels.iter().zip(weights.iter()) {
                assert_eq!(u128::from(level.count), w, "{statistic} l={}", level.level);
            }
            // The grand hit total is model- and statistic-independent: it
            // only regroups the same 120 hit vectors.
            let grand: u64 = levels.iter().map(|l| l.hit_sums.iter().sum::<u64>()).sum();
            let figure1: u64 = engine
                .exhaustive_levels()
                .iter()
                .map(|l| l.hit_sums.iter().sum::<u64>())
                .sum();
            assert_eq!(grand, figure1, "{statistic}");
        }
    }

    #[test]
    fn generalized_sweep_under_set_associative_models() {
        use symloc_cache::setassoc::ReplacementPolicy;
        let m = 5;
        let engine = SweepEngine::with_threads(m, 2);
        // Fully associative LRU via the simulator equals the stack model.
        let stack = engine.sweep_levels(Statistic::Inversions, CacheModel::LruStack);
        let assoc_lru = engine.sweep_levels(
            Statistic::Inversions,
            CacheModel::SetAssoc {
                ways: m,
                policy: ReplacementPolicy::Lru,
            },
        );
        assert_eq!(stack, assoc_lru);
        // A 2-way FIFO cache cannot beat the idealized stack model in total.
        let fifo = engine.sweep_levels(
            Statistic::Inversions,
            CacheModel::SetAssoc {
                ways: 2,
                policy: ReplacementPolicy::Fifo,
            },
        );
        let stack_total: u64 = stack.iter().map(|l| l.hit_sums.iter().sum::<u64>()).sum();
        let fifo_total: u64 = fifo.iter().map(|l| l.hit_sums.iter().sum::<u64>()).sum();
        assert!(
            fifo_total <= stack_total,
            "fifo={fifo_total} lru={stack_total}"
        );
        assert_eq!(fifo.iter().map(|l| l.count).sum::<u64>(), 120);
    }

    #[test]
    fn sweep_rank_range_shards_merge_to_full_space() {
        let m = 6;
        let engine = SweepEngine::with_threads(m, 2);
        let full = engine.sweep_levels(Statistic::Descents, CacheModel::LruStack);
        let total = 720u128;
        let mut merged = super::empty_sweep_levels(Statistic::Descents, m);
        for bounds in [(0u128, 100u128), (100, 399), (399, 720)] {
            let part = engine.sweep_rank_range(
                Statistic::Descents,
                CacheModel::LruStack,
                RankRange {
                    start: bounds.0,
                    end: bounds.1,
                },
            );
            merged = super::merge_sweep_levels(merged, part);
        }
        assert_eq!(merged, full);
        assert_eq!(merged.iter().map(|l| l.count).sum::<u64>(), total as u64);
    }

    #[test]
    fn sweep_level_moments_and_accessors() {
        let mut level = SweepLevel::empty(3, 2);
        assert_eq!(level.mean_hits(1), 0.0);
        assert_eq!(level.stderr_hits(1), 0.0);
        level.absorb(&[1, 4]);
        level.absorb(&[3, 4]);
        assert_eq!(level.count, 2);
        assert!((level.mean_hits(1) - 2.0).abs() < 1e-12);
        assert!((level.mean_hits(2) - 4.0).abs() < 1e-12);
        // Sample sd of {1, 3} is √2; stderr = √2/√2 = 1.
        assert!((level.stderr_hits(1) - 1.0).abs() < 1e-12);
        assert_eq!(level.stderr_hits(2), 0.0); // constant sample
        assert_eq!(level.stderr_hits(0), 0.0);
        assert_eq!(level.mean_hits(9), 0.0);
        assert!((level.mean_miss_ratio(2) - 0.0).abs() < 1e-12);
        let aggregate = level.to_level_aggregate();
        assert_eq!(aggregate.inversions, 3);
        assert_eq!(aggregate.hit_sums, vec![4, 8]);
    }

    #[test]
    #[should_panic(expected = "different levels")]
    fn sweep_level_merge_rejects_level_mismatch() {
        let mut a = SweepLevel::empty(1, 3);
        a.merge(&SweepLevel::empty(2, 3));
    }

    #[test]
    fn weighted_sampling_distributes_budget_by_mahonian_weights() {
        let m = 8;
        let engine = SweepEngine::with_threads(m, 3);
        let budget = 2_000usize;
        let levels = engine.sampled_levels_weighted(
            Statistic::Inversions,
            CacheModel::LruStack,
            budget,
            2,
            42,
        );
        assert_eq!(levels.len(), max_inversions(m) + 1);
        let weights = mahonian_row(m);
        let total: u128 = weights.iter().sum();
        // Extreme levels get the floor; the modal level gets the most.
        assert_eq!(levels[0].count, 2);
        assert_eq!(levels.last().unwrap().count, 2);
        let modal = weights
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .map(|(i, _)| i)
            .unwrap();
        let expected_modal =
            (budget as f64 * (weights[modal] as f64 / total as f64)).round() as u64;
        assert_eq!(levels[modal].count, expected_modal);
        assert!(levels[modal].count > levels[1].count);
        // Theorem 2 in aggregate still holds per drawn level.
        for level in &levels {
            let truncated: u64 = level.hit_sums[..m - 1].iter().sum();
            assert_eq!(truncated, level.level as u64 * level.count);
        }
        // Deterministic in seed, thread-count invariant.
        let again = SweepEngine::with_threads(m, 7).sampled_levels_weighted(
            Statistic::Inversions,
            CacheModel::LruStack,
            budget,
            2,
            42,
        );
        assert_eq!(levels, again);
        // Standard errors are finite and mostly nonzero in the middle.
        assert!(levels[modal].stderr_hits(m / 2) >= 0.0);
    }

    #[test]
    fn weighted_sampling_by_descents_uses_eulerian_weights() {
        use symloc_perm::mahonian::eulerian_row;
        let m = 8;
        let engine = SweepEngine::with_threads(m, 3);
        let budget = 1_000usize;
        let levels =
            engine.sampled_levels_weighted(Statistic::Descents, CacheModel::LruStack, budget, 2, 5);
        assert_eq!(levels.len(), Statistic::Descents.level_count(m));
        let weights = eulerian_row(m);
        let total: u128 = weights.iter().sum();
        // Extreme levels (identity / reverse: 1 permutation each) get the
        // floor; the modal level gets its proportional share.
        assert_eq!(levels[0].count, 2);
        assert_eq!(levels.last().unwrap().count, 2);
        let modal = weights
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .map(|(i, _)| i)
            .unwrap();
        let expected_modal =
            (budget as f64 * (weights[modal] as f64 / total as f64)).round() as u64;
        assert_eq!(levels[modal].count, expected_modal);
        // The plan matches the exposed helper.
        let counts = weighted_sample_counts_for(Statistic::Descents, m, budget, 2);
        for (level, &planned) in levels.iter().zip(counts.iter()) {
            assert_eq!(level.count, planned as u64, "level {}", level.level);
        }
        // Deterministic in seed, thread-count invariant.
        let again = SweepEngine::with_threads(m, 7).sampled_levels_weighted(
            Statistic::Descents,
            CacheModel::LruStack,
            budget,
            2,
            5,
        );
        assert_eq!(levels, again);
    }

    #[test]
    fn weighted_sampling_covers_every_statistic() {
        // Major index and total displacement gained samplers; every
        // statistic's weighted sweep must hit its levels, skip empty ones,
        // and stay thread-invariant.
        let m = 6;
        for statistic in Statistic::ALL {
            let levels = SweepEngine::with_threads(m, 2).sampled_levels_weighted(
                statistic,
                CacheModel::LruStack,
                200,
                2,
                9,
            );
            assert_eq!(levels.len(), statistic.level_count(m), "{statistic}");
            let weights = statistic.level_weights(m);
            for (level, &w) in levels.iter().zip(weights.iter()) {
                if w == 0 {
                    assert_eq!(level.count, 0, "{statistic} empty level {}", level.level);
                } else {
                    assert!(level.count >= 2, "{statistic} level {}", level.level);
                }
            }
            let again = SweepEngine::with_threads(m, 7).sampled_levels_weighted(
                statistic,
                CacheModel::LruStack,
                200,
                2,
                9,
            );
            assert_eq!(levels, again, "{statistic} must be thread-invariant");
        }
    }

    #[test]
    fn sampled_level_matches_the_full_weighted_sweep() {
        let m = 7;
        let engine = SweepEngine::with_threads(m, 3);
        for statistic in [Statistic::Inversions, Statistic::TotalDisplacement] {
            let counts = weighted_sample_counts_for(statistic, m, 300, 2);
            let full = engine.sampled_levels_weighted(statistic, CacheModel::LruStack, 300, 2, 21);
            for (level, &draws) in counts.iter().enumerate() {
                let alone = engine.sampled_level(statistic, CacheModel::LruStack, level, draws, 21);
                assert_eq!(alone, full[level], "{statistic} level {level}");
            }
        }
    }

    #[test]
    fn spec_fingerprint_is_stable() {
        let spec = SweepSpec::figure1(9);
        assert_eq!(spec.fingerprint(), "m=9;stat=inversions;model=lru_stack");
        assert_eq!(format!("{spec}"), spec.fingerprint());
        let assoc = SweepSpec {
            m: 12,
            statistic: Statistic::MajorIndex,
            model: CacheModel::parse("assoc:4:fifo").unwrap(),
        };
        assert_eq!(
            assoc.fingerprint(),
            "m=12;stat=major_index;model=set_assoc:4:fifo"
        );
    }
}
