//! The batched sweep engine: streaming, allocation-free aggregation of
//! Algorithm-1 analyses over ranges of `S_m`.
//!
//! The Figure-1 family of experiments evaluates the hit vector of *every*
//! permutation of `S_m` (or a stratified sample at larger degrees) and
//! aggregates by inversion number. Done naively that is one `Permutation`,
//! one Fenwick tree, one histogram and one hit vector allocated per
//! permutation — millions of allocations per sweep. The [`SweepEngine`]
//! batches the sweep per worker instead:
//!
//! 1. the rank space `0 .. m!` is split into contiguous chunks
//!    ([`symloc_par::parallel_reduce_chunked`]),
//! 2. each worker positions one [`RankRangeStream`] by unranking the chunk
//!    start, then walks the chunk with in-place `next_permutation` steps,
//! 3. each permutation's distances and inversion number come from one
//!    [`AnalysisScratch`] Fenwick pass (the inversion count is a free
//!    by-product of the same tree queries), and
//! 4. aggregation happens into per-worker dense distance counters that are
//!    merged once, when the workers join — no locks, no per-permutation
//!    `Vec`s, no intermediate collections.
//!
//! The per-level *distance counts* are aggregated rather than per-level hit
//! vectors: since every hit vector is the prefix sum of its distance counts,
//! summing counts first and prefix-summing once per level at the end computes
//! the same [`LevelAggregate`]s with `m` fewer additions per permutation.
//!
//! ```
//! use symloc_core::engine::SweepEngine;
//!
//! let levels = SweepEngine::new(5).exhaustive_levels();
//! assert_eq!(levels.len(), 11); // inversion levels 0 ..= 10 of S_5
//! assert_eq!(levels.iter().map(|l| l.count).sum::<u64>(), 120);
//! ```

use crate::hits::AnalysisScratch;
use crate::sweep::LevelAggregate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symloc_par::{default_threads, parallel_map_chunked, parallel_reduce_chunked};
use symloc_perm::inversions::max_inversions;
use symloc_perm::iter::RankRangeStream;
use symloc_perm::rank::{factorial, RankRange};
use symloc_perm::sample::InversionSampler;

/// Per-worker (and merged) sweep state: for every inversion level, the
/// number of permutations seen and their dense reuse-distance counts.
#[derive(Debug, Clone)]
struct LevelCounts {
    /// Permutations aggregated per level.
    perms: Vec<u64>,
    /// `dist_counts[level][d]` = occurrences of reuse distance `d` (`1..=m`)
    /// across the level's permutations. Index 0 is unused.
    dist_counts: Vec<Vec<u64>>,
}

impl LevelCounts {
    fn empty(max_inv: usize, m: usize) -> Self {
        LevelCounts {
            perms: vec![0; max_inv + 1],
            dist_counts: vec![vec![0; m + 1]; max_inv + 1],
        }
    }

    fn absorb_distances(&mut self, level: usize, distances: &[usize]) {
        self.perms[level] += 1;
        let counts = &mut self.dist_counts[level];
        for &d in distances {
            counts[d] += 1;
        }
    }

    fn merge(mut self, other: LevelCounts) -> LevelCounts {
        for (a, b) in self.perms.iter_mut().zip(other.perms) {
            *a += b;
        }
        for (row_a, row_b) in self.dist_counts.iter_mut().zip(other.dist_counts) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a += b;
            }
        }
        self
    }

    /// Converts to [`LevelAggregate`]s: the hit vector of a level is the
    /// prefix sum of its distance counts.
    fn into_level_aggregates(self, m: usize) -> Vec<LevelAggregate> {
        self.perms
            .into_iter()
            .zip(self.dist_counts)
            .enumerate()
            .map(|(level, (count, counts))| {
                let mut hit_sums = Vec::with_capacity(m);
                let mut acc = 0u64;
                for &count in &counts[1..] {
                    acc += count;
                    hit_sums.push(acc);
                }
                LevelAggregate {
                    inversions: level,
                    count,
                    hit_sums,
                }
            })
            .collect()
    }
}

/// A parallel sweep evaluator over `S_m` with per-worker scratch.
///
/// See the [module docs](self) for the batching strategy. The engine is
/// cheap to construct (it owns no buffers itself; workers build their
/// scratch when a sweep starts) and deterministic: results are independent
/// of the thread count.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    m: usize,
    threads: usize,
}

impl SweepEngine {
    /// An engine over `S_m` using every available hardware thread.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self::with_threads(m, default_threads())
    }

    /// An engine over `S_m` with an explicit worker count (`0` and `1` both
    /// mean sequential).
    #[must_use]
    pub fn with_threads(m: usize, threads: usize) -> Self {
        SweepEngine {
            m,
            threads: threads.max(1),
        }
    }

    /// The degree `m` swept over.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Exhaustively sweeps all of `S_m`, grouping hit vectors by inversion
    /// number. Returns one [`LevelAggregate`] per inversion count
    /// `0 ..= m(m-1)/2` — the data behind Figure 1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `m > 12` (the factorial sweep would be prohibitive).
    #[must_use]
    pub fn exhaustive_levels(&self) -> Vec<LevelAggregate> {
        let m = self.m;
        assert!(
            m <= 12,
            "exhaustive_levels: degree {m} too large for a factorial sweep"
        );
        let total = factorial(m).expect("m <= 12") as usize;
        let max_inv = max_inversions(m);
        let merged = parallel_reduce_chunked(
            total,
            self.threads,
            || LevelCounts::empty(max_inv, m),
            |mut acc, chunk| {
                let mut scratch = AnalysisScratch::new(m);
                let mut stream = RankRangeStream::new(
                    m,
                    RankRange {
                        start: chunk.start as u128,
                        end: chunk.end as u128,
                    },
                );
                while let Some(images) = stream.next_images() {
                    let level = scratch.pass_images(images);
                    acc.absorb_distances(level, scratch.distances());
                }
                acc
            },
            LevelCounts::merge,
        );
        merged.into_level_aggregates(m)
    }

    /// Stratified-sampling sweep for degrees where `m!` is out of reach:
    /// draws `samples_per_level` permutations uniformly at each inversion
    /// count and aggregates their hit vectors.
    ///
    /// Each level builds its [`InversionSampler`] (the Mahonian completion
    /// table) once and reuses it for every draw; each worker reuses one
    /// scratch and one set of sampling buffers across its levels. The result
    /// is deterministic in `seed` and independent of the thread count.
    #[must_use]
    pub fn sampled_levels(&self, samples_per_level: usize, seed: u64) -> Vec<LevelAggregate> {
        let m = self.m;
        let max_inv = max_inversions(m);
        parallel_map_chunked(max_inv + 1, self.threads, |chunk| {
            let mut scratch = AnalysisScratch::new(m);
            let (mut images, mut code, mut available) = (Vec::new(), Vec::new(), Vec::new());
            let mut out = Vec::with_capacity(chunk.len());
            for level in chunk.start..chunk.end {
                let sampler = InversionSampler::new(m, level)
                    .expect("level <= max_inversions by construction");
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (level as u64).wrapping_mul(0x9E37_79B9));
                let mut counts = LevelCounts::empty(0, m);
                for _ in 0..samples_per_level {
                    sampler.sample_images_into(&mut rng, &mut images, &mut code, &mut available);
                    let drawn_level = scratch.pass_images(&images);
                    debug_assert_eq!(drawn_level, level, "sampler must hit its level");
                    counts.absorb_distances(0, scratch.distances());
                }
                let mut aggregate = counts
                    .into_level_aggregates(m)
                    .pop()
                    .expect("one aggregate per LevelCounts");
                aggregate.inversions = level;
                out.push(aggregate);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::exhaustive_levels_reference;
    use symloc_perm::mahonian::mahonian_row;

    #[test]
    fn engine_matches_reference_implementation_exhaustively() {
        for m in 0..=6usize {
            for threads in [1, 4] {
                let engine = SweepEngine::with_threads(m, threads).exhaustive_levels();
                let reference = exhaustive_levels_reference(m, threads);
                assert_eq!(engine, reference, "m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn engine_counts_match_mahonian() {
        let levels = SweepEngine::with_threads(6, 3).exhaustive_levels();
        let mahonian = mahonian_row(6);
        assert_eq!(levels.len(), mahonian.len());
        for (level, &expected) in levels.iter().zip(mahonian.iter()) {
            assert_eq!(u128::from(level.count), expected, "l={}", level.inversions);
        }
    }

    #[test]
    fn engine_is_thread_count_invariant() {
        let sequential = SweepEngine::with_threads(7, 1).exhaustive_levels();
        for threads in [2, 5, 16] {
            assert_eq!(
                SweepEngine::with_threads(7, threads).exhaustive_levels(),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_accessors() {
        let engine = SweepEngine::with_threads(5, 0);
        assert_eq!(engine.degree(), 5);
        assert_eq!(engine.threads(), 1);
        assert!(SweepEngine::new(4).threads() >= 1);
    }

    #[test]
    fn sampled_levels_hit_their_levels_and_are_deterministic() {
        let engine = SweepEngine::with_threads(9, 3);
        let levels = engine.sampled_levels(8, 42);
        assert_eq!(levels.len(), max_inversions(9) + 1);
        for level in &levels {
            assert_eq!(level.count, 8);
            // Theorem 2 in aggregate: truncated hit sums = ℓ · count.
            let truncated: u64 = level.hit_sums[..8].iter().sum();
            assert_eq!(truncated, level.inversions as u64 * level.count);
        }
        let again = SweepEngine::with_threads(9, 7).sampled_levels(8, 42);
        assert_eq!(levels, again, "seeded sampling must not depend on threads");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn engine_rejects_huge_exhaustive_degree() {
        let _ = SweepEngine::new(13).exhaustive_levels();
    }
}
