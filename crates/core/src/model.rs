//! Cache models a sweep can evaluate hit vectors under.
//!
//! The paper's theory (and the fast Algorithm-1 kernel) assumes a fully
//! associative LRU cache, where the whole hit vector falls out of one
//! Fenwick pass over the permutation. Real hardware is set-associative and
//! not always LRU. [`CacheModel`] abstracts "evaluate the hit vector of the
//! re-traversal `A σ(A)` at every cache size `1..=m`" so the same sweep can
//! answer both questions:
//!
//! * [`CacheModel::LruStack`] — the zero-allocation [`AnalysisScratch`]
//!   path; byte-identical to [`crate::hits::hit_vector_with_scratch`].
//! * [`CacheModel::SetAssoc`] — bridges to
//!   [`symloc_cache::setassoc::SetAssocCache`]: for every capacity the
//!   materialized `2m`-access trace is replayed through a reusable
//!   simulator instance (reset, not re-allocated, per permutation).
//!
//! For a `w`-way model the geometry at capacity `c` is the natural one:
//! below `w` blocks the cache degenerates to a fully associative cache of
//! `c` blocks; from `w` upward it has `⌊c/w⌋` sets of `w` ways (the largest
//! `w`-way cache not exceeding `c` blocks). A fully associative LRU
//! [`CacheModel::SetAssoc`] therefore reproduces [`CacheModel::LruStack`]
//! exactly — a property test pins this.

use crate::hits::AnalysisScratch;
use symloc_cache::setassoc::{CacheConfig, ReplacementPolicy, SetAssocCache};
use symloc_perm::statistics::Statistic;
use symloc_trace::Addr;

/// A cache model a sweep evaluates per-permutation hit vectors under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// Fully associative LRU via the Algorithm-1 stack-distance kernel
    /// (the paper's model; the fast path).
    LruStack,
    /// Set-associative simulation with a fixed associativity and
    /// replacement policy, one simulator per cache size.
    SetAssoc {
        /// Ways per set (associativity).
        ways: usize,
        /// Replacement policy of every set.
        policy: ReplacementPolicy,
    },
}

fn policy_name(policy: ReplacementPolicy) -> &'static str {
    match policy {
        ReplacementPolicy::Lru => "lru",
        ReplacementPolicy::Fifo => "fifo",
        ReplacementPolicy::TreePlru => "plru",
    }
}

fn parse_policy(name: &str) -> Option<ReplacementPolicy> {
    match name {
        "lru" => Some(ReplacementPolicy::Lru),
        "fifo" => Some(ReplacementPolicy::Fifo),
        "plru" | "treeplru" | "tree_plru" => Some(ReplacementPolicy::TreePlru),
        _ => None,
    }
}

impl CacheModel {
    /// Stable machine-readable name (used by checkpoints and the CLI):
    /// `lru_stack` or `set_assoc:<ways>:<policy>`.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            CacheModel::LruStack => "lru_stack".to_string(),
            CacheModel::SetAssoc { ways, policy } => {
                format!("set_assoc:{ways}:{}", policy_name(policy))
            }
        }
    }

    /// Parses a model from its [`CacheModel::name`] (aliases `lru` and
    /// `assoc:<ways>:<policy>` are accepted).
    #[must_use]
    pub fn parse(name: &str) -> Option<CacheModel> {
        let name = name.trim().to_ascii_lowercase();
        if name == "lru_stack" || name == "lru" || name == "stack" {
            return Some(CacheModel::LruStack);
        }
        let rest = name
            .strip_prefix("set_assoc:")
            .or_else(|| name.strip_prefix("assoc:"))?;
        let (ways, policy) = rest.split_once(':')?;
        let ways: usize = ways.parse().ok()?;
        if ways == 0 {
            return None;
        }
        Some(CacheModel::SetAssoc {
            ways,
            policy: parse_policy(policy)?,
        })
    }

    /// The geometry a [`CacheModel::SetAssoc`] model uses at capacity `c`
    /// (`c >= 1`): fully associative below `ways`, otherwise `⌊c/ways⌋`
    /// sets of `ways` ways.
    #[must_use]
    pub fn geometry_at(self, c: usize) -> Option<CacheConfig> {
        match self {
            CacheModel::LruStack => None,
            CacheModel::SetAssoc { ways, policy } => Some(if c < ways {
                CacheConfig {
                    sets: 1,
                    ways: c.max(1),
                    policy,
                }
            } else {
                CacheConfig {
                    sets: c / ways,
                    ways,
                    policy,
                }
            }),
        }
    }
}

impl std::fmt::Display for CacheModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Reusable per-worker workspace for evaluating one [`CacheModel`] over a
/// stream of permutations: owns the [`AnalysisScratch`] (LRU path) or the
/// per-capacity [`SetAssocCache`] instances (set-associative path), plus
/// the output hit buffer. After construction the hot path allocates
/// nothing: simulators are [`SetAssocCache::reset`] per permutation.
#[derive(Debug, Clone)]
pub struct ModelScratch {
    model: CacheModel,
    m: usize,
    analysis: AnalysisScratch,
    /// One simulator per capacity `1..=m` (empty for the LRU stack path).
    caches: Vec<SetAssocCache>,
    hits: Vec<u64>,
    last_inversions: Option<usize>,
}

impl ModelScratch {
    /// Creates a workspace for degree-`m` permutations under `model`.
    #[must_use]
    pub fn new(model: CacheModel, m: usize) -> Self {
        let caches = (1..=m)
            .filter_map(|c| model.geometry_at(c))
            .map(SetAssocCache::new)
            .collect();
        ModelScratch {
            model,
            m,
            analysis: AnalysisScratch::new(m),
            caches,
            hits: Vec::with_capacity(m),
            last_inversions: None,
        }
    }

    /// The model this workspace evaluates.
    #[must_use]
    pub fn model(&self) -> CacheModel {
        self.model
    }

    /// The degree the workspace is sized for.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// Evaluates the hit vector of the re-traversal `A σ(A)` at every cache
    /// size `1..=m` (`hits[c-1]` = hits at capacity `c`, out of `2m`
    /// accesses). `images` must be a permutation of `0..m`. The returned
    /// slice borrows the workspace and is valid until the next call.
    ///
    /// For [`CacheModel::LruStack`] the result is byte-identical to
    /// [`crate::hits::hit_vector_with_scratch`]; the pass also records the
    /// inversion number, retrievable via [`ModelScratch::last_inversions`].
    ///
    /// # Panics
    ///
    /// Panics if `images.len()` differs from the workspace degree.
    pub fn hit_vector_into(&mut self, images: &[usize]) -> &[u64] {
        assert_eq!(images.len(), self.m, "degree mismatch");
        self.hits.clear();
        match self.model {
            CacheModel::LruStack => {
                self.last_inversions = Some(self.analysis.pass_images(images));
                let hits = self.analysis.compute_hits();
                self.hits.extend(hits.iter().map(|&h| h as u64));
            }
            CacheModel::SetAssoc { .. } => {
                for cache in &mut self.caches {
                    cache.reset();
                    for a in 0..self.m {
                        let _ = cache.access(Addr(a));
                    }
                    for &a in images {
                        let _ = cache.access(Addr(a));
                    }
                    self.hits.push(cache.stats().hits as u64);
                }
            }
        }
        &self.hits
    }

    /// The inversion number recorded by the most recent
    /// [`ModelScratch::hit_vector_into`] under [`CacheModel::LruStack`]
    /// (free by-product of the Fenwick pass), or `None` under other models
    /// or before the first evaluation.
    #[must_use]
    pub fn last_inversions(&self) -> Option<usize> {
        self.last_inversions
    }

    /// Evaluates both the statistic level and the hit vector of one
    /// permutation — the sweep engine's per-permutation step. When the
    /// statistic is the inversion number and the model is the LRU stack,
    /// the level is the free by-product of the Fenwick pass; otherwise it
    /// costs one extra scan of `images`.
    ///
    /// # Panics
    ///
    /// Panics if `images.len()` differs from the workspace degree.
    pub fn eval(&mut self, statistic: Statistic, images: &[usize]) -> (usize, &[u64]) {
        let precomputed = match (statistic, self.model) {
            (Statistic::Inversions, CacheModel::LruStack) => None,
            _ => Some(statistic.of_images(images)),
        };
        let _ = self.hit_vector_into(images);
        let level = precomputed.unwrap_or_else(|| {
            self.last_inversions
                .expect("LruStack pass records inversions")
        });
        (level, &self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hits::{hit_vector_with_scratch, AnalysisScratch};
    use symloc_perm::iter::LexIter;

    #[test]
    fn names_round_trip_through_parse() {
        let models = [
            CacheModel::LruStack,
            CacheModel::SetAssoc {
                ways: 4,
                policy: ReplacementPolicy::Fifo,
            },
            CacheModel::SetAssoc {
                ways: 2,
                policy: ReplacementPolicy::TreePlru,
            },
        ];
        for model in models {
            assert_eq!(CacheModel::parse(&model.name()), Some(model));
            assert_eq!(format!("{model}"), model.name());
        }
        assert_eq!(CacheModel::parse("lru"), Some(CacheModel::LruStack));
        assert_eq!(
            CacheModel::parse("assoc:8:lru"),
            Some(CacheModel::SetAssoc {
                ways: 8,
                policy: ReplacementPolicy::Lru
            })
        );
        assert_eq!(CacheModel::parse("assoc:0:lru"), None);
        assert_eq!(CacheModel::parse("assoc:4:bogus"), None);
        assert_eq!(CacheModel::parse("bogus"), None);
    }

    #[test]
    fn lru_stack_bridge_is_byte_identical_to_scratch_kernel() {
        for m in 0..=6usize {
            let mut model_scratch = ModelScratch::new(CacheModel::LruStack, m);
            let mut kernel_scratch = AnalysisScratch::new(m);
            for sigma in LexIter::new(m) {
                let via_model = model_scratch.hit_vector_into(sigma.images()).to_vec();
                let via_kernel: Vec<u64> = hit_vector_with_scratch(&sigma, &mut kernel_scratch)
                    .iter()
                    .map(|&h| h as u64)
                    .collect();
                assert_eq!(via_model, via_kernel, "σ = {sigma}");
            }
        }
    }

    #[test]
    fn fully_associative_lru_set_assoc_matches_stack_model() {
        // A SetAssoc model whose associativity covers the whole footprint is
        // fully associative LRU at every capacity, i.e. exactly the paper's
        // stack model.
        let m = 6;
        let mut stack = ModelScratch::new(CacheModel::LruStack, m);
        let mut assoc = ModelScratch::new(
            CacheModel::SetAssoc {
                ways: m,
                policy: ReplacementPolicy::Lru,
            },
            m,
        );
        for sigma in LexIter::new(m) {
            let a = stack.hit_vector_into(sigma.images()).to_vec();
            let b = assoc.hit_vector_into(sigma.images()).to_vec();
            assert_eq!(a, b, "σ = {sigma}");
        }
    }

    #[test]
    fn set_assoc_hits_never_exceed_accesses_and_grow_with_capacity_at_top() {
        let m = 5;
        let mut scratch = ModelScratch::new(
            CacheModel::SetAssoc {
                ways: 2,
                policy: ReplacementPolicy::Fifo,
            },
            m,
        );
        for sigma in LexIter::new(m) {
            let hits = scratch.hit_vector_into(sigma.images());
            assert_eq!(hits.len(), m);
            for &h in hits {
                assert!(h <= (2 * m) as u64);
            }
            // At full capacity every second-pass access hits under any
            // reasonable policy for the identity re-traversal.
        }
    }

    #[test]
    fn geometry_below_and_above_associativity() {
        let model = CacheModel::SetAssoc {
            ways: 4,
            policy: ReplacementPolicy::Lru,
        };
        let small = model.geometry_at(2).unwrap();
        assert_eq!((small.sets, small.ways), (1, 2));
        let exact = model.geometry_at(8).unwrap();
        assert_eq!((exact.sets, exact.ways), (2, 4));
        let rounded = model.geometry_at(11).unwrap();
        assert_eq!((rounded.sets, rounded.ways), (2, 4));
        assert_eq!(CacheModel::LruStack.geometry_at(4), None);
    }

    #[test]
    fn scratch_accessors() {
        let mut scratch = ModelScratch::new(CacheModel::LruStack, 5);
        assert_eq!(scratch.model(), CacheModel::LruStack);
        assert_eq!(scratch.degree(), 5);
        assert_eq!(scratch.last_inversions(), None);
        let _ = scratch.hit_vector_into(&[4, 3, 2, 1, 0]);
        assert_eq!(scratch.last_inversions(), Some(10));
        let assoc = ModelScratch::new(
            CacheModel::SetAssoc {
                ways: 2,
                policy: ReplacementPolicy::Lru,
            },
            5,
        );
        assert_eq!(assoc.last_inversions(), None);
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn degree_mismatch_is_rejected() {
        let mut scratch = ModelScratch::new(CacheModel::LruStack, 4);
        let _ = scratch.hit_vector_into(&[0, 1, 2]);
    }
}
