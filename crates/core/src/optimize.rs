//! Locality optimization of re-traversals (Problem 2 of the paper).
//!
//! Given feasibility constraints from the program (a [`PrecedenceDag`]), find
//! a reordering `τ` of the second traversal that improves locality while
//! preserving correctness. Two strategies are provided:
//!
//! * exhaustive search over the feasible space (exact, small `m` only), and
//! * greedy ChainFind ascent restricted to feasible covers (the paper's
//!   proposal; `O(m³)` label evaluations when everything is feasible).

use crate::chainfind::{chain_find_constrained, Chain, ChainFindConfig};
use crate::error::{CoreError, Result};
use crate::feasibility::PrecedenceDag;
use crate::hits::AnalysisScratch;
use crate::labeling::MissRatioLabeling;
use symloc_perm::Permutation;

/// Result of a locality optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizationResult {
    /// The chosen second-traversal order.
    pub sigma: Permutation,
    /// Its inversion number (the locality score of Theorem 2).
    pub inversions: usize,
    /// Its cache-hit vector.
    pub hit_vector: Vec<usize>,
}

impl OptimizationResult {
    fn of(sigma: Permutation) -> Self {
        let mut scratch = AnalysisScratch::new(sigma.degree());
        Self::of_with_scratch(sigma, &mut scratch)
    }

    fn of_with_scratch(sigma: Permutation, scratch: &mut AnalysisScratch) -> Self {
        // One pass yields both the hit vector and the inversion number.
        let inv = scratch.pass(&sigma);
        let hv = scratch.compute_hits().to_vec();
        OptimizationResult {
            sigma,
            inversions: inv,
            hit_vector: hv,
        }
    }
}

/// Finds the best feasible re-traversal by exhaustive enumeration of the
/// feasible space, maximizing the inversion number and breaking ties by the
/// lexicographically largest hit vector.
///
/// The candidates stream through one [`AnalysisScratch`]: each is scored by
/// a single Fenwick pass (inversions + hit vector together) and only a new
/// best is materialized.
///
/// # Errors
///
/// Returns [`CoreError::NoFeasibleChoice`] if the feasible space is empty
/// (cannot happen for a consistent DAG, but kept for API robustness).
pub fn best_feasible_exhaustive(constraints: &PrecedenceDag) -> Result<OptimizationResult> {
    let mut scratch = AnalysisScratch::new(constraints.degree());
    let mut best: Option<OptimizationResult> = None;
    for candidate in constraints.feasible_permutations() {
        let inv = scratch.pass(&candidate);
        // `>=` on full ties keeps the *last* maximal candidate, matching the
        // `Iterator::max_by` the loop replaced.
        let better = match &best {
            None => true,
            Some(b) => {
                inv > b.inversions
                    || (inv == b.inversions && {
                        scratch.compute_hits();
                        scratch.hits() >= b.hit_vector.as_slice()
                    })
            }
        };
        if better {
            best = Some(OptimizationResult {
                inversions: inv,
                hit_vector: {
                    scratch.compute_hits();
                    scratch.hits().to_vec()
                },
                sigma: candidate,
            });
        }
    }
    best.ok_or_else(|| CoreError::NoFeasibleChoice {
        reason: "the feasible space is empty".to_string(),
    })
}

/// Improves a starting order greedily with ChainFind restricted to feasible
/// covers, using the miss-ratio labeling `λ_e`.
///
/// # Errors
///
/// Returns [`CoreError::NoFeasibleChoice`] if the starting order itself
/// violates the constraints.
pub fn improve_greedy(
    start: &Permutation,
    constraints: &PrecedenceDag,
    config: ChainFindConfig,
) -> Result<(OptimizationResult, Chain)> {
    if !constraints.is_feasible(start) {
        return Err(CoreError::NoFeasibleChoice {
            reason: "the starting order violates the feasibility constraints".to_string(),
        });
    }
    let chain = chain_find_constrained(start, &MissRatioLabeling, config, constraints.predicate());
    let result = OptimizationResult::of(chain.last().clone());
    Ok((result, chain))
}

/// Convenience: improve the canonical cyclic order (identity) under the
/// constraints.
///
/// # Errors
///
/// See [`improve_greedy`]: the identity is feasible exactly when every
/// constraint `a before b` has `a < b` (constraints aligned with the first
/// traversal's order); otherwise this returns
/// [`CoreError::NoFeasibleChoice`].
pub fn optimize_from_identity(
    constraints: &PrecedenceDag,
    config: ChainFindConfig,
) -> Result<(OptimizationResult, Chain)> {
    improve_greedy(
        &Permutation::identity(constraints.degree()),
        constraints,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::inversions::max_inversions;

    #[test]
    fn unconstrained_optimum_is_sawtooth() {
        let dag = PrecedenceDag::unconstrained(5);
        let exact = best_feasible_exhaustive(&dag).unwrap();
        assert!(exact.sigma.is_reverse());
        assert_eq!(exact.inversions, max_inversions(5));
        assert_eq!(exact.hit_vector, vec![1, 2, 3, 4, 5]);

        let (greedy, chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
        assert_eq!(greedy.sigma, exact.sigma);
        assert!(chain.is_saturated());
    }

    #[test]
    fn constrained_optimum_respects_dag() {
        let mut dag = PrecedenceDag::unconstrained(5);
        dag.require_before(0, 4).unwrap();
        dag.require_before(1, 3).unwrap();
        let exact = best_feasible_exhaustive(&dag).unwrap();
        assert!(dag.is_feasible(&exact.sigma));
        assert!(exact.inversions < max_inversions(5));

        let (greedy, _chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
        assert!(dag.is_feasible(&greedy.sigma));
        // Greedy cannot beat the exact optimum.
        assert!(greedy.inversions <= exact.inversions);
        // And must improve on the identity.
        assert!(greedy.inversions > 0);
    }

    #[test]
    fn greedy_matches_exact_with_a_single_constraint() {
        let mut dag = PrecedenceDag::unconstrained(4);
        dag.require_before(0, 1).unwrap();
        let exact = best_feasible_exhaustive(&dag).unwrap();
        let (greedy, _) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
        assert_eq!(exact.inversions, 5);
        assert_eq!(greedy.inversions, exact.inversions);
    }

    #[test]
    fn infeasible_start_is_rejected() {
        let mut dag = PrecedenceDag::unconstrained(4);
        dag.require_before(0, 1).unwrap();
        let bad_start = Permutation::reverse(4); // places 1 before 0
        let err = improve_greedy(&bad_start, &dag, ChainFindConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::NoFeasibleChoice { .. }));
    }

    #[test]
    fn fully_chained_constraints_leave_identity() {
        let mut dag = PrecedenceDag::unconstrained(4);
        dag.require_chain(&[0, 1, 2, 3]).unwrap();
        let exact = best_feasible_exhaustive(&dag).unwrap();
        assert!(exact.sigma.is_identity());
        let (greedy, chain) = optimize_from_identity(&dag, ChainFindConfig::default()).unwrap();
        assert!(greedy.sigma.is_identity());
        assert!(chain.is_empty());
    }
}
