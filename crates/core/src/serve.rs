//! The persisted tenant table of the `symloc serve` daemon.
//!
//! A [`ServeState`] is a bounded, name-sorted table of tenants, each
//! owning one unsharded [`ShardsEstimator`] fed by that tenant's live
//! access stream. The table is a first-class [`JobKind::ServeState`]
//! checkpoint document: it round-trips through the same
//! `write_checkpoint_header` / `parse_checkpoint` codec as the batch
//! pipelines, saves atomically via [`jsonio::save_atomic`], and resumes
//! through [`job::resume_or_new_with`] — so killing the daemon mid-stream
//! and restarting it restores every tenant byte-identically (the same
//! guarantee the five batch kinds pin with proptests).
//!
//! Unlike a batch checkpoint there is no planned end: a serve checkpoint
//! is a snapshot of a daemon, and `symloc job status` reports every
//! persisted tenant as complete.
//!
//! Tenant capacity is a hard cap with *loud* rejection: once
//! `max_tenants` keyspaces exist, a `HELLO` for a new name errors (and
//! bumps the `serve.rejected` counter) instead of silently evicting or
//! aliasing — SHARDS makes each tenant O(budget), so the operator picks
//! the fleet size explicitly.

use std::fmt::Write as _;
use std::path::Path;

use crate::job::{self, JobKind};
use crate::jsonio::{self, JsonValue};
use crate::obs::MetricsRegistry;
use crate::partition::{self, Bounds, PartitionSolution, TenantCurve};
use crate::tracesweep::{log_spaced_sizes, MrcPoint, ShardsEstimator, SHARDS_MODULUS};

/// Point count of the MRC grid the `PARTITION` command evaluates every
/// tenant's curve over. One shared constant so the daemon and the offline
/// `symloc partition --checkpoint` path answer from identical curves —
/// the CI smoke test diffs the two for byte equality.
pub const PARTITION_MRC_POINTS: usize = 32;

/// Longest accepted tenant name, in bytes. Names travel in line-framed
/// protocol messages and checkpoint JSON; the bound keeps both readable.
pub const MAX_TENANT_NAME: usize = 64;

/// One tenant: a client-declared keyspace with its own estimator.
#[derive(Debug, Clone)]
pub struct TenantState {
    name: String,
    accesses: u64,
    estimator: ShardsEstimator,
}

impl TenantState {
    /// The tenant's client-declared keyspace name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accesses streamed into this tenant (raw, before SHARDS sampling).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The tenant's estimator, for read-only queries.
    #[must_use]
    pub fn estimator(&self) -> &ShardsEstimator {
        &self.estimator
    }

    /// The tenant's metrics registry: the `serve.accesses` counter plus
    /// the estimator's `estimator.*` gauges.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        registry.add("serve.accesses", self.accesses);
        self.estimator.record_gauges(&mut registry);
        registry
    }
}

/// Validates a client-declared tenant name: nonempty, at most
/// [`MAX_TENANT_NAME`] bytes, ASCII graphic characters only (no spaces or
/// control bytes — names must survive line-framed messages unquoted).
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name must be nonempty".to_string());
    }
    if name.len() > MAX_TENANT_NAME {
        return Err(format!(
            "tenant name exceeds {MAX_TENANT_NAME} bytes ({} given)",
            name.len()
        ));
    }
    match name.chars().find(|c| !c.is_ascii_graphic()) {
        Some(c) => Err(format!(
            "tenant name may only use printable ASCII without spaces (found {c:?})"
        )),
        None => Ok(()),
    }
}

/// The daemon's full persisted state: the tenant table plus the counters
/// that describe its lifetime (rejections, checkpoint saves).
#[derive(Debug, Clone)]
pub struct ServeState {
    budget: usize,
    max_tenants: usize,
    rejected: u64,
    saves: u64,
    partitions: u64,
    /// `(budget, predicted aggregate miss ratio)` of the most recent
    /// `PARTITION` answer, surfaced as `partition.last_*` gauges.
    last_partition: Option<(u64, f64)>,
    /// Name-sorted so lookup is a binary search and serialization is
    /// canonical (tenant order never depends on arrival order).
    tenants: Vec<TenantState>,
}

impl ServeState {
    /// An empty tenant table. `budget` is the per-tenant SHARDS `s_max`;
    /// `max_tenants` caps the table. Both must be positive.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn new(budget: usize, max_tenants: usize) -> Result<ServeState, String> {
        if budget == 0 {
            return Err("budget must be positive".to_string());
        }
        if max_tenants == 0 {
            return Err("max_tenants must be positive".to_string());
        }
        Ok(ServeState {
            budget,
            max_tenants,
            rejected: 0,
            saves: 0,
            partitions: 0,
            last_partition: None,
            tenants: Vec::new(),
        })
    }

    /// The plan fingerprint: the knobs a checkpoint must match to resume.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "serve;budget={};max_tenants={}",
            self.budget, self.max_tenants
        )
    }

    /// Per-tenant SHARDS budget (`s_max`).
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Hard cap on the tenant table.
    #[must_use]
    pub fn max_tenants(&self) -> usize {
        self.max_tenants
    }

    /// `HELLO`s rejected because the table was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Checkpoint saves recorded via [`ServeState::note_save`].
    #[must_use]
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Number of live tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenants, name-sorted.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantState> {
        self.tenants.iter()
    }

    /// Total accesses streamed across all tenants.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.tenants.iter().map(|t| t.accesses).sum()
    }

    fn position(&self, name: &str) -> Result<usize, usize> {
        self.tenants.binary_search_by(|t| t.name.as_str().cmp(name))
    }

    /// The tenant named `name`, if it exists.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantState> {
        self.position(name).ok().map(|i| &self.tenants[i])
    }

    fn require(&self, name: &str) -> Result<&TenantState, String> {
        self.tenant(name)
            .ok_or_else(|| format!("unknown tenant {name:?} (declare it with HELLO first)"))
    }

    /// Finds or creates the tenant `name`, returning its index for
    /// subsequent [`ServeState::record_block`] calls. Creation past the
    /// `max_tenants` cap is the loud-rejection path: the request errs, the
    /// `serve.rejected` counter bumps, and existing tenants are untouched.
    ///
    /// # Errors
    ///
    /// Returns the validation or capacity error.
    pub fn ensure_tenant(&mut self, name: &str) -> Result<usize, String> {
        validate_tenant_name(name)?;
        match self.position(name) {
            Ok(i) => Ok(i),
            Err(i) => {
                if self.tenants.len() >= self.max_tenants {
                    self.rejected += 1;
                    return Err(format!(
                        "tenant table full ({} of {} keyspaces in use); raise --max-tenants \
                         or retire a tenant",
                        self.tenants.len(),
                        self.max_tenants
                    ));
                }
                self.tenants.insert(
                    i,
                    TenantState {
                        name: name.to_string(),
                        accesses: 0,
                        estimator: ShardsEstimator::new(self.budget),
                    },
                );
                Ok(i)
            }
        }
    }

    /// Streams a block of accesses into the tenant at `index` (as returned
    /// by [`ServeState::ensure_tenant`]; tenant insertion invalidates
    /// earlier indices, so re-resolve after any `HELLO`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn record_block(&mut self, index: usize, block: &[u64]) {
        let tenant = &mut self.tenants[index];
        tenant.accesses += block.len() as u64;
        tenant.estimator.record_all(block.iter().copied());
    }

    /// Marks one checkpoint save (mirrored as the `serve.saves` counter).
    pub fn note_save(&mut self) {
        self.saves += 1;
    }

    /// `PARTITION` answers recorded via [`ServeState::note_partition`].
    #[must_use]
    pub fn partitions(&self) -> u64 {
        self.partitions
    }

    /// `(budget, predicted aggregate miss ratio)` of the most recent
    /// recorded `PARTITION` answer.
    #[must_use]
    pub fn last_partition(&self) -> Option<(u64, f64)> {
        self.last_partition
    }

    /// Records one answered `PARTITION` request: bumps the persisted
    /// `partition.requests` counter and pins the `partition.last_*`
    /// gauges.
    pub fn note_partition(&mut self, budget: u64, aggregate_miss_ratio: f64) {
        self.partitions += 1;
        self.last_partition = Some((budget, aggregate_miss_ratio));
    }

    /// The live tenant table as partitioner inputs: one [`TenantCurve`]
    /// per tenant (name order), weighted by raw accesses, each curve
    /// evaluated over its [`PARTITION_MRC_POINTS`]-point grid. Derived
    /// purely from persisted state, so a restarted daemon produces the
    /// identical curve set.
    ///
    /// # Errors
    ///
    /// Returns the curve-validation error (estimator curves satisfy the
    /// invariants by construction, so an error here means corruption).
    pub fn tenant_curves(&self) -> Result<Vec<TenantCurve>, String> {
        self.tenants
            .iter()
            .map(|tenant| {
                let points = self.mrc(&tenant.name, PARTITION_MRC_POINTS)?;
                #[allow(clippy::cast_precision_loss)]
                TenantCurve::from_points(&tenant.name, tenant.accesses as f64, &points)
            })
            .collect()
    }

    /// Answers `PARTITION <budget>` from the live tenant table: splits
    /// `budget` cache blocks across every tenant to minimize the
    /// traffic-weighted aggregate miss ratio (each tenant evaluated on
    /// the convex minorant of its estimated curve, no floors or caps).
    ///
    /// Read-only: callers record the answer with
    /// [`ServeState::note_partition`] so query handling stays borrow-
    /// friendly.
    ///
    /// # Errors
    ///
    /// Returns the solver's named error for an empty tenant table or a
    /// degenerate budget.
    pub fn partition(&self, budget: u64) -> Result<PartitionSolution, String> {
        let curves = self.tenant_curves()?;
        let bounds = vec![Bounds::default(); curves.len()];
        partition::solve(&curves, budget, &bounds)
    }

    /// The tenant's curve as a one-line JSON document for the `MRCJ`
    /// wire answer: `{"tenant": ..., "accesses": N, "wss": W, "mrc":
    /// [[size, ratio], ...]}`. Floats use shortest round-trip
    /// formatting and the grid is derived from persisted state, so a
    /// restarted daemon answers byte-identically.
    ///
    /// # Errors
    ///
    /// Returns an unknown-tenant error.
    pub fn mrcj_line(&self, name: &str, count: usize) -> Result<String, String> {
        let tenant = self.require(name)?;
        let points = self.mrc(name, count)?;
        let mut out = format!(
            "{{\"tenant\": \"{}\", \"accesses\": {}, \"wss\": {}, \"mrc\": [",
            jsonio::escape(name),
            tenant.accesses,
            tenant.estimator.estimated_footprint(),
        );
        for (i, p) in points.iter().enumerate() {
            let comma = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{comma}[{}, {}]", p.cache_size, p.miss_ratio);
        }
        out.push_str("]}");
        Ok(out)
    }

    /// The evaluation grid for a tenant's MRC: `count` log-spaced cache
    /// sizes covering the largest reuse distance the tenant has seen.
    /// Derived purely from persisted state, so a restarted daemon answers
    /// over the identical grid.
    ///
    /// # Errors
    ///
    /// Returns an unknown-tenant error.
    pub fn mrc_sizes(&self, name: &str, count: usize) -> Result<Vec<usize>, String> {
        let tenant = self.require(name)?;
        let max = tenant.estimator.histogram().max_distance().unwrap_or(1);
        Ok(log_spaced_sizes(max, count))
    }

    /// The tenant's estimated miss-ratio curve over [`ServeState::mrc_sizes`].
    ///
    /// # Errors
    ///
    /// Returns an unknown-tenant error.
    pub fn mrc(&self, name: &str, count: usize) -> Result<Vec<MrcPoint>, String> {
        let sizes = self.mrc_sizes(name, count)?;
        Ok(self.require(name)?.estimator.mrc_points(&sizes))
    }

    /// The tenant's estimated working-set size (distinct addresses,
    /// rescaled from the SHARDS sample).
    ///
    /// # Errors
    ///
    /// Returns an unknown-tenant error.
    pub fn wss(&self, name: &str) -> Result<f64, String> {
        Ok(self.require(name)?.estimator.estimated_footprint())
    }

    /// The metrics registry for one tenant.
    ///
    /// # Errors
    ///
    /// Returns an unknown-tenant error.
    pub fn tenant_metrics(&self, name: &str) -> Result<MetricsRegistry, String> {
        Ok(self.require(name)?.metrics())
    }

    /// The fleet-level rollup: every tenant registry [`MetricsRegistry::merge`]d
    /// (counters add; `estimator.*` gauges are last-write-wins in tenant
    /// name order), plus the daemon-wide `serve.tenants` gauge and the
    /// `serve.rejected` / `serve.saves` counters.
    #[must_use]
    pub fn fleet_metrics(&self) -> MetricsRegistry {
        let mut fleet = MetricsRegistry::new();
        for tenant in &self.tenants {
            fleet.merge(&tenant.metrics());
        }
        #[allow(clippy::cast_precision_loss)]
        fleet.set_gauge("serve.tenants", self.tenants.len() as f64);
        fleet.add("serve.rejected", self.rejected);
        fleet.add("serve.saves", self.saves);
        fleet.add("partition.requests", self.partitions);
        if let Some((budget, aggregate)) = self.last_partition {
            #[allow(clippy::cast_precision_loss)]
            fleet.set_gauge("partition.last_budget", budget as f64);
            fleet.set_gauge("partition.last_aggregate_miss_ratio", aggregate);
        }
        fleet
    }

    /// Serializes the full tenant table as a [`JobKind::ServeState`]
    /// checkpoint document. Deterministic: tenants are name-sorted and
    /// floats use Rust's shortest round-trip formatting, so
    /// `from_json(to_json()).to_json()` is byte-identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        job::write_checkpoint_header(&mut out, JobKind::ServeState, &self.fingerprint());
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"max_tenants\": {},", self.max_tenants);
        let _ = writeln!(out, "  \"rejected\": {},", self.rejected);
        let _ = writeln!(out, "  \"saves\": {},", self.saves);
        let _ = writeln!(out, "  \"partitions\": {},", self.partitions);
        if let Some((budget, aggregate)) = self.last_partition {
            let _ = writeln!(out, "  \"last_partition\": [{budget}, {aggregate}],");
        }
        out.push_str("  \"tenants\": [\n");
        for (i, tenant) in self.tenants.iter().enumerate() {
            let est = &tenant.estimator;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"accesses\": {}, \"threshold\": {}, \"raw\": {}, \
                 \"sampled\": {}, \"evictions\": {}, \"cold\": {}, \"histogram\": [",
                jsonio::escape(&tenant.name),
                tenant.accesses,
                est.threshold(),
                est.raw_accesses(),
                est.sampled_accesses(),
                est.evictions(),
                est.histogram().cold_weight(),
            );
            for (j, (d, w)) in est.histogram().iter().enumerate() {
                let comma = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{comma}[{d}, {w}]");
            }
            out.push_str("], \"tracked\": [");
            for (j, addr) in est.tracked_in_order().iter().enumerate() {
                let comma = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{comma}{addr}");
            }
            let sep = if i + 1 < self.tenants.len() { "," } else { "" };
            let _ = writeln!(out, "]}}{sep}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Rebuilds a tenant table from a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(text: &str) -> Result<ServeState, String> {
        let doc = job::parse_checkpoint(text, JobKind::ServeState)?;
        let budget = doc
            .get("budget")
            .and_then(JsonValue::as_usize)
            .ok_or("missing budget")?;
        let max_tenants = doc
            .get("max_tenants")
            .and_then(JsonValue::as_usize)
            .ok_or("missing max_tenants")?;
        let mut state = ServeState::new(budget, max_tenants)?;
        state.rejected = doc
            .get("rejected")
            .and_then(JsonValue::as_u64)
            .ok_or("missing rejected")?;
        state.saves = doc
            .get("saves")
            .and_then(JsonValue::as_u64)
            .ok_or("missing saves")?;
        // Both partition fields are absent from pre-partitioner
        // checkpoints; resuming one is fine (zero answers recorded).
        state.partitions = doc
            .get("partitions")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if let Some(pair) = doc.get("last_partition") {
            let pair = pair
                .as_array()
                .ok_or("last_partition is not a [budget, miss_ratio] pair")?;
            state.last_partition = match pair {
                [budget, aggregate] => Some((
                    budget.as_u64().ok_or("bad last_partition budget")?,
                    aggregate
                        .as_f64()
                        .filter(|m| m.is_finite() && (0.0..=1.0).contains(m))
                        .ok_or("bad last_partition miss ratio")?,
                )),
                _ => return Err("last_partition is not a [budget, miss_ratio] pair".to_string()),
            };
        }
        let entries = doc
            .get("tenants")
            .and_then(JsonValue::as_array)
            .ok_or("missing tenants")?;
        if entries.len() > max_tenants {
            return Err(format!(
                "{} tenants exceed max_tenants {max_tenants}",
                entries.len()
            ));
        }
        for entry in entries {
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("tenant missing name")?;
            validate_tenant_name(name)?;
            if let Some(last) = state.tenants.last() {
                if last.name.as_str() >= name {
                    return Err(format!(
                        "tenant {name:?} out of order after {:?} (table must be \
                         strictly name-sorted)",
                        last.name
                    ));
                }
            }
            let accesses = entry
                .get("accesses")
                .and_then(JsonValue::as_u64)
                .ok_or("tenant missing accesses")?;
            let threshold = entry
                .get("threshold")
                .and_then(JsonValue::as_u64)
                .ok_or("tenant missing threshold")?;
            if threshold == 0 || threshold > SHARDS_MODULUS {
                return Err(format!(
                    "tenant threshold {threshold} outside 1..={SHARDS_MODULUS}"
                ));
            }
            let raw = entry
                .get("raw")
                .and_then(JsonValue::as_u64)
                .ok_or("tenant missing raw")?;
            let sampled = entry
                .get("sampled")
                .and_then(JsonValue::as_u64)
                .ok_or("tenant missing sampled")?;
            let evictions = entry
                .get("evictions")
                .and_then(JsonValue::as_u64)
                .ok_or("tenant missing evictions")?;
            let cold = entry
                .get("cold")
                .and_then(JsonValue::as_f64)
                .ok_or("tenant missing cold")?;
            if !cold.is_finite() || cold < 0.0 {
                return Err(format!("tenant cold weight {cold} is not a finite count"));
            }
            let mut histogram = crate::tracesweep::WeightedHistogram::default();
            histogram.record_cold(cold);
            let bins = entry
                .get("histogram")
                .and_then(JsonValue::as_array)
                .ok_or("tenant missing histogram")?;
            for bin in bins {
                let pair = bin.as_array().ok_or("histogram entry is not a pair")?;
                let (d, w) = match pair {
                    [d, w] => (
                        d.as_usize().ok_or("bad histogram distance")?,
                        w.as_f64().ok_or("bad histogram weight")?,
                    ),
                    _ => return Err("histogram entry is not a pair".to_string()),
                };
                if d == 0 {
                    return Err("histogram distance 0 is not representable".to_string());
                }
                if !w.is_finite() || w < 0.0 {
                    return Err(format!("histogram weight {w} is not a finite count"));
                }
                histogram.record_finite(d, w);
            }
            let tracked_entries = entry
                .get("tracked")
                .and_then(JsonValue::as_array)
                .ok_or("tenant missing tracked")?;
            let mut tracked = Vec::with_capacity(tracked_entries.len());
            for addr in tracked_entries {
                tracked.push(addr.as_u64().ok_or("bad tracked address")?);
            }
            let estimator = ShardsEstimator::restore_for_shard(
                budget, threshold, 0, 1, raw, sampled, evictions, histogram, &tracked,
            )?;
            state.tenants.push(TenantState {
                name: name.to_string(),
                accesses,
                estimator,
            });
        }
        Ok(state)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        jsonio::save_atomic(path, &self.to_json())
    }

    /// Loads a checkpoint from `path`, or starts an empty table when the
    /// file does not exist or records different knobs. The returned flag
    /// says whether tenants were actually resumed.
    ///
    /// # Errors
    ///
    /// Returns the loud cross-kind error for a checkpoint of another
    /// registered kind, or the parameter-validation error.
    pub fn resume_or_new(
        path: &Path,
        budget: usize,
        max_tenants: usize,
    ) -> Result<(ServeState, bool), String> {
        let fresh = ServeState::new(budget, max_tenants)?;
        let fingerprint = fresh.fingerprint();
        job::resume_or_new_with(
            path,
            JobKind::ServeState,
            ServeState::from_json,
            |state| state.fingerprint() == fingerprint,
            ServeState::tenant_count,
            || fresh,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(budget: usize) -> ServeState {
        let mut state = ServeState::new(budget, 8).unwrap();
        let a = state.ensure_tenant("alpha").unwrap();
        state.record_block(a, &[1, 2, 3, 1, 2, 3, 7, 7]);
        let b = state.ensure_tenant("beta").unwrap();
        state.record_block(b, &[10, 20, 10, 30, 10]);
        state
    }

    #[test]
    fn tenants_stay_name_sorted_regardless_of_arrival() {
        let mut state = ServeState::new(64, 8).unwrap();
        for name in ["zeta", "alpha", "mid"] {
            state.ensure_tenant(name).unwrap();
        }
        let names: Vec<&str> = state.tenants().map(TenantState::name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn capacity_rejection_is_loud_and_counted() {
        let mut state = ServeState::new(64, 2).unwrap();
        state.ensure_tenant("a").unwrap();
        state.ensure_tenant("b").unwrap();
        let err = state.ensure_tenant("c").unwrap_err();
        assert!(err.contains("tenant table full"), "{err}");
        assert_eq!(state.rejected(), 1);
        // Existing tenants still resolve after a rejection.
        state.ensure_tenant("a").unwrap();
        assert_eq!(state.tenant_count(), 2);
    }

    #[test]
    fn tenant_names_are_validated() {
        let mut state = ServeState::new(64, 8).unwrap();
        assert!(state.ensure_tenant("").is_err());
        assert!(state.ensure_tenant("has space").is_err());
        assert!(state.ensure_tenant("tab\there").is_err());
        assert!(state
            .ensure_tenant(&"x".repeat(MAX_TENANT_NAME + 1))
            .is_err());
        assert_eq!(state.tenant_count(), 0);
        // Rejections for invalid names are validation errors, not capacity
        // rejections.
        assert_eq!(state.rejected(), 0);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let state = filled(4);
        let text = state.to_json();
        let back = ServeState::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn round_trip_preserves_queries() {
        let state = filled(4);
        let back = ServeState::from_json(&state.to_json()).unwrap();
        assert_eq!(
            back.mrc("alpha", 6).unwrap(),
            state.mrc("alpha", 6).unwrap()
        );
        assert_eq!(back.wss("beta").unwrap(), state.wss("beta").unwrap());
        assert_eq!(
            back.fleet_metrics().to_json(),
            state.fleet_metrics().to_json()
        );
    }

    #[test]
    fn queries_reject_unknown_tenants() {
        let state = filled(4);
        for err in [
            state.mrc("ghost", 4).unwrap_err(),
            state.wss("ghost").unwrap_err(),
            state.tenant_metrics("ghost").unwrap_err(),
        ] {
            assert!(err.contains("unknown tenant"), "{err}");
        }
    }

    #[test]
    fn fleet_metrics_roll_up_counters() {
        let mut state = filled(4);
        state.note_save();
        let fleet = state.fleet_metrics();
        assert_eq!(fleet.counter("serve.accesses"), Some(13));
        assert_eq!(fleet.counter("serve.saves"), Some(1));
        assert_eq!(fleet.counter("serve.rejected"), Some(0));
        assert_eq!(fleet.gauge("serve.tenants"), Some(2.0));
    }

    #[test]
    fn from_json_rejects_structural_damage() {
        let state = filled(4);
        let good = state.to_json();
        let unsorted = good.replace("\"alpha\"", "\"zz\"");
        assert!(ServeState::from_json(&unsorted)
            .unwrap_err()
            .contains("name-sorted"));
        let overfull = good.replace("\"max_tenants\": 8", "\"max_tenants\": 1");
        assert!(ServeState::from_json(&overfull)
            .unwrap_err()
            .contains("exceed max_tenants"));
        let idx = good.find("\"threshold\": ").unwrap();
        let end = idx + good[idx..].find(',').unwrap();
        let bad_threshold = format!("{}\"threshold\": 0{}", &good[..idx], &good[end..]);
        assert!(ServeState::from_json(&bad_threshold)
            .unwrap_err()
            .contains("threshold"));
    }

    #[test]
    fn partition_answers_from_the_live_table() {
        let mut state = ServeState::new(64, 8).unwrap();
        // "hot" re-touches a tiny set constantly; "cold" scans.
        let hot = state.ensure_tenant("hot").unwrap();
        let hot_block: Vec<u64> = (0..400).map(|i| i % 4).collect();
        state.record_block(hot, &hot_block);
        let cold = state.ensure_tenant("cold").unwrap();
        let cold_block: Vec<u64> = (0..400).collect();
        state.record_block(cold, &cold_block);

        let solution = state.partition(8).unwrap();
        assert_eq!(solution.allocations.len(), 2);
        // Name order: cold then hot. The hot tenant's working set fits
        // in the budget and its curve is steep, so it gets cache.
        assert_eq!(solution.allocations[1].name, "hot");
        assert!(solution.allocations[1].size >= 4);
        assert!(solution.allocated <= 8);
        assert!(solution.predicted_aggregate_miss_ratio < 1.0);

        // Recording the answer shows up in the fleet rollup and persists.
        state.note_partition(8, solution.predicted_aggregate_miss_ratio);
        let fleet = state.fleet_metrics();
        assert_eq!(fleet.counter("partition.requests"), Some(1));
        assert_eq!(fleet.gauge("partition.last_budget"), Some(8.0));
        assert_eq!(
            fleet.gauge("partition.last_aggregate_miss_ratio"),
            Some(solution.predicted_aggregate_miss_ratio)
        );
        let back = ServeState::from_json(&state.to_json()).unwrap();
        assert_eq!(back.partitions(), 1);
        assert_eq!(
            back.last_partition(),
            Some((8, solution.predicted_aggregate_miss_ratio))
        );
        assert_eq!(back.to_json(), state.to_json());
        // And the restored table answers byte-identically.
        assert_eq!(
            back.partition(8).unwrap().render_compact(),
            solution.render_compact()
        );
    }

    #[test]
    fn partition_rejects_empty_table_and_bad_budgets() {
        let empty = ServeState::new(64, 8).unwrap();
        let err = empty.partition(128).unwrap_err();
        assert!(err.contains("no tenants"), "{err}");
        let state = filled(4);
        let zero = state.partition(0).unwrap_err();
        assert!(zero.contains("must be positive"), "{zero}");
        let absurd = state.partition(u64::MAX).unwrap_err();
        assert!(absurd.contains("exceeds the supported maximum"), "{absurd}");
    }

    #[test]
    fn mrcj_line_is_one_json_line_and_restart_stable() {
        let state = filled(4);
        let line = state.mrcj_line("alpha", 6).unwrap();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"tenant\": \"alpha\", \"accesses\": 8, "));
        assert!(line.contains("\"mrc\": [["), "{line}");
        let doc = jsonio::parse(&line).unwrap();
        assert_eq!(
            doc.get("accesses").and_then(JsonValue::as_u64),
            Some(state.tenant("alpha").unwrap().accesses())
        );
        assert!(doc.get("mrc").and_then(JsonValue::as_array).is_some());
        let back = ServeState::from_json(&state.to_json()).unwrap();
        assert_eq!(back.mrcj_line("alpha", 6).unwrap(), line);
        let ghost = state.mrcj_line("ghost", 6).unwrap_err();
        assert!(ghost.contains("unknown tenant"), "{ghost}");
    }

    #[test]
    fn pre_partitioner_checkpoints_still_resume() {
        let state = filled(4);
        // Simulate a checkpoint written before the partitioner existed.
        let old = state.to_json().replace("  \"partitions\": 0,\n", "");
        let back = ServeState::from_json(&old).unwrap();
        assert_eq!(back.partitions(), 0);
        assert_eq!(back.last_partition(), None);
        assert_eq!(back.to_json(), state.to_json());
    }

    #[test]
    fn resume_or_new_restores_matching_checkpoints() {
        let dir = std::env::temp_dir().join(format!(
            "symloc-serve-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.ckpt.json");
        let state = filled(4);
        state.save(&path).unwrap();
        let (resumed, was_resumed) = ServeState::resume_or_new(&path, 4, 8).unwrap();
        assert!(was_resumed);
        assert_eq!(resumed.to_json(), state.to_json());
        // Different knobs: fresh table, stale file left on disk.
        let (fresh, was_resumed) = ServeState::resume_or_new(&path, 4, 16).unwrap();
        assert!(!was_resumed);
        assert_eq!(fresh.tenant_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
