//! Checking the *good labeling* and *EL-labeling* properties
//! (Definitions 21 and 22 of the paper, and its open Problem 3).
//!
//! A labeling is **good** when the edges leaving any node carry pairwise
//! distinct labels (so a greedy maximum is unique). It is an **EL-labeling**
//! when, for every interval `[x, y]` of the Bruhat order, exactly one
//! saturated chain from `x` to `y` has weakly increasing labels, and that
//! chain is lexicographically minimal among all saturated chains of the
//! interval. Problem 3 asks whether an EL-labeling can depend *precisely on
//! locality*; these checkers make the question executable on small degrees.

use crate::labeling::{EdgeLabeling, Label};
use symloc_perm::bruhat::{bruhat_leq, upper_covers};
use symloc_perm::inversions::inversions;
use symloc_perm::iter::LexIter;
use symloc_perm::Permutation;

/// A witness that a labeling is not good: two covers of `node` share `label`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodLabelingViolation {
    /// The node whose out-edges collide.
    pub node: Permutation,
    /// The two covering permutations with identical labels.
    pub colliding: (Permutation, Permutation),
    /// The shared label.
    pub label: Label,
}

/// Checks the good-labeling property over all of `S_m`.
///
/// Returns the first violation found, or `None` if the labeling is good.
///
/// # Panics
///
/// Panics if `m > 8` (the check enumerates all `m!` nodes).
#[must_use]
pub fn good_labeling_violation<L: EdgeLabeling>(
    m: usize,
    labeling: &L,
) -> Option<GoodLabelingViolation> {
    assert!(m <= 8, "good_labeling_violation: degree {m} too large");
    for node in LexIter::new(m) {
        let covers = upper_covers(&node);
        let labels: Vec<(Permutation, Label)> = covers
            .into_iter()
            .map(|c| {
                let label = labeling.label(&node, &c.perm, c.transposition);
                (c.perm, label)
            })
            .collect();
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                if labels[i].1 == labels[j].1 {
                    return Some(GoodLabelingViolation {
                        node,
                        colliding: (labels[i].0.clone(), labels[j].0.clone()),
                        label: labels[i].1.clone(),
                    });
                }
            }
        }
    }
    None
}

/// One saturated chain of a Bruhat interval together with its edge labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledChain {
    /// The permutations of the chain, bottom first.
    pub nodes: Vec<Permutation>,
    /// The labels of its edges, in order.
    pub labels: Vec<Label>,
}

impl LabeledChain {
    /// True if the label sequence is weakly increasing.
    #[must_use]
    pub fn is_increasing(&self) -> bool {
        self.labels.windows(2).all(|w| w[0] <= w[1])
    }
}

/// Enumerates every saturated chain of the Bruhat interval `[x, y]`, labeling
/// its edges with `labeling`. Returns an empty vector when `x` is not `≤_B y`
/// or the degrees differ.
///
/// Exponential in the interval length; intended for small intervals in tests
/// and the Problem-3 experiment.
#[must_use]
pub fn saturated_chains<L: EdgeLabeling>(
    x: &Permutation,
    y: &Permutation,
    labeling: &L,
) -> Vec<LabeledChain> {
    if x.degree() != y.degree() || !bruhat_leq(x, y) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut nodes = vec![x.clone()];
    let mut labels = Vec::new();
    fn rec<L: EdgeLabeling>(
        current: &Permutation,
        y: &Permutation,
        labeling: &L,
        nodes: &mut Vec<Permutation>,
        labels: &mut Vec<Label>,
        out: &mut Vec<LabeledChain>,
    ) {
        if current == y {
            out.push(LabeledChain {
                nodes: nodes.clone(),
                labels: labels.clone(),
            });
            return;
        }
        for cover in upper_covers(current) {
            if !bruhat_leq(&cover.perm, y) {
                continue;
            }
            let label = labeling.label(current, &cover.perm, cover.transposition);
            nodes.push(cover.perm.clone());
            labels.push(label);
            rec(&cover.perm, y, labeling, nodes, labels, out);
            nodes.pop();
            labels.pop();
        }
    }
    rec(x, y, labeling, &mut nodes, &mut labels, &mut out);
    out
}

/// Result of checking the EL-labeling property on a single interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElIntervalCheck {
    /// Number of saturated chains of the interval.
    pub chains: usize,
    /// Number of chains with weakly increasing labels.
    pub increasing_chains: usize,
    /// True when exactly one chain is increasing and it is lexicographically
    /// minimal among all chains of the interval.
    pub satisfies_el: bool,
}

/// Checks the EL-labeling conditions (Definition 21) on the interval
/// `[x, y]`. Returns `None` when the interval is empty (`x` not `≤_B y`).
#[must_use]
pub fn el_interval_check<L: EdgeLabeling>(
    x: &Permutation,
    y: &Permutation,
    labeling: &L,
) -> Option<ElIntervalCheck> {
    let chains = saturated_chains(x, y, labeling);
    if chains.is_empty() {
        return None;
    }
    let increasing: Vec<&LabeledChain> = chains.iter().filter(|c| c.is_increasing()).collect();
    let satisfies_el = if increasing.len() == 1 {
        let candidate = &increasing[0].labels;
        chains.iter().all(|c| candidate <= &c.labels)
    } else {
        false
    };
    Some(ElIntervalCheck {
        chains: chains.len(),
        increasing_chains: increasing.len(),
        satisfies_el,
    })
}

/// Checks the EL conditions on every interval of `S_m` with length difference
/// at least 2 (shorter intervals are trivially fine) and returns
/// `(intervals_checked, intervals_satisfying_el)`.
///
/// # Panics
///
/// Panics if `m > 5` — the number of intervals and chains explodes quickly.
#[must_use]
pub fn el_census<L: EdgeLabeling>(m: usize, labeling: &L) -> (usize, usize) {
    assert!(m <= 5, "el_census: degree {m} too large");
    let all: Vec<Permutation> = LexIter::new(m).collect();
    let mut checked = 0usize;
    let mut satisfied = 0usize;
    for x in &all {
        for y in &all {
            if inversions(y) < inversions(x) + 2 || !bruhat_leq(x, y) {
                continue;
            }
            if let Some(check) = el_interval_check(x, y, labeling) {
                checked += 1;
                if check.satisfies_el {
                    satisfied += 1;
                }
            }
        }
    }
    (checked, satisfied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{
        GeneratorTieBreakLabeling, InversionLabeling, MissRatioLabeling, TimescaleLabeling,
    };
    use symloc_perm::coxeter::longest_length;

    #[test]
    fn miss_ratio_labeling_is_not_good() {
        // The covers of the identity all share the same hit vector.
        let violation = good_labeling_violation(4, &MissRatioLabeling).expect("must collide");
        assert!(violation.node.is_identity());
        assert_eq!(violation.label[0], 0);
        assert_ne!(violation.colliding.0, violation.colliding.1);
    }

    #[test]
    fn degenerate_labeling_is_not_good_either() {
        assert!(good_labeling_violation(4, &InversionLabeling).is_some());
        assert!(good_labeling_violation(4, &TimescaleLabeling).is_some());
    }

    #[test]
    fn generator_tiebreak_labeling_is_good() {
        for m in 2..=5usize {
            assert!(
                good_labeling_violation(m, &GeneratorTieBreakLabeling::new(MissRatioLabeling))
                    .is_none(),
                "m={m}"
            );
        }
    }

    #[test]
    fn saturated_chains_of_full_interval() {
        // Number of saturated chains from e to w0 in the strong Bruhat order
        // of S_3 is 4 (each of the two length-1 elements covers both length-2
        // elements).
        let e = Permutation::identity(3);
        let w0 = Permutation::reverse(3);
        let chains = saturated_chains(&e, &w0, &MissRatioLabeling);
        assert_eq!(chains.len(), 4);
        for chain in &chains {
            assert_eq!(chain.nodes.len(), longest_length(3) + 1);
            assert_eq!(chain.labels.len(), longest_length(3));
            assert_eq!(chain.nodes.first().unwrap(), &e);
            assert_eq!(chain.nodes.last().unwrap(), &w0);
        }
    }

    #[test]
    fn saturated_chains_handle_empty_and_trivial_intervals() {
        let e = Permutation::identity(3);
        let s0 = e.mul_adjacent_right(0).unwrap();
        // Reversed interval is empty.
        assert!(saturated_chains(&s0, &e, &MissRatioLabeling).is_empty());
        // Degree mismatch is empty.
        assert!(saturated_chains(&e, &Permutation::reverse(4), &MissRatioLabeling).is_empty());
        // Single-node interval has exactly one (empty) chain.
        let chains = saturated_chains(&e, &e, &MissRatioLabeling);
        assert_eq!(chains.len(), 1);
        assert!(chains[0].labels.is_empty());
        assert!(chains[0].is_increasing());
    }

    #[test]
    fn el_check_on_small_intervals() {
        let e = Permutation::identity(3);
        let w0 = Permutation::reverse(3);
        let check = el_interval_check(&e, &w0, &GeneratorTieBreakLabeling::new(MissRatioLabeling))
            .expect("non-empty interval");
        assert_eq!(check.chains, 4);
        assert!(check.increasing_chains >= 1);
        // Reversed interval yields None.
        assert!(el_interval_check(&w0, &e, &MissRatioLabeling).is_none());
    }

    #[test]
    fn el_census_quantifies_problem3() {
        // None of the locality-only labelings satisfies EL on every interval
        // of S_3/S_4 — the executable form of Problem 3 being open.
        for m in 3..=4usize {
            let (checked, ok_miss) = el_census(m, &MissRatioLabeling);
            assert!(checked > 0);
            assert!(ok_miss < checked, "λ_e should fail EL somewhere (m={m})");
            let (_, ok_broken) = el_census(m, &GeneratorTieBreakLabeling::new(MissRatioLabeling));
            // The tie-broken labeling is good, hence at least as many intervals
            // satisfy the EL conditions.
            assert!(ok_broken >= ok_miss);
        }
    }
}
