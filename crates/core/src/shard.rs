//! Sharded, checkpointable execution of exhaustive and sampled sweeps.
//!
//! An exhaustive `m = 12` sweep walks 479 001 600 permutations — long
//! enough that a interrupted run (preempted CI job, killed laptop session)
//! should not start over. [`ShardedSweep`] splits the rank space `0 .. m!`
//! into contiguous shards; [`SampledSweep`] shards the *level space* of a
//! weighted sampled sweep. Both are [`crate::job::Job`] implementations:
//! the whole execution lifecycle — parallel unit scheduling, per-batch
//! atomic checkpoints, resume — lives in [`crate::job::JobRunner`], and
//! this module only contributes the unit plans, the per-unit execution and
//! the checkpoint bodies (hand-rolled JSON, as everywhere in this offline
//! workspace; parsed back by [`crate::jsonio`]).
//!
//! Because level aggregates are exact integer sums and rank shards are
//! disjoint, resuming from a checkpoint reproduces the uninterrupted
//! result *byte-identically* — a property the tests pin by interrupting a
//! sweep mid-way and comparing.
//!
//! ```
//! use symloc_core::engine::SweepSpec;
//! use symloc_core::shard::ShardedSweep;
//!
//! let mut sweep = ShardedSweep::new(SweepSpec::figure1(6), 4, 2);
//! sweep.run_pending(Some(2));               // ... process dies here ...
//! let json = sweep.to_json();               // (checkpoint on disk)
//! let mut resumed = ShardedSweep::from_json(&json, 2).unwrap();
//! resumed.run_pending(None);
//! let levels = resumed.merged_levels().expect("complete");
//! assert_eq!(levels.iter().map(|l| l.count).sum::<u64>(), 720);
//! ```

use crate::engine::{SweepEngine, SweepLevel, SweepSpec};
use crate::job::{self, Job, JobKind, JobRunner};
use crate::jsonio::JsonValue;
use crate::model::CacheModel;
use std::fmt::Write as _;
use std::path::Path;
use symloc_perm::rank::{factorial, RankRange};
use symloc_perm::statistics::Statistic;

/// Format tag embedded in every exhaustive-sweep checkpoint document.
#[cfg(test)]
const CHECKPOINT_KIND: &str = JobKind::ShardedSweep.kind_str();
/// Format tag embedded in every sampled-sweep checkpoint document.
#[cfg(test)]
const SAMPLED_CHECKPOINT_KIND: &str = JobKind::SampledSweep.kind_str();

/// A sharded exhaustive sweep with resumable progress.
///
/// See the [module docs](self) for the execution model. The struct owns
/// the spec, the shard plan (derived deterministically from the shard
/// count) and the completed shards' partial aggregates; the lifecycle is
/// [`crate::job::JobRunner`]'s.
#[derive(Debug, Clone)]
pub struct ShardedSweep {
    spec: SweepSpec,
    threads: usize,
    shards: Vec<RankRange>,
    partials: Vec<Option<Vec<SweepLevel>>>,
}

impl ShardedSweep {
    /// Plans a sweep of all of `S_m` split into `shard_count` contiguous
    /// rank-range shards.
    ///
    /// # Panics
    ///
    /// Panics if `spec.m > 12` or `shard_count == 0`.
    #[must_use]
    pub fn new(spec: SweepSpec, shard_count: usize, threads: usize) -> Self {
        assert!(shard_count > 0, "at least one shard is required");
        assert!(
            spec.m <= 12,
            "sharded sweep: degree {} too large for a factorial sweep",
            spec.m
        );
        let total = factorial(spec.m).expect("m <= 12");
        let count = shard_count.min(usize::try_from(total).unwrap_or(usize::MAX).max(1));
        let mut shards = Vec::with_capacity(count);
        let base = total / count as u128;
        let extra = total % count as u128;
        let mut start = 0u128;
        for i in 0..count as u128 {
            let size = base + u128::from(i < extra);
            shards.push(RankRange {
                start,
                end: start + size,
            });
            start += size;
        }
        let partials = vec![None; shards.len()];
        ShardedSweep {
            spec,
            threads: threads.max(1),
            shards,
            partials,
        }
    }

    /// The sweep's spec.
    #[must_use]
    pub fn spec(&self) -> SweepSpec {
        self.spec
    }

    /// Number of planned shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of completed shards.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.partials.iter().filter(|p| p.is_some()).count()
    }

    /// True when every shard has been processed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.partials.iter().all(Option::is_some)
    }

    /// Runs up to `limit` pending shards (all of them when `None`),
    /// returning how many were processed. Stopping early — or being killed
    /// between shards — loses at most the shard in flight.
    pub fn run_pending(&mut self, limit: Option<usize>) -> usize {
        JobRunner::run_pending(self, limit)
    }

    /// [`Self::run_pending`] with optional instrumentation — identical
    /// execution and results; the registry only observes.
    pub fn run_pending_metered(
        &mut self,
        limit: Option<usize>,
        metrics: Option<&mut crate::obs::MetricsRegistry>,
    ) -> usize {
        JobRunner::run_pending_metered(self, limit, metrics)
    }

    /// Runs pending shards — all of them, or up to `limit` — saving the
    /// checkpoint to `path` after *each* shard completes, so a kill
    /// mid-invocation loses at most the shard in flight (and a kill
    /// mid-save leaves the previous checkpoint intact: saves are atomic).
    /// `on_shard(completed, total)` fires after every saved shard, for
    /// progress reporting. Returns how many shards were processed; the
    /// checkpoint is (re)written even when nothing was pending, so a
    /// fresh plan always lands on disk.
    ///
    /// The whole loop is [`JobRunner::run_with_checkpoint`] — the single
    /// checkpointed-execution path every caller (CLI, experiment driver)
    /// goes through.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint(
        &mut self,
        path: &Path,
        limit: Option<usize>,
        on_shard: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        JobRunner::run_with_checkpoint(self, path, limit, on_shard)
    }

    /// [`ShardedSweep::run_with_checkpoint`] with the runner's metrics
    /// registry attached — identical execution, checkpoint bytes and
    /// results; the registry only observes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint_metered(
        &mut self,
        path: &Path,
        limit: Option<usize>,
        metrics: Option<&mut crate::obs::MetricsRegistry>,
        on_shard: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        JobRunner::run_with_checkpoint_metered(self, path, limit, metrics, on_shard)
    }

    /// The merged per-level aggregates, or `None` while shards are
    /// pending.
    #[must_use]
    pub fn merged_levels(&self) -> Option<Vec<SweepLevel>> {
        if !self.is_complete() {
            return None;
        }
        let mut merged: Vec<SweepLevel> = (0..self.spec.statistic.level_count(self.spec.m))
            .map(|l| SweepLevel::empty(l, self.spec.m))
            .collect();
        for partial in self.partials.iter().flatten() {
            for (acc, level) in merged.iter_mut().zip(partial) {
                acc.merge(level);
            }
        }
        Some(merged)
    }

    /// Serializes the sweep — spec, shard plan, completed partials — as a
    /// JSON checkpoint document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        job::write_checkpoint_header(&mut out, JobKind::ShardedSweep, &self.spec.fingerprint());
        let _ = writeln!(out, "  \"m\": {},", self.spec.m);
        let _ = writeln!(out, "  \"statistic\": \"{}\",", self.spec.statistic);
        let _ = writeln!(out, "  \"model\": \"{}\",", self.spec.model);
        let _ = writeln!(out, "  \"shard_count\": {},", self.shards.len());
        out.push_str("  \"shards\": [\n");
        for (i, (shard, partial)) in self.shards.iter().zip(&self.partials).enumerate() {
            let sep = if i + 1 < self.shards.len() { "," } else { "" };
            match partial {
                None => {
                    let _ = writeln!(
                        out,
                        "    {{\"start\": {}, \"end\": {}, \"done\": false}}{sep}",
                        shard.start, shard.end
                    );
                }
                Some(levels) => {
                    let _ = writeln!(
                        out,
                        "    {{\"start\": {}, \"end\": {}, \"done\": true, \"levels\": [",
                        shard.start, shard.end
                    );
                    for (j, level) in levels.iter().enumerate() {
                        let lsep = if j + 1 < levels.len() { "," } else { "" };
                        let _ = writeln!(
                            out,
                            "      {{\"level\": {}, \"count\": {}, \"hit_sums\": {}, \"hit_sq_sums\": {}}}{lsep}",
                            level.level,
                            level.count,
                            u64_array(&level.hit_sums),
                            u64_array(&level.hit_sq_sums),
                        );
                    }
                    let _ = writeln!(out, "    ]}}{sep}");
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Rebuilds a sweep from a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (wrong kind
    /// or version — cross-kind documents name both kinds — unknown
    /// statistic/model, malformed shards).
    pub fn from_json(text: &str, threads: usize) -> Result<ShardedSweep, String> {
        let doc = job::parse_checkpoint(text, JobKind::ShardedSweep)?;
        let m = doc
            .get("m")
            .and_then(JsonValue::as_usize)
            .ok_or("missing m")?;
        let statistic = doc
            .get("statistic")
            .and_then(JsonValue::as_str)
            .and_then(Statistic::parse)
            .ok_or("missing or unknown statistic")?;
        let model = doc
            .get("model")
            .and_then(JsonValue::as_str)
            .and_then(CacheModel::parse)
            .ok_or("missing or unknown model")?;
        let spec = SweepSpec {
            m,
            statistic,
            model,
        };
        let shard_entries = doc
            .get("shards")
            .and_then(JsonValue::as_array)
            .ok_or("missing shards")?;
        let declared = doc
            .get("shard_count")
            .and_then(JsonValue::as_usize)
            .ok_or("missing shard_count")?;
        if declared != shard_entries.len() || declared == 0 {
            return Err(format!(
                "shard_count {declared} does not match {} shard entries",
                shard_entries.len()
            ));
        }
        let mut sweep = ShardedSweep::new(spec, declared, threads);
        if sweep.shards.len() != shard_entries.len() {
            return Err("shard plan mismatch (degree too small for shard count?)".to_string());
        }
        for (i, entry) in shard_entries.iter().enumerate() {
            let start = entry
                .get("start")
                .and_then(JsonValue::as_u128)
                .ok_or("shard missing start")?;
            let end = entry
                .get("end")
                .and_then(JsonValue::as_u128)
                .ok_or("shard missing end")?;
            if sweep.shards[i] != (RankRange { start, end }) {
                return Err(format!(
                    "shard {i} bounds {start}..{end} do not match the deterministic plan"
                ));
            }
            let done = entry.get("done") == Some(&JsonValue::Bool(true));
            if !done {
                continue;
            }
            let level_entries = entry
                .get("levels")
                .and_then(JsonValue::as_array)
                .ok_or("completed shard missing levels")?;
            if level_entries.len() != statistic.level_count(m) {
                return Err(format!(
                    "shard {i} has {} levels, expected {}",
                    level_entries.len(),
                    statistic.level_count(m)
                ));
            }
            let mut levels = Vec::with_capacity(level_entries.len());
            for (expected_level, level_entry) in level_entries.iter().enumerate() {
                let level = level_entry
                    .get("level")
                    .and_then(JsonValue::as_usize)
                    .ok_or("level entry missing level")?;
                if level != expected_level {
                    return Err(format!("level entries out of order at {expected_level}"));
                }
                let count = level_entry
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or("level entry missing count")?;
                let hit_sums = parse_u64_array(level_entry.get("hit_sums"), m)
                    .ok_or("level entry missing hit_sums")?;
                let hit_sq_sums = parse_u64_array(level_entry.get("hit_sq_sums"), m)
                    .ok_or("level entry missing hit_sq_sums")?;
                levels.push(SweepLevel {
                    level,
                    count,
                    hit_sums,
                    hit_sq_sums,
                });
            }
            sweep.partials[i] = Some(levels);
        }
        Ok(sweep)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename) —
    /// the shared [`JobRunner::save`] path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        JobRunner::save(self, path)
    }

    /// Loads a checkpoint from `path`, or plans a fresh sweep when the
    /// file does not exist or does not belong to `spec`/`shard_count`
    /// (a stale same-kind checkpoint for a different sweep is left
    /// untouched on disk and simply ignored). Returns the sweep and
    /// whether progress was actually resumed.
    ///
    /// # Errors
    ///
    /// Returns a loud error when the file holds a checkpoint of a
    /// *different* job kind (see [`crate::job::resume_or_new_with`]) —
    /// resuming a sampled-sweep or trace-ingest checkpoint as an
    /// exhaustive sweep must never silently discard it.
    pub fn resume_or_new(
        spec: SweepSpec,
        shard_count: usize,
        threads: usize,
        path: &Path,
    ) -> Result<(ShardedSweep, bool), String> {
        job::resume_or_new_with(
            path,
            JobKind::ShardedSweep,
            |text| ShardedSweep::from_json(text, threads),
            |sweep| sweep.spec == spec && sweep.shard_count() == shard_count,
            ShardedSweep::completed_count,
            || ShardedSweep::new(spec, shard_count, threads),
        )
    }
}

impl Job for ShardedSweep {
    type Partial = Vec<SweepLevel>;

    fn kind(&self) -> JobKind {
        JobKind::ShardedSweep
    }

    fn fingerprint(&self) -> String {
        self.spec.fingerprint()
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn unit_count(&self) -> usize {
        self.shards.len()
    }

    fn completed_count(&self) -> usize {
        ShardedSweep::completed_count(self)
    }

    fn pending_units(&self) -> Vec<usize> {
        self.partials
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// One shard at a time: each unit is *internally* parallel (the
    /// engine splits its rank range across the workers), so the runner
    /// must not also fan units out.
    fn units_per_pass(&self, _threads: usize) -> usize {
        1
    }

    /// Checkpoint after every shard — a shard of an `m = 12` sweep is
    /// minutes of work, the natural loss bound per kill.
    fn units_per_checkpoint(&self, _threads: usize) -> usize {
        1
    }

    fn run_span(&self, units: &[usize], out: &mut Vec<(usize, Vec<SweepLevel>)>) {
        let engine = SweepEngine::with_threads(self.spec.m, self.threads);
        for &unit in units {
            out.push((
                unit,
                engine.sweep_rank_range(self.spec.statistic, self.spec.model, self.shards[unit]),
            ));
        }
    }

    fn absorb(&mut self, unit: usize, partial: Vec<SweepLevel>) {
        self.partials[unit] = Some(partial);
    }

    fn to_json(&self) -> String {
        ShardedSweep::to_json(self)
    }
}

/// A per-level-sharded, checkpointable *sampled* sweep — the stratified
/// counterpart of [`ShardedSweep`].
///
/// A weighted sampled sweep ([`SweepEngine::sampled_levels_weighted`])
/// spends its budget level by level, and each level's aggregate is
/// deterministic in `(spec, level, draws, seed)` alone — levels are the
/// natural shard. [`SampledSweep`] materializes the per-level draw plan
/// ([`crate::engine::weighted_sample_counts_for`]); the runner executes
/// pending levels in parallel batches and checkpoints completed levels as
/// hand-rolled JSON: a killed sampled sweep resumes to aggregates
/// *byte-identical* to the uninterrupted run (the same guarantee, by the
/// same test strategy, as the exhaustive sharded sweep).
#[derive(Debug, Clone)]
pub struct SampledSweep {
    spec: SweepSpec,
    budget: usize,
    min_per_level: usize,
    seed: u64,
    threads: usize,
    draws: Vec<usize>,
    partials: Vec<Option<SweepLevel>>,
}

impl SampledSweep {
    /// Plans a weighted sampled sweep of `spec` with a global `budget`
    /// distributed by the statistic's exact level weights.
    ///
    /// # Panics
    ///
    /// Panics if `spec.m > 34` (level weights overflow `u128` beyond
    /// that).
    #[must_use]
    pub fn new(
        spec: SweepSpec,
        budget: usize,
        min_per_level: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        let draws = crate::engine::weighted_sample_counts_for(
            spec.statistic,
            spec.m,
            budget,
            min_per_level,
        );
        let partials = vec![None; draws.len()];
        SampledSweep {
            spec,
            budget,
            min_per_level,
            seed,
            threads: threads.max(1),
            draws,
            partials,
        }
    }

    /// The sweep's spec.
    #[must_use]
    pub fn spec(&self) -> SweepSpec {
        self.spec
    }

    /// The global sampling budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The per-level draw floor.
    #[must_use]
    pub fn min_per_level(&self) -> usize {
        self.min_per_level
    }

    /// The sampling seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of level shards (one per statistic level).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.partials.len()
    }

    /// Number of completed levels.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.partials.iter().filter(|p| p.is_some()).count()
    }

    /// True when every level has been sampled.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.partials.iter().all(Option::is_some)
    }

    /// Runs up to `limit` pending levels (all of them when `None`) in
    /// one parallel pass, returning how many were processed.
    pub fn run_pending(&mut self, limit: Option<usize>) -> usize {
        JobRunner::run_pending(self, limit)
    }

    /// [`Self::run_pending`] with optional instrumentation — identical
    /// execution and results; the registry only observes.
    pub fn run_pending_metered(
        &mut self,
        limit: Option<usize>,
        metrics: Option<&mut crate::obs::MetricsRegistry>,
    ) -> usize {
        JobRunner::run_pending_metered(self, limit, metrics)
    }

    /// Runs pending levels — all of them, or up to `limit` — saving the
    /// checkpoint to `path` after each batch of (at most) the configured
    /// thread count, so a kill loses at most one batch. `on_batch`
    /// receives `(completed, total)` after every save. The checkpoint is
    /// (re)written even when nothing was pending.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint(
        &mut self,
        path: &Path,
        limit: Option<usize>,
        on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        JobRunner::run_with_checkpoint(self, path, limit, on_batch)
    }

    /// [`SampledSweep::run_with_checkpoint`] with the runner's metrics
    /// registry attached — identical execution, checkpoint bytes and
    /// results; the registry only observes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint_metered(
        &mut self,
        path: &Path,
        limit: Option<usize>,
        metrics: Option<&mut crate::obs::MetricsRegistry>,
        on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        JobRunner::run_with_checkpoint_metered(self, path, limit, metrics, on_batch)
    }

    /// The sampled per-level aggregates, or `None` while levels are
    /// pending. Identical to
    /// [`SweepEngine::sampled_levels_weighted`] with the same parameters.
    #[must_use]
    pub fn merged_levels(&self) -> Option<Vec<SweepLevel>> {
        if !self.is_complete() {
            return None;
        }
        Some(self.partials.iter().flatten().cloned().collect())
    }

    /// Serializes the sweep — spec, sampling plan, completed levels — as a
    /// JSON checkpoint document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        job::write_checkpoint_header(&mut out, JobKind::SampledSweep, &self.spec.fingerprint());
        let _ = writeln!(out, "  \"m\": {},", self.spec.m);
        let _ = writeln!(out, "  \"statistic\": \"{}\",", self.spec.statistic);
        let _ = writeln!(out, "  \"model\": \"{}\",", self.spec.model);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"min_per_level\": {},", self.min_per_level);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"level_count\": {},", self.partials.len());
        out.push_str("  \"levels\": [\n");
        for (i, (draws, partial)) in self.draws.iter().zip(&self.partials).enumerate() {
            let sep = if i + 1 < self.partials.len() { "," } else { "" };
            match partial {
                None => {
                    let _ = writeln!(
                        out,
                        "    {{\"level\": {i}, \"draws\": {draws}, \"done\": false}}{sep}"
                    );
                }
                Some(level) => {
                    let _ = writeln!(
                        out,
                        "    {{\"level\": {i}, \"draws\": {draws}, \"done\": true, \"count\": {}, \"hit_sums\": {}, \"hit_sq_sums\": {}}}{sep}",
                        level.count,
                        u64_array(&level.hit_sums),
                        u64_array(&level.hit_sq_sums),
                    );
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Rebuilds a sampled sweep from a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (wrong kind
    /// or version — cross-kind documents name both kinds — unknown
    /// statistic/model, a draw plan that does not match the deterministic
    /// one, malformed levels).
    pub fn from_json(text: &str, threads: usize) -> Result<SampledSweep, String> {
        let doc = job::parse_checkpoint(text, JobKind::SampledSweep)?;
        let m = doc
            .get("m")
            .and_then(JsonValue::as_usize)
            .ok_or("missing m")?;
        let statistic = doc
            .get("statistic")
            .and_then(JsonValue::as_str)
            .and_then(Statistic::parse)
            .ok_or("missing or unknown statistic")?;
        let model = doc
            .get("model")
            .and_then(JsonValue::as_str)
            .and_then(CacheModel::parse)
            .ok_or("missing or unknown model")?;
        let budget = doc
            .get("budget")
            .and_then(JsonValue::as_usize)
            .ok_or("missing budget")?;
        let min_per_level = doc
            .get("min_per_level")
            .and_then(JsonValue::as_usize)
            .ok_or("missing min_per_level")?;
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("missing seed")?;
        if m > 34 {
            return Err(format!("degree {m} exceeds the supported maximum (34)"));
        }
        let spec = SweepSpec {
            m,
            statistic,
            model,
        };
        let mut sweep = SampledSweep::new(spec, budget, min_per_level, seed, threads);
        let declared = doc
            .get("level_count")
            .and_then(JsonValue::as_usize)
            .ok_or("missing level_count")?;
        let entries = doc
            .get("levels")
            .and_then(JsonValue::as_array)
            .ok_or("missing levels")?;
        if declared != entries.len() || declared != sweep.partials.len() {
            return Err(format!(
                "level_count {declared} does not match {} entries / {} planned levels",
                entries.len(),
                sweep.partials.len()
            ));
        }
        for (i, entry) in entries.iter().enumerate() {
            let level = entry
                .get("level")
                .and_then(JsonValue::as_usize)
                .ok_or("level entry missing level")?;
            if level != i {
                return Err(format!("level entries out of order at {i}"));
            }
            let draws = entry
                .get("draws")
                .and_then(JsonValue::as_usize)
                .ok_or("level entry missing draws")?;
            if draws != sweep.draws[i] {
                return Err(format!(
                    "level {i} plans {draws} draws, expected {} from the deterministic plan",
                    sweep.draws[i]
                ));
            }
            let done = entry.get("done") == Some(&JsonValue::Bool(true));
            if !done {
                continue;
            }
            let count = entry
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or("level entry missing count")?;
            let hit_sums =
                parse_u64_array(entry.get("hit_sums"), m).ok_or("level entry missing hit_sums")?;
            let hit_sq_sums = parse_u64_array(entry.get("hit_sq_sums"), m)
                .ok_or("level entry missing hit_sq_sums")?;
            sweep.partials[i] = Some(SweepLevel {
                level,
                count,
                hit_sums,
                hit_sq_sums,
            });
        }
        Ok(sweep)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename) —
    /// the shared [`JobRunner::save`] path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        JobRunner::save(self, path)
    }

    /// Loads a checkpoint from `path`, or plans a fresh sampled sweep when
    /// the file does not exist or does not belong to the same
    /// `(spec, budget, min_per_level, seed)`. Returns the sweep and
    /// whether progress was actually resumed.
    ///
    /// # Errors
    ///
    /// Returns a loud error when the file holds a checkpoint of a
    /// *different* job kind (see [`crate::job::resume_or_new_with`]).
    pub fn resume_or_new(
        spec: SweepSpec,
        budget: usize,
        min_per_level: usize,
        seed: u64,
        threads: usize,
        path: &Path,
    ) -> Result<(SampledSweep, bool), String> {
        job::resume_or_new_with(
            path,
            JobKind::SampledSweep,
            |text| SampledSweep::from_json(text, threads),
            |sweep| {
                sweep.spec == spec
                    && sweep.budget == budget
                    && sweep.min_per_level == min_per_level
                    && sweep.seed == seed
            },
            SampledSweep::completed_count,
            || SampledSweep::new(spec, budget, min_per_level, seed, threads),
        )
    }
}

impl Job for SampledSweep {
    type Partial = SweepLevel;

    fn kind(&self) -> JobKind {
        JobKind::SampledSweep
    }

    fn fingerprint(&self) -> String {
        self.spec.fingerprint()
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn unit_count(&self) -> usize {
        self.partials.len()
    }

    fn completed_count(&self) -> usize {
        SampledSweep::completed_count(self)
    }

    fn pending_units(&self) -> Vec<usize> {
        self.partials
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    fn run_span(&self, units: &[usize], out: &mut Vec<(usize, SweepLevel)>) {
        let engine = SweepEngine::with_threads(self.spec.m, self.threads);
        for &unit in units {
            out.push((
                unit,
                engine.sampled_level(
                    self.spec.statistic,
                    self.spec.model,
                    unit,
                    self.draws[unit],
                    self.seed,
                ),
            ));
        }
    }

    fn absorb(&mut self, unit: usize, partial: SweepLevel) {
        self.partials[unit] = Some(partial);
    }

    fn to_json(&self) -> String {
        SampledSweep::to_json(self)
    }
}

fn u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn parse_u64_array(value: Option<&JsonValue>, expected_len: usize) -> Option<Vec<u64>> {
    let items = value?.as_array()?;
    if items.len() != expected_len {
        return None;
    }
    items.iter().map(JsonValue::as_u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_cache::setassoc::ReplacementPolicy;

    fn figure1_sweep(m: usize, shards: usize) -> ShardedSweep {
        ShardedSweep::new(SweepSpec::figure1(m), shards, 2)
    }

    #[test]
    fn shard_plan_partitions_the_rank_space() {
        let sweep = figure1_sweep(6, 7);
        assert_eq!(sweep.shard_count(), 7);
        assert_eq!(sweep.shards[0].start, 0);
        assert_eq!(sweep.shards.last().unwrap().end, 720);
        for w in sweep.shards.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // More shards than permutations degrades gracefully.
        let tiny = figure1_sweep(1, 10);
        assert_eq!(tiny.shard_count(), 1);
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_aggregates() {
        // The uninterrupted reference.
        let mut reference = figure1_sweep(6, 5);
        assert_eq!(reference.run_pending(None), 5);
        let expected = reference.merged_levels().unwrap();

        // Run two shards, "die", serialize, resume from JSON, finish.
        let mut interrupted = figure1_sweep(6, 5);
        assert_eq!(interrupted.run_pending(Some(2)), 2);
        assert_eq!(interrupted.completed_count(), 2);
        assert!(!interrupted.is_complete());
        assert!(interrupted.merged_levels().is_none());
        let checkpoint = interrupted.to_json();
        drop(interrupted);

        let mut resumed = ShardedSweep::from_json(&checkpoint, 3).unwrap();
        assert_eq!(resumed.completed_count(), 2);
        assert_eq!(resumed.run_pending(None), 3);
        let via_resume = resumed.merged_levels().unwrap();
        assert_eq!(via_resume, expected, "resume must be exact");

        // And byte-identical once re-serialized from the same state.
        let mut direct = figure1_sweep(6, 5);
        direct.run_pending(None);
        assert_eq!(resumed.to_json(), direct.to_json());
    }

    #[test]
    fn checkpoint_round_trips_under_non_default_spec() {
        let spec = SweepSpec {
            m: 5,
            statistic: Statistic::MajorIndex,
            model: CacheModel::SetAssoc {
                ways: 2,
                policy: ReplacementPolicy::Fifo,
            },
        };
        let mut sweep = ShardedSweep::new(spec, 3, 2);
        sweep.run_pending(Some(1));
        let rebuilt = ShardedSweep::from_json(&sweep.to_json(), 2).unwrap();
        assert_eq!(rebuilt.spec(), spec);
        assert_eq!(rebuilt.completed_count(), 1);
        assert_eq!(rebuilt.to_json(), sweep.to_json());
    }

    #[test]
    fn save_load_and_resume_via_filesystem() {
        let dir = std::env::temp_dir();
        let path = dir.join("symloc_shard_test_checkpoint.json");
        std::fs::remove_file(&path).ok();

        let spec = SweepSpec::figure1(5);
        // Nothing on disk: fresh plan.
        let (mut sweep, resumed) = ShardedSweep::resume_or_new(spec, 4, 2, &path).unwrap();
        assert!(!resumed);
        sweep.run_pending(Some(2));
        sweep.save(&path).unwrap();

        // On disk with progress: resumed.
        let (resumed_sweep, resumed) = ShardedSweep::resume_or_new(spec, 4, 2, &path).unwrap();
        assert!(resumed);
        assert_eq!(resumed_sweep.completed_count(), 2);

        // A different spec ignores the stale (same-kind) checkpoint.
        let other = SweepSpec {
            m: 5,
            statistic: Statistic::Descents,
            model: CacheModel::LruStack,
        };
        let (fresh, resumed) = ShardedSweep::resume_or_new(other, 4, 2, &path).unwrap();
        assert!(!resumed);
        assert_eq!(fresh.completed_count(), 0);

        // run_with_checkpoint drives the rest, reporting progress after
        // every saved shard, and leaves a complete file.
        let (mut finishing, _) = ShardedSweep::resume_or_new(spec, 4, 2, &path).unwrap();
        let mut progress = Vec::new();
        let limited = finishing
            .run_with_checkpoint(&path, Some(1), |done, total| progress.push((done, total)))
            .unwrap();
        assert_eq!(limited, 1);
        assert_eq!(progress, vec![(3, 4)]);
        let ran = finishing
            .run_with_checkpoint(&path, None, |done, total| progress.push((done, total)))
            .unwrap();
        assert_eq!(ran, 1);
        assert_eq!(progress, vec![(3, 4), (4, 4)]);
        let levels = finishing.merged_levels().unwrap();
        assert_eq!(levels.iter().map(|l| l.count).sum::<u64>(), 120);
        let (mut done, _) = ShardedSweep::resume_or_new(spec, 4, 2, &path).unwrap();
        assert!(done.is_complete());
        // Nothing pending: still rewrites the checkpoint, runs nothing.
        assert_eq!(done.run_with_checkpoint(&path, None, |_, _| {}).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_json_rejects_corrupted_documents() {
        let mut sweep = figure1_sweep(4, 2);
        sweep.run_pending(Some(1));
        let good = sweep.to_json();
        assert!(ShardedSweep::from_json("{}", 1).is_err());
        assert!(ShardedSweep::from_json("not json", 1).is_err());
        assert!(ShardedSweep::from_json(&good.replace("inversions", "bogus"), 1).is_err());
        assert!(ShardedSweep::from_json(&good.replace("lru_stack", "bogus"), 1).is_err());
        assert!(
            ShardedSweep::from_json(&good.replace("\"version\": 1", "\"version\": 9"), 1).is_err()
        );
        assert!(
            ShardedSweep::from_json(&good.replace(CHECKPOINT_KIND, "something_else"), 1).is_err()
        );
        // Tampered shard bounds are rejected (they no longer match the plan).
        assert!(
            ShardedSweep::from_json(&good.replace("\"start\": 12", "\"start\": 13"), 1).is_err()
        );
    }

    #[test]
    fn cross_kind_resume_is_a_loud_error() {
        // A sampled-sweep checkpoint on disk must make an exhaustive-sweep
        // resume fail with a descriptive error, not silently start fresh.
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "symloc_shard_crosskind_{}.json",
            std::process::id()
        ));
        let mut sampled = SampledSweep::new(SweepSpec::figure1(5), 50, 2, 1, 1);
        sampled.run_pending(Some(2));
        sampled.save(&path).unwrap();
        let err = ShardedSweep::resume_or_new(SweepSpec::figure1(5), 4, 1, &path).unwrap_err();
        assert!(err.contains(SAMPLED_CHECKPOINT_KIND), "{err}");
        assert!(err.contains("exhaustive sharded sweep"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = figure1_sweep(4, 0);
    }

    #[test]
    fn sampled_sweep_equals_the_direct_weighted_sweep() {
        use crate::engine::SweepEngine;
        for statistic in Statistic::ALL {
            let spec = SweepSpec {
                m: 6,
                statistic,
                model: CacheModel::LruStack,
            };
            let mut sweep = SampledSweep::new(spec, 150, 2, 33, 2);
            assert_eq!(sweep.level_count(), statistic.level_count(6));
            sweep.run_pending(None);
            let direct = SweepEngine::with_threads(6, 2).sampled_levels_weighted(
                statistic,
                CacheModel::LruStack,
                150,
                2,
                33,
            );
            assert_eq!(sweep.merged_levels().unwrap(), direct, "{statistic}");
        }
    }

    #[test]
    fn interrupted_sampled_sweep_resumes_to_byte_identical_checkpoint() {
        let spec = SweepSpec {
            m: 8,
            statistic: Statistic::MajorIndex,
            model: CacheModel::LruStack,
        };
        let mut reference = SampledSweep::new(spec, 400, 2, 7, 2);
        reference.run_pending(None);
        let reference_json = reference.to_json();

        let mut interrupted = SampledSweep::new(spec, 400, 2, 7, 2);
        assert_eq!(interrupted.run_pending(Some(10)), 10);
        assert!(!interrupted.is_complete());
        assert!(interrupted.merged_levels().is_none());
        let checkpoint = interrupted.to_json();
        drop(interrupted);

        let mut resumed = SampledSweep::from_json(&checkpoint, 3).unwrap();
        assert_eq!(resumed.completed_count(), 10);
        resumed.run_pending(None);
        assert_eq!(resumed.to_json(), reference_json, "resume must be exact");
    }

    #[test]
    fn sampled_sweep_checkpoint_files_and_resume_or_new() {
        let dir = std::env::temp_dir();
        let path = dir.join("symloc_shard_sampled_checkpoint.json");
        std::fs::remove_file(&path).ok();
        let spec = SweepSpec {
            m: 7,
            statistic: Statistic::Inversions,
            model: CacheModel::LruStack,
        };

        let (mut sweep, resumed) = SampledSweep::resume_or_new(spec, 200, 2, 5, 2, &path).unwrap();
        assert!(!resumed);
        assert_eq!(sweep.budget(), 200);
        assert_eq!(sweep.min_per_level(), 2);
        assert_eq!(sweep.seed(), 5);
        let mut progress = Vec::new();
        sweep
            .run_with_checkpoint(&path, Some(4), |done, total| progress.push((done, total)))
            .unwrap();
        assert_eq!(progress.last(), Some(&(4, 22)));
        assert!(!sweep.is_complete());

        let (mut resumed_sweep, resumed) =
            SampledSweep::resume_or_new(spec, 200, 2, 5, 2, &path).unwrap();
        assert!(resumed);
        assert_eq!(resumed_sweep.completed_count(), 4);
        resumed_sweep
            .run_with_checkpoint(&path, None, |_, _| {})
            .unwrap();
        assert!(resumed_sweep.is_complete());

        // A different seed or budget ignores the stale checkpoint.
        let (fresh, resumed) = SampledSweep::resume_or_new(spec, 200, 2, 6, 2, &path).unwrap();
        assert!(!resumed);
        assert_eq!(fresh.completed_count(), 0);
        let (mut done, _) = SampledSweep::resume_or_new(spec, 200, 2, 5, 2, &path).unwrap();
        assert!(done.is_complete());
        assert_eq!(done.run_with_checkpoint(&path, None, |_, _| {}).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampled_sweep_from_json_rejects_corrupted_documents() {
        let spec = SweepSpec {
            m: 5,
            statistic: Statistic::TotalDisplacement,
            model: CacheModel::LruStack,
        };
        let mut sweep = SampledSweep::new(spec, 100, 2, 3, 1);
        sweep.run_pending(Some(3));
        let good = sweep.to_json();
        assert!(SampledSweep::from_json(&good, 1).is_ok());
        assert!(SampledSweep::from_json("{}", 1).is_err());
        assert!(SampledSweep::from_json("not json", 1).is_err());
        assert!(SampledSweep::from_json(&good.replace("total_displacement", "bogus"), 1).is_err());
        assert!(
            SampledSweep::from_json(&good.replace("\"version\": 1", "\"version\": 9"), 1).is_err()
        );
        assert!(
            SampledSweep::from_json(&good.replace(SAMPLED_CHECKPOINT_KIND, "else"), 1).is_err()
        );
        // A tampered draw plan no longer matches the deterministic one.
        assert!(SampledSweep::from_json(&good.replace("\"draws\": 2", "\"draws\": 3"), 1).is_err());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn huge_degree_rejected() {
        let _ = figure1_sweep(13, 2);
    }
}
