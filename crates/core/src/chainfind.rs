//! The ChainFind algorithm (Algorithm 2 of the paper).
//!
//! A greedy ascent of the Bruhat covering graph: from the current
//! permutation, enumerate the feasible covers, label each edge with `λ`, and
//! move to a cover with the maximal label. The paper studies how often the
//! maximal label is not unique ("arbitrary choices", Figure 2); this
//! implementation records those ties and how they were broken.

use crate::hits::AnalysisScratch;
use crate::labeling::{EdgeLabeling, Label};
use symloc_perm::bruhat::upper_covers;
use symloc_perm::inversions::inversions;
use symloc_perm::Permutation;

/// How ChainFind breaks ties among covers that share the maximal label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Take the first maximal cover in transposition order (deterministic).
    First,
    /// Take the maximal cover whose transposition `(a, b)` is largest in
    /// lexicographic order — the "σ_i that described the edge" tie-breaker
    /// suggested by the paper's Coxeter-labeling remark.
    LargestGenerator,
    /// Take a pseudo-random maximal cover, seeded deterministically per step
    /// from the given seed (reproducible runs without a `rand` dependency on
    /// the hot path).
    Random(u64),
}

/// One step of a found chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// The permutation reached by this step.
    pub perm: Permutation,
    /// The label of the edge taken to reach it.
    pub label: Label,
    /// The transposition (positions) of the edge taken.
    pub transposition: (usize, usize),
    /// Number of covers that shared the maximal label at this step.
    pub tie_size: usize,
}

/// Result of a ChainFind run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The starting permutation.
    pub start: Permutation,
    /// The steps taken, in order.
    pub steps: Vec<ChainStep>,
    /// Number of steps at which two or more covers shared the maximal label
    /// (the paper's count of "arbitrary choices").
    pub arbitrary_choices: usize,
    /// Product of the tie-set sizes over all steps: the number of distinct
    /// chains the greedy algorithm could have produced (saturating).
    pub chain_multiplicity: u128,
}

impl Chain {
    /// The permutations of the chain, starting permutation first.
    #[must_use]
    pub fn permutations(&self) -> Vec<Permutation> {
        let mut v = Vec::with_capacity(self.steps.len() + 1);
        v.push(self.start.clone());
        v.extend(self.steps.iter().map(|s| s.perm.clone()));
        v
    }

    /// Number of edges in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the chain took no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final permutation reached.
    #[must_use]
    pub fn last(&self) -> &Permutation {
        self.steps.last().map_or(&self.start, |s| &s.perm)
    }

    /// True when the chain is saturated: it runs from its start all the way
    /// to the longest element, taking one cover per missing length unit.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        let m = self.start.degree();
        let max_len = m * m.saturating_sub(1) / 2;
        inversions(self.last()) == max_len && self.len() == max_len - inversions(&self.start)
    }
}

/// Configuration of a ChainFind run.
#[derive(Debug, Clone, Copy)]
pub struct ChainFindConfig {
    /// Tie-break policy.
    pub tie_break: TieBreak,
    /// Optional cap on the number of steps (None = run to the top or until
    /// no feasible cover remains).
    pub max_steps: Option<usize>,
}

impl Default for ChainFindConfig {
    fn default() -> Self {
        ChainFindConfig {
            tie_break: TieBreak::First,
            max_steps: None,
        }
    }
}

/// A tiny splitmix64 step used for the deterministic [`TieBreak::Random`]
/// policy.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs ChainFind from `start`, labeling edges with `labeling`, restricted to
/// covers accepted by the feasibility predicate `feasible` (the paper's `Y`),
/// and returns the chain together with tie statistics.
///
/// The ascent stops when no feasible cover exists (at the longest element if
/// everything is feasible) or when `config.max_steps` is reached.
pub fn chain_find_constrained<L, F>(
    start: &Permutation,
    labeling: &L,
    config: ChainFindConfig,
    mut feasible: F,
) -> Chain
where
    L: EdgeLabeling,
    F: FnMut(&Permutation) -> bool,
{
    let mut current = start.clone();
    let mut steps = Vec::new();
    let mut arbitrary_choices = 0usize;
    let mut chain_multiplicity: u128 = 1;
    let mut rng_state = match config.tie_break {
        TieBreak::Random(seed) => seed,
        _ => 0,
    };
    // One workspace for every label evaluation of the whole ascent (up to
    // m(m-1)/2 steps × m-1 covers): the hit-vector labelings reuse it
    // instead of allocating per cover.
    let mut scratch = AnalysisScratch::new(start.degree());
    loop {
        if let Some(max) = config.max_steps {
            if steps.len() >= max {
                break;
            }
        }
        // Enumerate feasible covers and their labels.
        let mut candidates: Vec<(Permutation, (usize, usize), Label)> = upper_covers(&current)
            .into_iter()
            .filter(|c| feasible(&c.perm))
            .map(|c| {
                let label =
                    labeling.label_with_scratch(&current, &c.perm, c.transposition, &mut scratch);
                (c.perm, c.transposition, label)
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Find the maximal label.
        let max_label = candidates
            .iter()
            .map(|(_, _, l)| l.clone())
            .max()
            .expect("non-empty");
        candidates.retain(|(_, _, l)| *l == max_label);
        let tie_size = candidates.len();
        if tie_size > 1 {
            arbitrary_choices += 1;
            chain_multiplicity = chain_multiplicity.saturating_mul(tie_size as u128);
        }
        let pick = match config.tie_break {
            TieBreak::First => 0,
            TieBreak::LargestGenerator => candidates
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, t, _))| *t)
                .map(|(i, _)| i)
                .expect("non-empty"),
            TieBreak::Random(_) => (splitmix64(&mut rng_state) % tie_size as u64) as usize,
        };
        let (perm, transposition, label) = candidates.swap_remove(pick);
        current = perm.clone();
        steps.push(ChainStep {
            perm,
            label,
            transposition,
            tie_size,
        });
    }
    Chain {
        start: start.clone(),
        steps,
        arbitrary_choices,
        chain_multiplicity,
    }
}

/// Runs ChainFind with every trace considered feasible (the paper's
/// "mathematical compatibility" assumption).
pub fn chain_find<L: EdgeLabeling>(
    start: &Permutation,
    labeling: &L,
    config: ChainFindConfig,
) -> Chain {
    chain_find_constrained(start, labeling, config, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{
        GeneratorTieBreakLabeling, InversionLabeling, MissRatioLabeling, RankedMissRatioLabeling,
    };
    use symloc_perm::coxeter::longest_length;

    #[test]
    fn chain_from_identity_reaches_longest_element() {
        for m in 2..=6usize {
            let e = Permutation::identity(m);
            let chain = chain_find(&e, &MissRatioLabeling, ChainFindConfig::default());
            assert_eq!(chain.len(), longest_length(m), "m={m}");
            assert!(chain.last().is_reverse(), "m={m}");
            assert!(chain.is_saturated(), "m={m}");
            // Lengths increase by exactly one per step.
            for (i, p) in chain.permutations().iter().enumerate() {
                assert_eq!(inversions(p), i);
            }
        }
    }

    #[test]
    fn chain_from_longest_element_is_empty() {
        let w0 = Permutation::reverse(5);
        let chain = chain_find(&w0, &MissRatioLabeling, ChainFindConfig::default());
        assert!(chain.is_empty());
        assert!(chain.is_saturated());
        assert_eq!(chain.last(), &w0);
        assert_eq!(chain.permutations().len(), 1);
        assert_eq!(chain.chain_multiplicity, 1);
    }

    #[test]
    fn max_steps_caps_the_chain() {
        let e = Permutation::identity(6);
        let config = ChainFindConfig {
            max_steps: Some(4),
            ..ChainFindConfig::default()
        };
        let chain = chain_find(&e, &MissRatioLabeling, config);
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_saturated());
        assert_eq!(inversions(chain.last()), 4);
    }

    #[test]
    fn miss_ratio_labeling_records_ties() {
        // The first step from the identity is a full tie (paper's
        // counterexample), so arbitrary choices are at least 1.
        let e = Permutation::identity(5);
        let chain = chain_find(&e, &MissRatioLabeling, ChainFindConfig::default());
        assert!(chain.arbitrary_choices >= 1);
        assert!(chain.chain_multiplicity >= 4);
        assert_eq!(chain.steps[0].tie_size, 4);
    }

    #[test]
    fn generator_tiebreak_labeling_removes_ties() {
        let e = Permutation::identity(5);
        let labeling = GeneratorTieBreakLabeling::new(MissRatioLabeling);
        let chain = chain_find(&e, &labeling, ChainFindConfig::default());
        assert_eq!(chain.arbitrary_choices, 0);
        assert_eq!(chain.chain_multiplicity, 1);
        assert!(chain.is_saturated());
    }

    #[test]
    fn degenerate_labeling_ties_everywhere() {
        let e = Permutation::identity(4);
        let chain = chain_find(&e, &InversionLabeling, ChainFindConfig::default());
        assert!(chain.is_saturated());
        // Every step with more than one cover must tie.
        for step in &chain.steps {
            assert!(step.tie_size >= 1);
        }
        assert!(chain.arbitrary_choices >= chain.len() / 2);
    }

    #[test]
    fn tie_break_policies_all_reach_the_top() {
        let e = Permutation::identity(5);
        for tie_break in [
            TieBreak::First,
            TieBreak::LargestGenerator,
            TieBreak::Random(7),
        ] {
            let config = ChainFindConfig {
                tie_break,
                max_steps: None,
            };
            let chain = chain_find(&e, &MissRatioLabeling, config);
            assert!(chain.is_saturated(), "{tie_break:?}");
        }
    }

    #[test]
    fn random_tie_break_is_reproducible() {
        let e = Permutation::identity(5);
        let config = ChainFindConfig {
            tie_break: TieBreak::Random(99),
            max_steps: None,
        };
        let a = chain_find(&e, &MissRatioLabeling, config);
        let b = chain_find(&e, &MissRatioLabeling, config);
        assert_eq!(a, b);
    }

    #[test]
    fn ranked_labeling_chain_is_saturated() {
        let m = 6;
        let e = Permutation::identity(m);
        let labeling = RankedMissRatioLabeling::prioritize_second_largest(m);
        let chain = chain_find(&e, &labeling, ChainFindConfig::default());
        assert!(chain.is_saturated());
        assert_eq!(chain.len(), longest_length(m));
    }

    #[test]
    fn constrained_chain_respects_feasibility() {
        // Forbid any permutation that moves element 0 away from position 0:
        // the chain can only permute elements 1..m-1.
        let m = 5;
        let e = Permutation::identity(m);
        let chain =
            chain_find_constrained(&e, &MissRatioLabeling, ChainFindConfig::default(), |p| {
                p.apply(0) == 0
            });
        // The reachable sub-poset is S_{m-1} on the last m-1 elements, whose
        // longest element has (m-1)(m-2)/2 inversions.
        assert_eq!(chain.len(), (m - 1) * (m - 2) / 2);
        assert_eq!(chain.last().apply(0), 0);
        assert!(!chain.is_saturated());
    }

    #[test]
    fn constrained_chain_with_nothing_feasible_stays_put() {
        let e = Permutation::identity(4);
        let chain =
            chain_find_constrained(&e, &MissRatioLabeling, ChainFindConfig::default(), |_| {
                false
            });
        assert!(chain.is_empty());
        assert_eq!(chain.last(), &e);
    }

    #[test]
    fn chain_find_on_trivial_groups() {
        let chain = chain_find(
            &Permutation::identity(1),
            &MissRatioLabeling,
            ChainFindConfig::default(),
        );
        assert!(chain.is_empty());
        assert!(chain.is_saturated());
        let chain0 = chain_find(
            &Permutation::identity(0),
            &MissRatioLabeling,
            ChainFindConfig::default(),
        );
        assert!(chain0.is_empty());
    }
}
