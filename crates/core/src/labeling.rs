//! Edge labelings `λ` for the ChainFind algorithm (Section V of the paper).
//!
//! A labeling assigns to every covering edge `σ ◁_B τ` an element of a
//! totally ordered set `Q`; ChainFind greedily follows the maximal label.
//! Labels here are vectors of `usize` compared lexicographically, which
//! covers both labelings studied in the paper:
//!
//! * [`MissRatioLabeling`] (`λ_e`): the hit vector `hits_C(τ)` itself.
//! * [`RankedMissRatioLabeling`] (`λ_ψ`): the hit vector permuted by `ψ`,
//!   prioritizing particular cache sizes.
//!
//! An [`InversionLabeling`] is included as a deliberately *bad* labeling
//! (every cover gets the same label) to exercise the tie machinery.

use crate::error::{CoreError, Result};
use crate::hits::{hit_vector, hit_vector_with_scratch, AnalysisScratch};
use symloc_perm::Permutation;

/// A totally ordered edge label: a vector compared lexicographically.
pub type Label = Vec<usize>;

/// An edge labeler `λ : {(σ, τ) : σ ◁_B τ} → Q`.
pub trait EdgeLabeling {
    /// Label of the covering edge `from ◁_B to`, reached by right-multiplying
    /// `from` with the transposition at the given positions.
    fn label(&self, from: &Permutation, to: &Permutation, transposition: (usize, usize)) -> Label;

    /// [`EdgeLabeling::label`] with a reusable [`AnalysisScratch`] for the
    /// hit-vector work. ChainFind evaluates `O(m)` labels per step and `O(m²)`
    /// per run, so labelings whose labels derive from Algorithm 1 override
    /// this to keep the ascent allocation-free apart from the labels
    /// themselves. The default ignores the scratch.
    fn label_with_scratch(
        &self,
        from: &Permutation,
        to: &Permutation,
        transposition: (usize, usize),
        _scratch: &mut AnalysisScratch,
    ) -> Label {
        self.label(from, to, transposition)
    }

    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// The naive miss-ratio labeling `λ_e` of Section V-B1: the label of an edge
/// is the destination's hit vector, compared lexicographically from cache
/// size 1 upward.
#[derive(Debug, Clone, Copy, Default)]
pub struct MissRatioLabeling;

impl EdgeLabeling for MissRatioLabeling {
    fn label(&self, _from: &Permutation, to: &Permutation, _t: (usize, usize)) -> Label {
        hit_vector(to).as_slice().to_vec()
    }

    fn label_with_scratch(
        &self,
        _from: &Permutation,
        to: &Permutation,
        _t: (usize, usize),
        scratch: &mut AnalysisScratch,
    ) -> Label {
        hit_vector_with_scratch(to, scratch).to_vec()
    }

    fn name(&self) -> &'static str {
        "miss-ratio (λ_e)"
    }
}

/// The ranked miss-ratio labeling `λ_ψ` of Section V-B2: the destination's
/// hit vector re-ordered by a permutation `ψ` of the cache sizes, so that
/// preferred sizes are compared first.
#[derive(Debug, Clone)]
pub struct RankedMissRatioLabeling {
    psi: Permutation,
}

impl RankedMissRatioLabeling {
    /// Creates the labeling for groups of degree `psi.degree()`.
    #[must_use]
    pub fn new(psi: Permutation) -> Self {
        RankedMissRatioLabeling { psi }
    }

    /// The paper's S11 example: `ψ` slides the hits at the second-largest
    /// cache size to the front (ψ is the cycle `(1 m-1 m-2 .. 2)` in the
    /// paper's 1-based notation). Concretely, the label reads cache size
    /// `m-1` first, then sizes `1, 2, .., m-2, m`.
    #[must_use]
    pub fn prioritize_second_largest(m: usize) -> Self {
        // psi maps label position -> cache-size index (0-based). Position 0
        // reads cache size m-2 (i.e. c = m-1), position i>0 reads size i-1,
        // and the last position keeps c = m.
        let mut images = Vec::with_capacity(m);
        if m >= 2 {
            images.push(m - 2);
            for i in 0..m - 2 {
                images.push(i);
            }
            images.push(m - 1);
        } else {
            images.extend(0..m);
        }
        RankedMissRatioLabeling {
            psi: Permutation::from_images(images).expect("constructed bijection"),
        }
    }

    /// The ranking permutation ψ.
    #[must_use]
    pub fn psi(&self) -> &Permutation {
        &self.psi
    }

    /// Validates that the labeling matches a group degree.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LabelingDegreeMismatch`] when degrees differ.
    pub fn check_degree(&self, group_degree: usize) -> Result<()> {
        if self.psi.degree() != group_degree {
            return Err(CoreError::LabelingDegreeMismatch {
                labeling: self.psi.degree(),
                group: group_degree,
            });
        }
        Ok(())
    }
}

impl EdgeLabeling for RankedMissRatioLabeling {
    fn label(&self, _from: &Permutation, to: &Permutation, _t: (usize, usize)) -> Label {
        let hv = hit_vector(to);
        let hits = hv.as_slice();
        debug_assert_eq!(hits.len(), self.psi.degree(), "labeling degree mismatch");
        // Label position i reads hits at cache size psi(i)+1.
        self.psi.images().iter().map(|&c| hits[c]).collect()
    }

    fn label_with_scratch(
        &self,
        _from: &Permutation,
        to: &Permutation,
        _t: (usize, usize),
        scratch: &mut AnalysisScratch,
    ) -> Label {
        let hits = hit_vector_with_scratch(to, scratch);
        debug_assert_eq!(hits.len(), self.psi.degree(), "labeling degree mismatch");
        self.psi.images().iter().map(|&c| hits[c]).collect()
    }

    fn name(&self) -> &'static str {
        "ranked miss-ratio (λ_ψ)"
    }
}

/// A degenerate labeling that grades edges only by the destination length
/// (which is constant across the covers of a node): every step is a full tie.
/// Useful as a worst case for tie-break studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct InversionLabeling;

impl EdgeLabeling for InversionLabeling {
    fn label(&self, _from: &Permutation, to: &Permutation, _t: (usize, usize)) -> Label {
        vec![symloc_perm::inversions::inversions(to)]
    }

    fn name(&self) -> &'static str {
        "inversion-only (degenerate)"
    }
}

/// A labeling that breaks all ties of an inner labeling by appending the
/// generator (transposition) positions, matching the "use the σ_i that
/// describes the edge" tie-breaker the paper suggests from the standard
/// Coxeter labeling.
#[derive(Debug, Clone)]
pub struct GeneratorTieBreakLabeling<L> {
    inner: L,
}

impl<L: EdgeLabeling> GeneratorTieBreakLabeling<L> {
    /// Wraps an inner labeling.
    #[must_use]
    pub fn new(inner: L) -> Self {
        GeneratorTieBreakLabeling { inner }
    }
}

impl<L: EdgeLabeling> EdgeLabeling for GeneratorTieBreakLabeling<L> {
    fn label(&self, from: &Permutation, to: &Permutation, t: (usize, usize)) -> Label {
        let mut label = self.inner.label(from, to, t);
        label.push(t.0);
        label.push(t.1);
        label
    }

    fn label_with_scratch(
        &self,
        from: &Permutation,
        to: &Permutation,
        t: (usize, usize),
        scratch: &mut AnalysisScratch,
    ) -> Label {
        let mut label = self.inner.label_with_scratch(from, to, t, scratch);
        label.push(t.0);
        label.push(t.1);
        label
    }

    fn name(&self) -> &'static str {
        "generator tie-broken"
    }
}

/// A labeling based on *timescale locality* (one of the alternative orderings
/// the paper reports trying for Problem 3): the label of an edge compares,
/// window length by window length, how few distinct elements the destination
/// re-traversal touches per window (complemented so that larger labels mean
/// better locality, as ChainFind maximizes).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimescaleLabeling;

impl EdgeLabeling for TimescaleLabeling {
    fn label(&self, _from: &Permutation, to: &Permutation, _t: (usize, usize)) -> Label {
        let m = to.degree();
        let trace = symloc_trace::generators::retraversal_trace(to);
        let n = trace.len();
        (1..=m)
            .map(|w| {
                let windows = (n + 1).saturating_sub(w);
                let max_total = (windows * w.min(m)) as u128;
                let total = symloc_cache::footprint::total_window_footprint(&trace, w);
                usize::try_from(max_total.saturating_sub(total)).unwrap_or(usize::MAX)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "timescale footprint"
    }
}

/// A labeling based on the scalar *data-movement* cost (the paper's other
/// candidate ordering): the total reuse distance of the destination
/// re-traversal, complemented so that larger labels mean better locality.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataMovementLabeling;

impl EdgeLabeling for DataMovementLabeling {
    fn label(&self, _from: &Permutation, to: &Permutation, _t: (usize, usize)) -> Label {
        let m = to.degree() as u128;
        let total = crate::hits::total_reuse_distance(to);
        vec![usize::try_from(m * m - total).unwrap_or(usize::MAX)]
    }

    fn label_with_scratch(
        &self,
        _from: &Permutation,
        to: &Permutation,
        _t: (usize, usize),
        scratch: &mut AnalysisScratch,
    ) -> Label {
        let m = to.degree() as u128;
        let total = crate::hits::total_reuse_distance_with_scratch(to, scratch);
        vec![usize::try_from(m * m - total).unwrap_or(usize::MAX)]
    }

    fn name(&self) -> &'static str {
        "data-movement (total reuse distance)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_labeling_is_hit_vector() {
        let e = Permutation::identity(4);
        let tau = e.mul_adjacent_right(0).unwrap();
        let label = MissRatioLabeling.label(&e, &tau, (0, 1));
        assert_eq!(label, hit_vector(&tau).as_slice().to_vec());
        assert_eq!(MissRatioLabeling.name(), "miss-ratio (λ_e)");
    }

    #[test]
    fn first_covers_of_identity_tie_under_miss_ratio_labeling() {
        // The paper's counterexample: all covers of e have hits_1 = 0 and in
        // fact identical hit vectors, so λ_e cannot distinguish them.
        let m = 5;
        let e = Permutation::identity(m);
        let labels: Vec<Label> = symloc_perm::bruhat::upper_covers(&e)
            .into_iter()
            .map(|c| MissRatioLabeling.label(&e, &c.perm, c.transposition))
            .collect();
        assert!(labels.len() > 1);
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(labels[0][0], 0); // hits_1 = 0 for every s_i
    }

    #[test]
    fn ranked_labeling_reorders_positions() {
        let m = 5;
        let labeling = RankedMissRatioLabeling::prioritize_second_largest(m);
        assert!(labeling.check_degree(m).is_ok());
        assert!(labeling.check_degree(4).is_err());
        // psi position 0 must read cache size m-1 (index m-2).
        assert_eq!(labeling.psi().apply(0), m - 2);
        let sigma = Permutation::reverse(m);
        let label = labeling.label(&Permutation::identity(m), &sigma, (0, 4));
        let hv = hit_vector(&sigma);
        assert_eq!(label[0], hv.hits(m - 1));
        assert_eq!(label[label.len() - 1], hv.hits(m));
        assert_eq!(labeling.name(), "ranked miss-ratio (λ_ψ)");
    }

    #[test]
    fn ranked_labeling_degenerate_degrees() {
        let l1 = RankedMissRatioLabeling::prioritize_second_largest(1);
        assert_eq!(l1.psi().degree(), 1);
        let l0 = RankedMissRatioLabeling::prioritize_second_largest(0);
        assert_eq!(l0.psi().degree(), 0);
    }

    #[test]
    fn inversion_labeling_always_ties() {
        let e = Permutation::identity(4);
        let covers = symloc_perm::bruhat::upper_covers(&e);
        let labels: Vec<Label> = covers
            .iter()
            .map(|c| InversionLabeling.label(&e, &c.perm, c.transposition))
            .collect();
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(labels[0], vec![1]);
        assert!(InversionLabeling.name().contains("degenerate"));
    }

    #[test]
    fn timescale_labeling_prefers_sawtooth_over_cyclic_steps() {
        // From a mid-chain permutation, the timescale label of the cover that
        // moves toward the sawtooth must be at least the label of any other
        // cover according to the scalar data-movement labeling; both labelings
        // must rank the sawtooth destination highest among covers of the
        // identity's successors in S_3 (exhaustively checkable).
        let e = Permutation::identity(3);
        let covers = symloc_perm::bruhat::upper_covers(&e);
        let ts_labels: Vec<Label> = covers
            .iter()
            .map(|c| TimescaleLabeling.label(&e, &c.perm, c.transposition))
            .collect();
        assert_eq!(ts_labels.len(), 2);
        assert_eq!(TimescaleLabeling.name(), "timescale footprint");
        // The two covers of e in S_3 are symmetric; their labels agree.
        assert_eq!(ts_labels[0], ts_labels[1]);
        // Sawtooth beats cyclic under both labelings (compare as destinations
        // from a common dummy edge).
        let w0 = Permutation::reverse(4);
        let id = Permutation::identity(4);
        let better = TimescaleLabeling.label(&id, &w0, (0, 1));
        let worse = TimescaleLabeling.label(&id, &id, (0, 1));
        assert!(better > worse);
        let dm_better = DataMovementLabeling.label(&id, &w0, (0, 1));
        let dm_worse = DataMovementLabeling.label(&id, &id, (0, 1));
        assert!(dm_better > dm_worse);
        assert!(DataMovementLabeling.name().contains("data-movement"));
    }

    #[test]
    fn data_movement_labeling_is_single_scalar_and_monotone_in_inversions() {
        // For S_4, the data-movement label orders permutations identically to
        // the inversion number (both are affine in ℓ by Theorem 2).
        use symloc_perm::inversions::inversions;
        let id = Permutation::identity(4);
        let mut perms: Vec<Permutation> = symloc_perm::iter::LexIter::new(4).collect();
        perms.sort_by_key(inversions);
        let labels: Vec<Label> = perms
            .iter()
            .map(|p| DataMovementLabeling.label(&id, p, (0, 1)))
            .collect();
        for w in labels.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(labels[0].len(), 1);
    }

    #[test]
    fn scratch_labels_match_allocating_labels() {
        let m = 5;
        let e = Permutation::identity(m);
        let covers = symloc_perm::bruhat::upper_covers(
            &Permutation::from_images(vec![1, 3, 0, 2, 4]).unwrap(),
        );
        let mut scratch = AnalysisScratch::new(m);
        let ranked = RankedMissRatioLabeling::prioritize_second_largest(m);
        let tiebroken = GeneratorTieBreakLabeling::new(MissRatioLabeling);
        for c in &covers {
            assert_eq!(
                MissRatioLabeling.label(&e, &c.perm, c.transposition),
                MissRatioLabeling.label_with_scratch(&e, &c.perm, c.transposition, &mut scratch),
            );
            assert_eq!(
                ranked.label(&e, &c.perm, c.transposition),
                ranked.label_with_scratch(&e, &c.perm, c.transposition, &mut scratch),
            );
            assert_eq!(
                tiebroken.label(&e, &c.perm, c.transposition),
                tiebroken.label_with_scratch(&e, &c.perm, c.transposition, &mut scratch),
            );
            assert_eq!(
                DataMovementLabeling.label(&e, &c.perm, c.transposition),
                DataMovementLabeling.label_with_scratch(&e, &c.perm, c.transposition, &mut scratch),
            );
            // Labelings without an override fall back to the allocating path.
            assert_eq!(
                TimescaleLabeling.label(&e, &c.perm, c.transposition),
                TimescaleLabeling.label_with_scratch(&e, &c.perm, c.transposition, &mut scratch),
            );
        }
    }

    #[test]
    fn generator_tiebreak_distinguishes_covers() {
        let e = Permutation::identity(4);
        let covers = symloc_perm::bruhat::upper_covers(&e);
        let labeling = GeneratorTieBreakLabeling::new(MissRatioLabeling);
        let labels: Vec<Label> = covers
            .iter()
            .map(|c| labeling.label(&e, &c.perm, c.transposition))
            .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
        assert_eq!(labeling.name(), "generator tie-broken");
    }
}
