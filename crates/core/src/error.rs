//! Error types for the symmetric-locality core.

use std::fmt;
use symloc_perm::PermError;

/// Errors produced by the symmetric-locality core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A permutation-level error bubbled up from `symloc-perm`.
    Perm(PermError),
    /// A trace could not be interpreted as a re-traversal `T = A B`.
    NotARetraversal {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A feasibility constraint set is inconsistent (its precedence relation
    /// contains a cycle).
    InfeasibleConstraints {
        /// One element on the cycle, for diagnostics.
        witness: usize,
    },
    /// A constraint references an element outside `0..m`.
    ConstraintOutOfRange {
        /// The offending element.
        element: usize,
        /// Number of elements.
        degree: usize,
    },
    /// No feasible permutation exists under the given constraints and
    /// starting point (e.g. the start itself violates them).
    NoFeasibleChoice {
        /// Description of where the search got stuck.
        reason: String,
    },
    /// A ranked labeling was built from a permutation of the wrong degree.
    LabelingDegreeMismatch {
        /// Degree of the labeling permutation ψ.
        labeling: usize,
        /// Degree of the traversed group.
        group: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Perm(e) => write!(f, "permutation error: {e}"),
            CoreError::NotARetraversal { reason } => {
                write!(f, "trace is not a re-traversal: {reason}")
            }
            CoreError::InfeasibleConstraints { witness } => write!(
                f,
                "feasibility constraints are cyclic (element {witness} must precede itself)"
            ),
            CoreError::ConstraintOutOfRange { element, degree } => write!(
                f,
                "constraint references element {element}, but the traversal has only {degree} elements"
            ),
            CoreError::NoFeasibleChoice { reason } => {
                write!(f, "no feasible choice: {reason}")
            }
            CoreError::LabelingDegreeMismatch { labeling, group } => write!(
                f,
                "ranked labeling permutation has degree {labeling}, expected {group}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PermError> for CoreError {
    fn from(e: PermError) -> Self {
        CoreError::Perm(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NotARetraversal {
            reason: "length is odd".into(),
        };
        assert!(e.to_string().contains("length is odd"));
        let e = CoreError::InfeasibleConstraints { witness: 3 };
        assert!(e.to_string().contains('3'));
        let e = CoreError::ConstraintOutOfRange {
            element: 9,
            degree: 4,
        };
        assert!(e.to_string().contains('9'));
        let e = CoreError::NoFeasibleChoice {
            reason: "start violates constraints".into(),
        };
        assert!(e.to_string().contains("start violates"));
        let e = CoreError::LabelingDegreeMismatch {
            labeling: 3,
            group: 5,
        };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn perm_error_converts() {
        let pe = PermError::DegreeMismatch { left: 2, right: 3 };
        let ce: CoreError = pe.clone().into();
        assert_eq!(ce, CoreError::Perm(pe));
        assert!(ce.to_string().contains("degree mismatch"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&CoreError::InfeasibleConstraints { witness: 0 });
    }
}
