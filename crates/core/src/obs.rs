//! Lightweight structured observability: a [`MetricsRegistry`] of named
//! counters, gauges and log-bucketed histograms, plus the [`Span`] timer
//! the rest of the workspace measures through.
//!
//! The design mirrors the rest of the workspace: zero dependencies,
//! hand-rolled JSON through [`crate::jsonio`], and deterministic output
//! (entries are kept name-sorted, so two registries holding the same data
//! render byte-identically). The hot paths never touch a registry —
//! per-access accounting lives in worker-local state (for the trace
//! pipelines, `symloc_trace::stream::MeteredSink`; for the job runner,
//! plain locals inside a pass) and is flushed into a registry once per
//! unit or batch, the same shard-then-merge shape as `ChunkPartial`s.
//!
//! Instrumentation built on this module is **result-invariant** by
//! construction: registries only ever receive copies of values the
//! pipelines already computed, and nothing downstream reads them back
//! into a computation.

use crate::jsonio::{self, JsonValue};
use std::fmt::Write as _;

/// The `"kind"` tag of a serialized metrics snapshot.
pub const METRICS_KIND: &str = "symloc_metrics";
/// The snapshot schema version.
pub const METRICS_VERSION: u64 = 1;

/// A log₂-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes or items).
///
/// Bucket `b` counts samples whose bit length is `b` — i.e. values in
/// `[2^(b-1), 2^b)` — with bucket 0 reserved for zero. Alongside the
/// buckets it keeps exact `count`, `sum`, `min` and `max`, so means are
/// exact and only quantiles are approximate (within a factor of two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls in: its bit length (0 for zero).
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the samples, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The approximate `q`-quantile: the lower edge of the first bucket
    /// whose cumulative count reaches `q * count`. Exact to within the
    /// bucket's factor of two.
    ///
    /// `q` is clamped to `[0, 1]`, and NaN is treated as `0.0` — the
    /// 0-quantile (the histogram minimum). A midpoint default would
    /// invent precision an ill-defined request never had; clamp-to-min
    /// keeps the NaN answer the most conservative defined one.
    #[must_use]
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // `f64::clamp` propagates NaN, so map it out explicitly before
        // computing the walk target.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`, bucketwise.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty `(bucket, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
    }
}

/// One named metric: a monotone counter, a last-write-wins gauge, or a
/// [`LogHistogram`] of samples.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone count; merging adds.
    Counter(u64),
    /// Point-in-time value; merging keeps the other side's value.
    Gauge(f64),
    /// Log-bucketed sample distribution; merging adds bucketwise.
    /// Boxed so the common counter/gauge entries stay pointer-sized.
    Histogram(Box<LogHistogram>),
}

impl Metric {
    /// The kind label used in renders and JSON section names.
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A name-sorted registry of [`Metric`]s with deterministic JSON and
/// text renders. See the [module docs](self) for the aggregation model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entries, name-sorted.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    fn entry(&mut self, name: &str, fresh: impl FnOnce() -> Metric) -> &mut Metric {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (name.to_string(), fresh()));
                &mut self.entries[i].1
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<&Metric> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Adds `delta` to the counter `name` (created at 0). A name that
    /// currently holds another metric kind is reset to a counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        let metric = self.entry(name, || Metric::Counter(0));
        match metric {
            Metric::Counter(v) => *v = v.saturating_add(delta),
            other => *other = Metric::Counter(delta),
        }
    }

    /// Sets the gauge `name`. Non-finite values are recorded as 0 so the
    /// JSON snapshot stays parseable. A name that currently holds another
    /// metric kind is reset to a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        *self.entry(name, || Metric::Gauge(0.0)) = Metric::Gauge(value);
    }

    /// Records `value` into the histogram `name` (created empty). A name
    /// that currently holds another metric kind is reset to a histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        let metric = self.entry(name, || Metric::Histogram(Box::default()));
        if !matches!(metric, Metric::Histogram(_)) {
            *metric = Metric::Histogram(Box::default());
        }
        if let Metric::Histogram(h) = metric {
            h.observe(value);
        }
    }

    /// The counter `name`, if present and a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.lookup(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if present and a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.lookup(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if present and a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        match self.lookup(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merges `other` into `self`: counters add, histograms add
    /// bucketwise, gauges take `other`'s value — the worker-shard merge
    /// the trace pipelines use for `ChunkPartial`s, applied to metrics.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in other.iter() {
            match metric {
                Metric::Counter(v) => self.add(name, *v),
                Metric::Gauge(v) => self.set_gauge(name, *v),
                Metric::Histogram(h) => {
                    let mine = self.entry(name, || Metric::Histogram(Box::default()));
                    match mine {
                        Metric::Histogram(existing) => existing.merge(h),
                        other => *other = Metric::Histogram(h.clone()),
                    }
                }
            }
        }
    }

    /// Renders the registry as a JSON snapshot document:
    /// `{"kind": "symloc_metrics", "version": 1, "counters": {...},
    /// "gauges": {...}, "histograms": {...}}`. Deterministic: entries are
    /// name-sorted and floats use Rust's shortest round-trip formatting.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"kind\": \"{METRICS_KIND}\",");
        let _ = writeln!(out, "  \"version\": {METRICS_VERSION},");
        let section = |out: &mut String, title: &str, body: String, trailing: bool| {
            let _ = write!(out, "  \"{title}\": {{{body}}}");
            out.push_str(if trailing { ",\n" } else { "\n" });
        };
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in self.iter() {
            let key = jsonio::escape(name);
            match metric {
                Metric::Counter(v) => {
                    let sep = if counters.is_empty() { "" } else { ", " };
                    let _ = write!(counters, "{sep}\"{key}\": {v}");
                }
                Metric::Gauge(v) => {
                    let sep = if gauges.is_empty() { "" } else { ", " };
                    let _ = write!(gauges, "{sep}\"{key}\": {v}");
                }
                Metric::Histogram(h) => {
                    let sep = if histograms.is_empty() { "" } else { ", " };
                    let mut buckets = String::new();
                    for (b, n) in h.nonzero_buckets() {
                        let bsep = if buckets.is_empty() { "" } else { ", " };
                        let _ = write!(buckets, "{bsep}[{b}, {n}]");
                    }
                    let _ = write!(
                        histograms,
                        "{sep}\"{key}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                         \"max\": {}, \"buckets\": [{buckets}]}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                }
            }
        }
        section(&mut out, "counters", counters, true);
        section(&mut out, "gauges", gauges, true);
        section(&mut out, "histograms", histograms, false);
        out.push_str("}\n");
        out
    }

    /// Parses a snapshot previously rendered by [`MetricsRegistry::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error on malformed JSON, a wrong `kind` tag,
    /// an unsupported version, or structurally invalid sections.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = jsonio::parse(text)?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some(METRICS_KIND) => {}
            other => return Err(format!("not a {METRICS_KIND} snapshot (kind = {other:?})")),
        }
        let version = doc.get("version").and_then(JsonValue::as_u64);
        if version != Some(METRICS_VERSION) {
            return Err(format!("unsupported metrics version {version:?}"));
        }
        let members = |key: &str| -> Result<&[(String, JsonValue)], String> {
            match doc.get(key) {
                Some(JsonValue::Object(members)) => Ok(members),
                None => Ok(&[]),
                Some(_) => Err(format!("metrics section {key:?} is not an object")),
            }
        };
        let mut registry = MetricsRegistry::new();
        for (name, value) in members("counters")? {
            let v = value
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} is not an unsigned integer"))?;
            registry.add(name, v);
        }
        for (name, value) in members("gauges")? {
            let v = value
                .as_f64()
                .ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            registry.set_gauge(name, v);
        }
        for (name, value) in members("histograms")? {
            let bad = || format!("histogram {name:?} is structurally invalid");
            let mut h = LogHistogram::new();
            h.count = value
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(bad)?;
            h.sum = value
                .get("sum")
                .and_then(JsonValue::as_u64)
                .ok_or_else(bad)?;
            let min = value
                .get("min")
                .and_then(JsonValue::as_u64)
                .ok_or_else(bad)?;
            h.min = if h.count == 0 { u64::MAX } else { min };
            h.max = value
                .get("max")
                .and_then(JsonValue::as_u64)
                .ok_or_else(bad)?;
            let buckets = value
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or_else(bad)?;
            for pair in buckets {
                let pair = pair.as_array().ok_or_else(bad)?;
                let [b, n] = pair else { return Err(bad()) };
                let b = b.as_usize().filter(|&b| b < 65).ok_or_else(bad)?;
                h.buckets[b] = n.as_u64().ok_or_else(bad)?;
            }
            if h.buckets.iter().sum::<u64>() != h.count {
                return Err(bad());
            }
            *registry.entry(name, || Metric::Histogram(Box::default())) =
                Metric::Histogram(Box::new(h));
        }
        Ok(registry)
    }

    /// Renders the registry as an aligned human-readable table (via
    /// [`render_table`]): one row per metric with its kind and a value
    /// summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => v.to_string(),
                    Metric::Gauge(v) => format!("{v:.2}"),
                    Metric::Histogram(h) => format!(
                        "n={} mean={:.0} min={} max={} p50~{}",
                        h.count(),
                        h.mean(),
                        h.min(),
                        h.max(),
                        h.approx_quantile(0.5)
                    ),
                };
                vec![name.to_string(), metric.kind_str().to_string(), value]
            })
            .collect();
        render_table(&["metric", "kind", "value"], &rows)
    }
}

/// Renders a column-aligned text table: a header row, a dashed rule, and
/// one line per row, each column padded to its widest cell. The shared
/// renderer behind [`MetricsRegistry::render_text`] and the bench gate's
/// verdict summary.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header
        .len()
        .max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; columns];
    for (i, h) in header.iter().enumerate() {
        widths[i] = widths[i].max(h.chars().count());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", String::as_str);
            let pad = width - cell.chars().count();
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if i + 1 < widths.len() {
                out.push_str(&" ".repeat(pad));
            }
        }
        // Trailing pad on the last column is dropped above.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    render_row(&mut out, &header_cells);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&mut out, &rule);
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// A started wall-clock timer. The single timing primitive the job
/// runner, the CLI and the benches share: start it, do the work, then
/// read [`Span::elapsed_nanos`] or fold it straight into a registry with
/// [`Span::record`].
#[derive(Debug, Clone, Copy)]
pub struct Span {
    started: std::time::Instant,
}

impl Span {
    /// Starts the timer.
    #[must_use]
    pub fn start() -> Self {
        Span {
            started: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Span::start`] (saturating at
    /// `u64::MAX`).
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Span::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Consumes the span, recording its elapsed time into the histogram
    /// `name` and returning the nanoseconds.
    pub fn record(self, registry: &mut MetricsRegistry, name: &str) -> u64 {
        let nanos = self.elapsed_nanos();
        registry.observe(name, nanos);
        nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LogHistogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        assert_eq!(h.approx_quantile(0.5), 0);
        for v in [0, 1, 1, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1009);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10.
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 1), (3, 1), (10, 1)]);
        // Median lands in bucket 1 → lower edge 1.
        assert_eq!(h.approx_quantile(0.5), 1);
        assert_eq!(h.approx_quantile(1.0), 512);
        let mut other = LogHistogram::new();
        other.observe(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_requests_outside_the_unit_interval_clamp() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 3, 4, 1000] {
            h.observe(v);
        }
        // q < 0 and q = NaN both answer as the 0-quantile; q > 1 as the
        // 1-quantile. Infinities ride the same clamp.
        assert_eq!(h.approx_quantile(-3.0), h.approx_quantile(0.0));
        assert_eq!(h.approx_quantile(7.0), h.approx_quantile(1.0));
        assert_eq!(h.approx_quantile(f64::NAN), h.approx_quantile(0.0));
        assert_eq!(h.approx_quantile(f64::NEG_INFINITY), h.approx_quantile(0.0));
        assert_eq!(h.approx_quantile(f64::INFINITY), h.approx_quantile(1.0));
        // And an empty histogram stays 0 even for ill-defined requests.
        let empty = LogHistogram::new();
        assert_eq!(empty.approx_quantile(f64::NAN), 0);
    }

    #[test]
    fn registry_records_and_reads_back() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.add("a.count", 2);
        reg.add("a.count", 3);
        reg.set_gauge("b.rate", 1.5);
        reg.set_gauge("b.rate", 2.5);
        reg.observe("c.nanos", 100);
        reg.observe("c.nanos", 200);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.counter("a.count"), Some(5));
        assert_eq!(reg.gauge("b.rate"), Some(2.5));
        assert_eq!(reg.histogram("c.nanos").unwrap().count(), 2);
        assert_eq!(reg.counter("b.rate"), None);
        assert_eq!(reg.gauge("missing"), None);
        // Non-finite gauges are clamped so snapshots stay valid JSON.
        reg.set_gauge("b.rate", f64::INFINITY);
        assert_eq!(reg.gauge("b.rate"), Some(0.0));
        // Names stay sorted regardless of insertion order.
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.count", "b.rate", "c.nanos"]);
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_overwrites_gauges() {
        let mut a = MetricsRegistry::new();
        a.add("n", 1);
        a.set_gauge("g", 1.0);
        a.observe("h", 8);
        let mut b = MetricsRegistry::new();
        b.add("n", 2);
        b.add("only_b", 7);
        b.set_gauge("g", 9.0);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("n"), Some(3));
        assert_eq!(a.counter("only_b"), Some(7));
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut reg = MetricsRegistry::new();
        reg.add("sink.accesses", 123_456);
        reg.set_gauge("job.units_per_sec", 77.25);
        reg.set_gauge("job.eta_secs", -1.0);
        for v in [0, 5, 5000, 123_456_789] {
            reg.observe("job.unit_nanos", v);
        }
        let json = reg.to_json();
        let back = MetricsRegistry::from_json(&json).unwrap();
        assert_eq!(back, reg);
        assert_eq!(back.to_json(), json);
        // An empty registry round-trips too.
        let empty = MetricsRegistry::new();
        let back = MetricsRegistry::from_json(&empty.to_json()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        assert!(MetricsRegistry::from_json("not json").is_err());
        assert!(MetricsRegistry::from_json("{}").is_err());
        assert!(MetricsRegistry::from_json("{\"kind\": \"other\"}").is_err());
        let mut reg = MetricsRegistry::new();
        reg.add("n", 1);
        reg.observe("h", 3);
        let json = reg.to_json();
        assert!(
            MetricsRegistry::from_json(&json.replace("\"version\": 1", "\"version\": 9")).is_err()
        );
        assert!(
            MetricsRegistry::from_json(&json.replace("\"n\": 1", "\"n\": \"x\"")).is_err(),
            "non-numeric counter must be rejected"
        );
        // A histogram whose buckets disagree with its count is rejected.
        assert!(MetricsRegistry::from_json(&json.replace("\"count\": 1", "\"count\": 5")).is_err());
        // Truncation is a parse error, not a panic.
        assert!(MetricsRegistry::from_json(&json[..json.len() / 2]).is_err());
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![
            vec!["alpha".to_string(), "1".to_string()],
            vec!["b".to_string(), "22".to_string()],
        ];
        let text = render_table(&["name", "v"], &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name   v");
        assert_eq!(lines[1], "-----  --");
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22");
    }

    #[test]
    fn registry_renders_a_readable_table() {
        let mut reg = MetricsRegistry::new();
        reg.add("sink.accesses", 42);
        reg.set_gauge("job.units_per_sec", 3.5);
        reg.observe("job.unit_nanos", 1024);
        let text = reg.render_text();
        assert!(text.contains("metric"), "{text}");
        assert!(text.contains("sink.accesses"), "{text}");
        assert!(text.contains("counter"), "{text}");
        assert!(text.contains("gauge"), "{text}");
        assert!(text.contains("3.50"), "{text}");
        assert!(text.contains("p50~1024"), "{text}");
    }

    #[test]
    fn span_measures_and_records() {
        let mut reg = MetricsRegistry::new();
        let span = Span::start();
        let nanos = span.record(&mut reg, "t");
        assert!(reg.histogram("t").unwrap().count() == 1);
        assert!(reg.histogram("t").unwrap().sum() == nanos);
    }
}
