//! MRC-driven shared-cache partitioning: curves in, allocations out.
//!
//! Given one miss-ratio curve per tenant plus a total cache budget, the
//! solver splits the budget to minimize the **traffic-weighted aggregate
//! miss ratio** — the canonical production use of MRCs (and the resource-
//! allocation shape that transfers directly to serving stacks). The
//! pipeline has two stages:
//!
//! 1. **Convex-minorant construction** ([`TenantCurve::hull`]). Real MRCs
//!    are not convex — LRU cliffs make marginal gains *increase* with
//!    size around the cliff, which breaks greedy allocation. The lower
//!    convex hull of the expected-miss curve is the performance actually
//!    achievable by timesharing (probabilistically alternating) between
//!    the two bracketing hull vertices, so allocating on the hull gives
//!    non-convex curves their correct fractional treatment instead of a
//!    greedy-order artifact.
//! 2. **Marginal-gain greedy** ([`solve`]). On convex per-tenant miss
//!    curves, repeatedly granting the next cache block to the tenant with
//!    the steepest remaining gain is exactly optimal; the implementation
//!    advances whole hull segments through a max-heap, which is
//!    equivalent to the unit-by-unit greedy but runs in
//!    `O(segments log tenants)`. Ties break toward the lower tenant
//!    index, zero-gain blocks are never allocated (so allocations can sum
//!    to *less* than the budget on saturated curves), and per-tenant
//!    floors and caps are honored. [`exact_reference`] is the
//!    `O(n · budget²)` dynamic program the proptests pin the greedy
//!    against on small instances.
//!
//! Both the `PARTITION` wire command of `symloc serve` and the offline
//! `symloc partition` CLI are thin layers over this module, so the daemon
//! and the batch path produce byte-identical answers from the same
//! curves.

use std::fmt::Write as _;

use crate::tracesweep::MrcPoint;

/// Budgets above `2^53` cache blocks are rejected: past that point `f64`
/// cost arithmetic can no longer represent per-block marginal gains
/// exactly, and no real cache is within orders of magnitude of it — a
/// budget that size is a corrupt request, not a big fleet.
pub const MAX_PARTITION_BUDGET: u64 = 1 << 53;

/// One tenant's input to the partitioner: its traffic weight and a
/// monotone miss-ratio curve sampled at increasing cache sizes.
///
/// The curve is implicitly anchored at `(0, 1.0)` — a tenant with no
/// cache misses every access — so allocations interpolate sensibly below
/// the first sampled size.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCurve {
    name: String,
    weight: f64,
    /// Curve points including the `(0, 1.0)` anchor: sizes strictly
    /// increasing, ratios clamped monotone non-increasing in `[0, 1]`.
    sizes: Vec<u64>,
    ratios: Vec<f64>,
}

impl TenantCurve {
    /// Tolerated float jitter when validating monotonicity, matching
    /// `MissRatioCurve::from_ratios`: sampled curves wobble by ULPs.
    const MONOTONE_EPSILON: f64 = 1e-9;

    /// Builds a tenant curve from MRC points (as produced by every
    /// estimator's `mrc_points`). `weight` is the tenant's traffic — the
    /// number of accesses the curve was measured over — and scales the
    /// tenant's contribution to the aggregate miss ratio. A zero weight
    /// is legal (a tenant that has not streamed yet) and contributes
    /// nothing to the objective.
    ///
    /// # Errors
    ///
    /// Returns a named validation error: non-finite or negative weight,
    /// empty point list with nonzero weight is fine (anchor-only curve),
    /// non-increasing sizes, a size-0 point, out-of-range ratios, or a
    /// ratio *increase* beyond float jitter.
    pub fn from_points(
        name: &str,
        weight: f64,
        points: &[MrcPoint],
    ) -> Result<TenantCurve, String> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(format!(
                "tenant {name:?}: weight {weight} is not a finite non-negative traffic count"
            ));
        }
        let mut sizes: Vec<u64> = Vec::with_capacity(points.len() + 1);
        let mut ratios: Vec<f64> = Vec::with_capacity(points.len() + 1);
        sizes.push(0);
        ratios.push(1.0);
        for p in points {
            let size = p.cache_size as u64;
            if size == 0 {
                return Err(format!(
                    "tenant {name:?}: curve contains a size-0 point (size 0 is the implicit \
                     all-miss anchor)"
                ));
            }
            if size <= *sizes.last().expect("anchor present") {
                return Err(format!(
                    "tenant {name:?}: curve sizes must be strictly increasing (size {size} \
                     after {})",
                    sizes.last().expect("anchor present")
                ));
            }
            let r = p.miss_ratio;
            if !r.is_finite()
                || !(-Self::MONOTONE_EPSILON..=1.0 + Self::MONOTONE_EPSILON).contains(&r)
            {
                return Err(format!(
                    "tenant {name:?}: miss ratio {r} at size {size} is outside [0, 1]"
                ));
            }
            let previous = *ratios.last().expect("anchor present");
            if r > previous + Self::MONOTONE_EPSILON {
                return Err(format!(
                    "tenant {name:?}: miss ratio increases from {previous} to {r} at size \
                     {size} (MRCs are non-increasing)"
                ));
            }
            sizes.push(size);
            ratios.push(r.clamp(0.0, 1.0).min(previous));
        }
        Ok(TenantCurve {
            name: name.to_string(),
            weight,
            sizes,
            ratios,
        })
    }

    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's traffic weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Largest sampled cache size (0 for an anchor-only curve).
    #[must_use]
    pub fn max_size(&self) -> u64 {
        *self.sizes.last().expect("anchor present")
    }

    /// The raw (pre-hull) miss ratio at `size`, linearly interpolated
    /// between sampled points and saturated beyond the last one.
    #[must_use]
    pub fn miss_ratio_at(&self, size: u64) -> f64 {
        match self.sizes.binary_search(&size) {
            Ok(i) => self.ratios[i],
            Err(i) if i >= self.sizes.len() => *self.ratios.last().expect("anchor present"),
            Err(i) => {
                let (s0, s1) = (self.sizes[i - 1], self.sizes[i]);
                let (r0, r1) = (self.ratios[i - 1], self.ratios[i]);
                #[allow(clippy::cast_precision_loss)]
                let t = (size - s0) as f64 / (s1 - s0) as f64;
                r0 + (r1 - r0) * t
            }
        }
    }

    /// The convex minorant of the tenant's **expected-miss** curve
    /// (`weight × miss ratio` against cache size): the vertices of the
    /// lower convex hull over all sampled points including the `(0,
    /// weight)` anchor. Endpoints are always vertices, misses along the
    /// hull are non-increasing, and hull segment slopes are
    /// non-decreasing (marginal gains shrink with size) — the shape the
    /// greedy solver requires.
    #[must_use]
    pub fn hull(&self) -> ConvexHull {
        let mut vertices: Vec<(u64, f64)> = Vec::with_capacity(self.sizes.len());
        for (&size, &ratio) in self.sizes.iter().zip(&self.ratios) {
            let misses = self.weight * ratio;
            // Pop while the previous vertex sits on or above the segment
            // from its predecessor to the new point: slopes along the
            // lower hull must strictly decrease in magnitude (collinear
            // middle vertices are dropped, endpoints never are).
            while vertices.len() >= 2 {
                let (x0, y0) = vertices[vertices.len() - 2];
                let (x1, y1) = vertices[vertices.len() - 1];
                #[allow(clippy::cast_precision_loss)]
                let keep = (y1 - y0) * ((size - x0) as f64) < (misses - y0) * ((x1 - x0) as f64);
                if keep {
                    break;
                }
                vertices.pop();
            }
            vertices.push((size, misses));
        }
        ConvexHull { vertices }
    }
}

/// The lower convex hull of one tenant's expected-miss curve: piecewise
/// linear, non-increasing, with non-decreasing slopes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHull {
    /// `(size, expected misses)` vertices, sizes strictly increasing.
    vertices: Vec<(u64, f64)>,
}

impl ConvexHull {
    /// The hull vertices as `(size, expected misses)` pairs.
    #[must_use]
    pub fn vertices(&self) -> &[(u64, f64)] {
        &self.vertices
    }

    /// Expected misses at an arbitrary size: linear interpolation between
    /// vertices (the probabilistic-timesharing value), saturated beyond
    /// the last vertex.
    #[must_use]
    pub fn misses_at(&self, size: u64) -> f64 {
        match self.vertices.binary_search_by_key(&size, |&(s, _)| s) {
            Ok(i) => self.vertices[i].1,
            Err(i) if i >= self.vertices.len() => self.vertices.last().expect("nonempty").1,
            Err(i) => {
                let (s0, y0) = self.vertices[i - 1];
                let (s1, y1) = self.vertices[i];
                #[allow(clippy::cast_precision_loss)]
                let t = (size - s0) as f64 / (s1 - s0) as f64;
                y0 + (y1 - y0) * t
            }
        }
    }

    /// The misses saved per extra block on the segment starting at or
    /// after `size` (0 beyond the last vertex). This is the greedy
    /// solver's marginal gain.
    #[must_use]
    fn gain_after(&self, size: u64) -> (f64, u64) {
        match self.vertices.iter().position(|&(s, _)| s > size) {
            None => (0.0, 0),
            Some(i) => {
                let (s0, y0) = self.vertices[i - 1];
                let (s1, y1) = self.vertices[i];
                #[allow(clippy::cast_precision_loss)]
                let slope = (y0 - y1) / ((s1 - s0) as f64);
                (slope, s1 - size)
            }
        }
    }
}

/// Per-tenant allocation bounds: a floor the tenant always receives and a
/// cap it never exceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Minimum blocks this tenant must receive.
    pub floor: u64,
    /// Maximum blocks this tenant may receive.
    pub cap: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            floor: 0,
            cap: u64::MAX,
        }
    }
}

/// One tenant's slice of a solved partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The tenant's name.
    pub name: String,
    /// Cache blocks granted.
    pub size: u64,
    /// Traffic weight the prediction is scaled by.
    pub weight: f64,
    /// Expected misses at `size` on the tenant's hull.
    pub predicted_misses: f64,
    /// `predicted_misses / weight` (1.0 for a zero-weight tenant with no
    /// cache, matching the all-miss anchor).
    pub predicted_miss_ratio: f64,
}

/// A solved partition: per-tenant allocations plus the aggregate
/// prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSolution {
    /// The budget the solver was given.
    pub budget: u64,
    /// Per-tenant allocations, in input (tenant) order.
    pub allocations: Vec<Allocation>,
    /// Blocks actually allocated (`<= budget`; saturated curves leave the
    /// remainder unallocated rather than parking it where it saves
    /// nothing).
    pub allocated: u64,
    /// Total traffic weight across tenants.
    pub total_weight: f64,
    /// Predicted traffic-weighted aggregate miss ratio under the
    /// allocation (0.0 when every tenant has zero weight).
    pub predicted_aggregate_miss_ratio: f64,
}

impl PartitionSolution {
    /// The canonical one-line rendering shared by the `PARTITION` wire
    /// answer and the offline CLI: budget, aggregate prediction, then
    /// `name:size:miss_ratio` per tenant in tenant order. Floats use
    /// Rust's shortest round-trip formatting, so the line is
    /// byte-deterministic for identical inputs.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut line = format!(
            "partition {} allocated {} aggregate {}",
            self.budget, self.allocated, self.predicted_aggregate_miss_ratio
        );
        for a in &self.allocations {
            let _ = write!(line, " {}:{}:{}", a.name, a.size, a.predicted_miss_ratio);
        }
        line
    }
}

/// Validates a partition request's shape: tenant list, budget range, and
/// bounds feasibility. Shared by the solver and the DP reference so both
/// reject the same instances with the same words.
fn validate(tenants: &[TenantCurve], budget: u64, bounds: &[Bounds]) -> Result<(), String> {
    if tenants.is_empty() {
        return Err("no tenants to partition (the tenant table is empty)".to_string());
    }
    if budget == 0 {
        return Err("partition budget must be positive".to_string());
    }
    if budget > MAX_PARTITION_BUDGET {
        return Err(format!(
            "partition budget {budget} exceeds the supported maximum {MAX_PARTITION_BUDGET} \
             (2^53 cache blocks)"
        ));
    }
    if bounds.len() != tenants.len() {
        return Err(format!(
            "{} bounds given for {} tenants",
            bounds.len(),
            tenants.len()
        ));
    }
    let mut floor_sum: u128 = 0;
    for (tenant, b) in tenants.iter().zip(bounds) {
        if b.floor > b.cap {
            return Err(format!(
                "tenant {:?}: floor {} exceeds cap {}",
                tenant.name, b.floor, b.cap
            ));
        }
        floor_sum += u128::from(b.floor);
    }
    if floor_sum > u128::from(budget) {
        return Err(format!(
            "per-tenant floors sum to {floor_sum}, more than the budget {budget}"
        ));
    }
    Ok(())
}

/// Builds the solution record for a fixed allocation vector.
fn solution_for(
    tenants: &[TenantCurve],
    hulls: &[ConvexHull],
    budget: u64,
    allocation: &[u64],
) -> PartitionSolution {
    let mut allocations = Vec::with_capacity(tenants.len());
    let mut total_weight = 0.0;
    let mut total_misses = 0.0;
    for ((tenant, hull), &size) in tenants.iter().zip(hulls).zip(allocation) {
        let predicted_misses = hull.misses_at(size);
        let predicted_miss_ratio = if tenant.weight > 0.0 {
            (predicted_misses / tenant.weight).clamp(0.0, 1.0)
        } else {
            1.0 - f64::from(u8::from(size > 0))
        };
        total_weight += tenant.weight;
        total_misses += predicted_misses;
        allocations.push(Allocation {
            name: tenant.name.clone(),
            size,
            weight: tenant.weight,
            predicted_misses,
            predicted_miss_ratio,
        });
    }
    let predicted_aggregate_miss_ratio = if total_weight > 0.0 {
        (total_misses / total_weight).clamp(0.0, 1.0)
    } else {
        0.0
    };
    PartitionSolution {
        budget,
        allocations,
        allocated: allocation.iter().sum(),
        total_weight,
        predicted_aggregate_miss_ratio,
    }
}

/// Splits `budget` across `tenants` to minimize the traffic-weighted
/// aggregate miss ratio, each tenant evaluated on the convex minorant of
/// its curve. `bounds` gives per-tenant floors and caps ([`Bounds`];
/// same length as `tenants`).
///
/// Deterministic: marginal-gain ties break toward the earlier tenant,
/// and blocks that save nothing (gain 0 past a curve's saturation, or a
/// capped tenant) are left unallocated, so `allocated <= budget`.
///
/// # Errors
///
/// Returns a named validation error for an empty tenant list, a zero or
/// over-[`MAX_PARTITION_BUDGET`] budget, mismatched bounds, a floor
/// above its cap, or floors that already exceed the budget.
pub fn solve(
    tenants: &[TenantCurve],
    budget: u64,
    bounds: &[Bounds],
) -> Result<PartitionSolution, String> {
    validate(tenants, budget, bounds)?;
    let hulls: Vec<ConvexHull> = tenants.iter().map(TenantCurve::hull).collect();
    let mut allocation: Vec<u64> = bounds.iter().map(|b| b.floor).collect();
    let mut remaining = budget - allocation.iter().sum::<u64>();

    // Max-heap of (gain per block, tenant). `f64::total_cmp` gives a
    // total order on the finite non-negative gains; ties break toward
    // the lower tenant index, exactly like the unit-by-unit greedy.
    #[derive(PartialEq)]
    struct Candidate {
        gain: f64,
        tenant: usize,
    }
    impl Eq for Candidate {}
    impl Ord for Candidate {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.gain
                .total_cmp(&other.gain)
                .then_with(|| other.tenant.cmp(&self.tenant))
        }
    }
    impl PartialOrd for Candidate {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::with_capacity(tenants.len());
    let push = |heap: &mut std::collections::BinaryHeap<Candidate>,
                hulls: &[ConvexHull],
                t: usize,
                at: u64,
                cap: u64| {
        if at >= cap {
            return;
        }
        let (gain, _) = hulls[t].gain_after(at);
        if gain > 0.0 {
            heap.push(Candidate { gain, tenant: t });
        }
    };
    for t in 0..tenants.len() {
        push(&mut heap, &hulls, t, allocation[t], bounds[t].cap);
    }
    while remaining > 0 {
        let Some(best) = heap.pop() else { break };
        let t = best.tenant;
        // Re-derive the segment at the tenant's *current* allocation: the
        // heap entry may be stale only in the sense that the tenant was
        // never advanced since the push, so the gain still matches.
        let (gain, run) = hulls[t].gain_after(allocation[t]);
        debug_assert!(gain == best.gain, "heap entry went stale");
        let step = run.min(remaining).min(bounds[t].cap - allocation[t]);
        allocation[t] += step;
        remaining -= step;
        push(&mut heap, &hulls, t, allocation[t], bounds[t].cap);
    }
    Ok(solution_for(tenants, &hulls, budget, &allocation))
}

/// The exact dynamic-programming reference the proptests pin [`solve`]
/// against: `f_k(b) = min_a cost_k(a) + f_{k-1}(b - a)` over discretized
/// sizes, on the same hulls, with the same tie-breaking (later tenants
/// take the smallest optimal allocation, pushing ties toward earlier
/// tenants, and zero-gain blocks stay unallocated). `O(n · budget²)` —
/// test-sized instances only.
///
/// # Errors
///
/// Same validation as [`solve`].
pub fn exact_reference(
    tenants: &[TenantCurve],
    budget: u64,
    bounds: &[Bounds],
) -> Result<PartitionSolution, String> {
    validate(tenants, budget, bounds)?;
    let hulls: Vec<ConvexHull> = tenants.iter().map(TenantCurve::hull).collect();
    let b = usize::try_from(budget)
        .map_err(|_| format!("DP reference cannot discretize a budget of {budget} blocks"))?;
    // best[k][r]: minimal cost of tenants 0..k given r blocks.
    let mut best = vec![vec![0.0f64; b + 1]];
    for (t, hull) in hulls.iter().enumerate() {
        let floor = usize::try_from(bounds[t].floor).unwrap_or(usize::MAX);
        let cap = usize::try_from(bounds[t].cap).unwrap_or(usize::MAX);
        let mut row = vec![f64::INFINITY; b + 1];
        for (r, slot) in row.iter_mut().enumerate() {
            for a in floor..=cap.min(r) {
                let cost = hull.misses_at(a as u64) + best[t][r - a];
                if cost < *slot {
                    *slot = cost;
                }
            }
        }
        best.push(row);
    }
    // Reconstruct back to front, choosing the smallest optimal
    // allocation per tenant (exact float equality: ties between
    // mathematically equal splits compute bitwise identically because
    // the cost terms are the same values added in the same order).
    let mut allocation = vec![0u64; tenants.len()];
    let mut r = b;
    for t in (0..tenants.len()).rev() {
        let floor = usize::try_from(bounds[t].floor).unwrap_or(usize::MAX);
        let cap = usize::try_from(bounds[t].cap).unwrap_or(usize::MAX);
        let target = best[t + 1][r];
        let a = (floor..=cap.min(r))
            .find(|&a| hulls[t].misses_at(a as u64) + best[t][r - a] == target)
            .expect("the DP table recorded an achievable minimum");
        allocation[t] = a as u64;
        r -= a;
    }
    Ok(solution_for(tenants, &hulls, budget, &allocation))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(pairs: &[(usize, f64)]) -> Vec<MrcPoint> {
        pairs
            .iter()
            .map(|&(cache_size, miss_ratio)| MrcPoint {
                cache_size,
                miss_ratio,
            })
            .collect()
    }

    fn curve(name: &str, weight: f64, pairs: &[(usize, f64)]) -> TenantCurve {
        TenantCurve::from_points(name, weight, &points(pairs)).unwrap()
    }

    #[test]
    fn from_points_validates_loudly() {
        let bad_weight = TenantCurve::from_points("t", f64::NAN, &[]).unwrap_err();
        assert!(bad_weight.contains("finite non-negative"), "{bad_weight}");
        let zero_size = TenantCurve::from_points("t", 1.0, &points(&[(0, 1.0)])).unwrap_err();
        assert!(zero_size.contains("size-0"), "{zero_size}");
        let unsorted =
            TenantCurve::from_points("t", 1.0, &points(&[(4, 0.5), (4, 0.4)])).unwrap_err();
        assert!(unsorted.contains("strictly increasing"), "{unsorted}");
        let range = TenantCurve::from_points("t", 1.0, &points(&[(1, 1.5)])).unwrap_err();
        assert!(range.contains("outside [0, 1]"), "{range}");
        let rising =
            TenantCurve::from_points("t", 1.0, &points(&[(1, 0.3), (2, 0.9)])).unwrap_err();
        assert!(rising.contains("non-increasing"), "{rising}");
    }

    #[test]
    fn interpolation_anchors_saturates_and_interpolates() {
        let c = curve("t", 10.0, &[(4, 0.5), (8, 0.1)]);
        assert_eq!(c.miss_ratio_at(0), 1.0);
        assert!((c.miss_ratio_at(2) - 0.75).abs() < 1e-12);
        assert_eq!(c.miss_ratio_at(4), 0.5);
        assert!((c.miss_ratio_at(6) - 0.3).abs() < 1e-12);
        assert_eq!(c.miss_ratio_at(8), 0.1);
        assert_eq!(c.miss_ratio_at(100), 0.1);
        assert_eq!(c.max_size(), 8);
    }

    #[test]
    fn hull_cuts_off_a_cliff() {
        // A cyclic-style cliff: no hits at all until size 4, then
        // everything. The raw curve is flat then vertical — concave — so
        // the hull must be the straight chord from the anchor to the
        // cliff bottom.
        let c = curve("cliff", 8.0, &[(1, 1.0), (2, 1.0), (3, 1.0), (4, 0.1)]);
        let hull = c.hull();
        assert_eq!(hull.vertices(), &[(0, 8.0), (4, 8.0 * 0.1)]);
        // Interpolated hull value at 2 is the timeshared average, far
        // below the raw curve's 1.0.
        assert!((hull.misses_at(2) - (8.0 + 0.8) / 2.0).abs() < 1e-12);
        assert_eq!(hull.misses_at(100), 8.0 * 0.1);
    }

    #[test]
    fn hull_keeps_convex_curves_verbatim() {
        let c = curve("convex", 4.0, &[(1, 0.5), (2, 0.3), (4, 0.2), (8, 0.19)]);
        let hull = c.hull();
        assert_eq!(
            hull.vertices(),
            &[
                (0, 4.0),
                (1, 2.0),
                (2, 4.0 * 0.3),
                (4, 4.0 * 0.2),
                (8, 4.0 * 0.19)
            ]
        );
    }

    #[test]
    fn greedy_prefers_the_steeper_tenant() {
        // "hot" saves 9 misses with its first 3 blocks; "cold" saves
        // 0.9. Budget 3 must go entirely to hot.
        let hot = curve("hot", 10.0, &[(3, 0.1)]);
        let cold = curve("cold", 1.0, &[(3, 0.1)]);
        let solution = solve(&[hot, cold], 3, &[Bounds::default(), Bounds::default()]).unwrap();
        assert_eq!(solution.allocations[0].size, 3);
        assert_eq!(solution.allocations[1].size, 0);
        assert_eq!(solution.allocated, 3);
        assert!((solution.allocations[0].predicted_miss_ratio - 0.1).abs() < 1e-12);
        assert_eq!(solution.allocations[1].predicted_miss_ratio, 1.0);
    }

    #[test]
    fn saturated_curves_leave_budget_unallocated() {
        let t = curve("t", 4.0, &[(2, 0.25)]);
        let solution = solve(&[t], 100, &[Bounds::default()]).unwrap();
        assert_eq!(solution.allocations[0].size, 2);
        assert_eq!(solution.allocated, 2);
    }

    #[test]
    fn floors_and_caps_bind() {
        let hot = curve("hot", 10.0, &[(4, 0.1)]);
        let cold = curve("cold", 1.0, &[(4, 0.1)]);
        let solution = solve(
            &[hot, cold],
            6,
            &[
                Bounds { floor: 0, cap: 3 },
                Bounds {
                    floor: 2,
                    cap: u64::MAX,
                },
            ],
        )
        .unwrap();
        assert_eq!(solution.allocations[0].size, 3); // capped below its wish
        assert!(solution.allocations[1].size >= 2); // floor honored
        assert!(solution.allocated <= 6);
    }

    #[test]
    fn equal_curves_tie_break_toward_the_first_tenant() {
        let a = curve("a", 2.0, &[(4, 0.5)]);
        let b = curve("b", 2.0, &[(4, 0.5)]);
        let solution = solve(&[a, b], 4, &[Bounds::default(), Bounds::default()]).unwrap();
        assert_eq!(solution.allocations[0].size, 4);
        assert_eq!(solution.allocations[1].size, 0);
    }

    #[test]
    fn zero_weight_tenants_get_nothing_and_cost_nothing() {
        let idle = curve("idle", 0.0, &[(4, 0.5)]);
        let busy = curve("busy", 5.0, &[(4, 0.5)]);
        let solution = solve(&[idle, busy], 4, &[Bounds::default(), Bounds::default()]).unwrap();
        assert_eq!(solution.allocations[0].size, 0);
        assert_eq!(solution.allocations[1].size, 4);
        assert_eq!(solution.allocations[0].predicted_miss_ratio, 1.0);
    }

    #[test]
    fn validation_errors_are_named() {
        let t = curve("t", 1.0, &[(2, 0.5)]);
        let empty = solve(&[], 4, &[]).unwrap_err();
        assert!(empty.contains("no tenants"), "{empty}");
        let zero = solve(std::slice::from_ref(&t), 0, &[Bounds::default()]).unwrap_err();
        assert!(zero.contains("must be positive"), "{zero}");
        let absurd = solve(
            std::slice::from_ref(&t),
            MAX_PARTITION_BUDGET + 1,
            &[Bounds::default()],
        )
        .unwrap_err();
        assert!(absurd.contains("exceeds the supported maximum"), "{absurd}");
        let bounds = solve(std::slice::from_ref(&t), 4, &[]).unwrap_err();
        assert!(bounds.contains("bounds"), "{bounds}");
        let crossed =
            solve(std::slice::from_ref(&t), 4, &[Bounds { floor: 3, cap: 1 }]).unwrap_err();
        assert!(crossed.contains("floor 3 exceeds cap 1"), "{crossed}");
        let overfloored = solve(
            std::slice::from_ref(&t),
            4,
            &[Bounds {
                floor: 9,
                cap: u64::MAX,
            }],
        )
        .unwrap_err();
        assert!(
            overfloored.contains("more than the budget"),
            "{overfloored}"
        );
    }

    #[test]
    fn greedy_matches_dp_on_a_cliffy_instance() {
        // Two cliffs at different sizes with different weights: the exact
        // instance class plain greedy (no hull) gets wrong.
        let a = curve("a", 6.0, &[(1, 1.0), (2, 1.0), (3, 0.2)]);
        let b = curve("b", 4.0, &[(1, 1.0), (2, 0.1)]);
        for budget in 1..=6 {
            let bounds = [Bounds::default(), Bounds::default()];
            let greedy = solve(&[a.clone(), b.clone()], budget, &bounds).unwrap();
            let dp = exact_reference(&[a.clone(), b.clone()], budget, &bounds).unwrap();
            assert_eq!(
                greedy
                    .allocations
                    .iter()
                    .map(|x| x.size)
                    .collect::<Vec<_>>(),
                dp.allocations.iter().map(|x| x.size).collect::<Vec<_>>(),
                "budget {budget}"
            );
            assert!(
                (greedy.predicted_aggregate_miss_ratio - dp.predicted_aggregate_miss_ratio).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn render_compact_is_deterministic_and_complete() {
        let a = curve("alpha", 6.0, &[(2, 0.5)]);
        let b = curve("beta", 2.0, &[(2, 0.25)]);
        let solution = solve(&[a, b], 4, &[Bounds::default(), Bounds::default()]).unwrap();
        let line = solution.render_compact();
        assert!(
            line.starts_with("partition 4 allocated 4 aggregate "),
            "{line}"
        );
        assert!(line.contains(" alpha:2:"), "{line}");
        assert!(line.contains(" beta:2:"), "{line}");
        let again = solve(
            &[
                curve("alpha", 6.0, &[(2, 0.5)]),
                curve("beta", 2.0, &[(2, 0.25)]),
            ],
            4,
            &[Bounds::default(), Bounds::default()],
        )
        .unwrap();
        assert_eq!(again.render_compact(), line);
    }
}
