//! The unified resumable-job API: one trait, one runner, one checkpoint
//! lifecycle for every unit-parallel pipeline in the workspace.
//!
//! Before this module existed the workspace carried four near-duplicate
//! resumable-execution implementations — [`crate::shard::ShardedSweep`],
//! [`crate::shard::SampledSweep`], [`crate::tracesweep::TraceIngest`] and
//! [`crate::tracesweep::SampledIngest`] — each hand-rolling the same
//! lifecycle: partition the work into deterministic units, run pending
//! units in parallel, absorb completed partials in unit order, save an
//! atomic JSON checkpoint every batch, and resume from a checkpoint that
//! matches the plan. This module is that lifecycle, written once:
//!
//! * [`Job`] — the contract a pipeline implements: deterministic unit
//!   enumeration ([`Job::unit_count`] / [`Job::pending_units`]), per-unit
//!   execution producing a mergeable partial ([`Job::run_span`]),
//!   in-order absorption ([`Job::absorb`]), a checkpoint codec built on
//!   [`crate::jsonio`] ([`Job::to_json`] + the shared
//!   [`write_checkpoint_header`] / [`parse_checkpoint`] pair), and a
//!   [`Job::fingerprint`] identity embedded in every checkpoint.
//! * [`JobRunner`] — the generic runner that owns parallel unit
//!   scheduling over [`symloc_par::parallel_reduce_chunked`]
//!   (`std::thread::scope` underneath), bounded in-flight checkpointing
//!   with atomic saves ([`crate::jsonio::save_atomic`]), progress
//!   callbacks, and the deterministic unit-order merge. Every
//!   `run_pending` / `run_with_checkpoint` / `save` across the four
//!   pipelines is a thin delegation into this runner.
//! * [`JobKind`] — the closed registry of checkpoint kinds, used to
//!   dispatch `symloc job status` / `symloc job resume` on whatever kind
//!   a checkpoint file records, and to make cross-kind resumes
//!   ([`resume_or_new_with`]) a loud, descriptive error instead of a
//!   silently discarded file.
//!
//! # Execution model
//!
//! A job is a fixed, deterministically planned sequence of **units**
//! (rank shards, sample levels, trace chunks, hash shards). The runner
//! repeatedly takes a prefix of the pending units, fans a contiguous span
//! of them out to each worker ([`Job::run_span`] — so a worker can hold
//! per-span state such as a single streaming pass over a trace), then
//! absorbs the resulting `(unit, partial)` pairs strictly in unit order.
//! Two knobs let each pipeline keep its historical scheduling shape:
//!
//! * [`Job::units_per_pass`] — how many units one parallel pass may
//!   schedule. Jobs whose single unit is *internally* parallel (the
//!   exhaustive sweep shard) return 1 so the runner feeds them one unit
//!   at a time on the caller thread; jobs whose merge state advances
//!   between passes (the exact trace ingest) return the thread count.
//! * [`Job::units_per_checkpoint`] — how many units complete between
//!   checkpoint saves in [`JobRunner::run_with_checkpoint`].
//!
//! Because units are deterministic and absorption is ordered, resuming a
//! killed job from its checkpoint reproduces the uninterrupted run
//! *byte-identically* — the invariant `core/tests/job_props.rs` pins for
//! all four pipelines at every unit boundary.

use crate::jsonio::{self, JsonValue};
use crate::obs::{MetricsRegistry, Span};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use symloc_par::parallel_reduce_chunked;

/// The closed set of resumable-job kinds the workspace knows, keyed by the
/// `"kind"` tag embedded in every checkpoint document.
///
/// The registry is what lets `symloc job status <ckpt>` and
/// `symloc job resume <ckpt>` dispatch on a checkpoint file alone, and
/// what turns a cross-kind resume (say, pointing an exhaustive sweep at a
/// sampled-sweep checkpoint) into a descriptive error instead of garbage
/// or silent data loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// An exhaustive rank-sharded sweep ([`crate::shard::ShardedSweep`]).
    ShardedSweep,
    /// A sampled level-sharded sweep ([`crate::shard::SampledSweep`]).
    SampledSweep,
    /// An exact chunk-sharded trace ingest
    /// ([`crate::tracesweep::TraceIngest`]).
    TraceIngest,
    /// A sampled hash-sharded trace ingest
    /// ([`crate::tracesweep::SampledIngest`]).
    SampledIngest,
    /// A fused exact+sampled trace ingest — one streaming pass feeding
    /// both engines ([`crate::tracesweep::FusedIngest`]).
    FusedIngest,
    /// The persisted tenant table of the `symloc serve` daemon
    /// ([`crate::serve::ServeState`]).
    ServeState,
}

impl JobKind {
    /// Every kind, in registry order.
    pub const ALL: [JobKind; 6] = [
        JobKind::ShardedSweep,
        JobKind::SampledSweep,
        JobKind::TraceIngest,
        JobKind::SampledIngest,
        JobKind::FusedIngest,
        JobKind::ServeState,
    ];

    /// The `"kind"` tag this kind writes into (and expects from) its
    /// checkpoint documents.
    #[must_use]
    pub const fn kind_str(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "symloc_sweep_checkpoint",
            JobKind::SampledSweep => "symloc_sampled_sweep_checkpoint",
            JobKind::TraceIngest => "symloc_trace_ingest_checkpoint",
            JobKind::SampledIngest => "symloc_sampled_trace_checkpoint",
            JobKind::FusedIngest => "symloc_fused_trace_checkpoint",
            JobKind::ServeState => "symloc_serve_checkpoint",
        }
    }

    /// The checkpoint schema version this kind currently writes.
    #[must_use]
    pub const fn version(self) -> u64 {
        1
    }

    /// A short human description, used in mismatch errors and status
    /// reports.
    #[must_use]
    pub const fn describe(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "exhaustive sharded sweep",
            JobKind::SampledSweep => "sampled (level-sharded) sweep",
            JobKind::TraceIngest => "exact trace ingest",
            JobKind::SampledIngest => "sampled (hash-sharded) trace ingest",
            JobKind::FusedIngest => "fused exact+sampled trace ingest",
            JobKind::ServeState => "multi-tenant serve state",
        }
    }

    /// What a unit of this kind is called in progress reports.
    #[must_use]
    pub const fn unit_name(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "shard",
            JobKind::SampledSweep => "level",
            JobKind::TraceIngest => "chunk",
            JobKind::SampledIngest => "hash shard",
            JobKind::FusedIngest => "chunk",
            JobKind::ServeState => "tenant",
        }
    }

    /// Looks a kind tag up in the registry.
    #[must_use]
    pub fn parse(tag: &str) -> Option<JobKind> {
        JobKind::ALL.into_iter().find(|k| k.kind_str() == tag)
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind_str())
    }
}

/// One checkpointable, unit-parallel, resumable job.
///
/// Implementors own their plan and their completed state; the trait
/// exposes enough of both for [`JobRunner`] to drive the whole lifecycle.
/// See the [module docs](self) for the execution model and the two
/// scheduling knobs.
pub trait Job: Sync {
    /// The mergeable result of one completed unit.
    type Partial: Send;

    /// The kind tag of this job's checkpoints.
    fn kind(&self) -> JobKind;

    /// Stable identity of the job's plan, embedded in checkpoints so a
    /// resume can tell whether a checkpoint belongs to the job it is
    /// about to continue.
    fn fingerprint(&self) -> String;

    /// Worker threads the job was configured with.
    fn threads(&self) -> usize;

    /// Total number of planned units.
    fn unit_count(&self) -> usize;

    /// Number of completed units.
    fn completed_count(&self) -> usize;

    /// The pending unit indices, in the deterministic order they must be
    /// absorbed. The runner always takes a prefix of this list.
    fn pending_units(&self) -> Vec<usize>;

    /// Maximum units one parallel pass may schedule. Return 1 when a
    /// single unit is internally parallel (so passes stay sequential over
    /// units), the thread count when absorbed state must advance between
    /// passes, or `usize::MAX` to let one pass cover everything pending.
    fn units_per_pass(&self, threads: usize) -> usize {
        let _ = threads;
        usize::MAX
    }

    /// Units between checkpoint saves in
    /// [`JobRunner::run_with_checkpoint`].
    fn units_per_checkpoint(&self, threads: usize) -> usize {
        threads
    }

    /// Executes a contiguous span of pending `units` on one worker,
    /// appending `(unit, partial)` pairs **in unit order**. Must be
    /// deterministic in the unit indices alone (never in which worker ran
    /// the span), so results are thread- and batching-invariant.
    fn run_span(&self, units: &[usize], out: &mut Vec<(usize, Self::Partial)>);

    /// Absorbs one completed unit's partial. The runner calls this in
    /// strict unit order, once per unit.
    fn absorb(&mut self, unit: usize, partial: Self::Partial);

    /// Serializes the job — plan, progress, completed state — as a JSON
    /// checkpoint document (header via [`write_checkpoint_header`]).
    fn to_json(&self) -> String;

    /// An optional kind-specific progress counter for heartbeats — e.g.
    /// `("accesses", streamed)` for the trace ingests. `None` (the
    /// default) means the job only reports unit counts.
    fn progress_items(&self) -> Option<(&'static str, u64)> {
        None
    }
}

/// The generic driver of every [`Job`]: parallel unit scheduling,
/// bounded checkpointing with atomic saves, progress callbacks, and the
/// deterministic unit-order merge. Stateless — all state lives in the
/// job itself, which is what makes the checkpoints self-contained.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobRunner;

/// Accumulator shape of one metered parallel pass: the unit-ordered
/// `(unit index, partial)` results, plus each worker span's
/// `(elapsed nanos, units in span)` timing (empty when unmetered).
type PassResults<P> = (Vec<(usize, P)>, Vec<(u64, usize)>);

impl JobRunner {
    /// True when every unit of `job` has been absorbed.
    #[must_use]
    pub fn is_complete<J: Job + ?Sized>(job: &J) -> bool {
        job.completed_count() >= job.unit_count()
    }

    /// Runs up to `limit` pending units (all of them when `None`) in
    /// parallel passes of at most [`Job::units_per_pass`] units, absorbing
    /// partials in unit order after each pass. Returns how many units were
    /// processed.
    pub fn run_pending<J: Job + ?Sized>(job: &mut J, limit: Option<usize>) -> usize {
        Self::run_pending_metered(job, limit, None)
    }

    /// [`JobRunner::run_pending`] with optional instrumentation: when
    /// `metrics` is supplied, each worker span's wall time rides back with
    /// its results (shard-per-worker, merged like the partials themselves)
    /// and is folded into the registry after the pass — `job.unit_nanos`
    /// (each unit's share of its worker span), `job.absorb_nanos` (the
    /// sequential merge), and the `job.units` / `job.passes` counters.
    ///
    /// Metering is result-invariant: the scheduling, the unit order and
    /// every absorbed partial are identical with and without a registry —
    /// the registry only receives copies of timings and counts.
    pub fn run_pending_metered<J: Job + ?Sized>(
        job: &mut J,
        limit: Option<usize>,
        mut metrics: Option<&mut MetricsRegistry>,
    ) -> usize {
        let threads = job.threads().max(1);
        let mut ran = 0usize;
        loop {
            if limit.is_some_and(|l| ran >= l) {
                break;
            }
            let pending = job.pending_units();
            if pending.is_empty() {
                break;
            }
            let cap = limit.map_or(usize::MAX, |l| l - ran);
            let pass = pending
                .len()
                .min(cap)
                .min(job.units_per_pass(threads).max(1));
            let units = &pending[..pass];
            // One parallel pass: contiguous spans of the unit prefix go to
            // the workers; concatenating the per-span vectors preserves
            // unit order, so absorption below is deterministic. Worker
            // span timings (metered runs only) ride along in the same
            // accumulator.
            let shared: &J = job;
            let metered = metrics.is_some();
            let (results, span_times): PassResults<J::Partial> = parallel_reduce_chunked(
                units.len(),
                threads,
                || (Vec::new(), Vec::new()),
                |mut acc, chunk| {
                    if !chunk.is_empty() {
                        let span = metered.then(Span::start);
                        shared.run_span(&units[chunk.start..chunk.end], &mut acc.0);
                        if let Some(span) = span {
                            acc.1.push((span.elapsed_nanos(), chunk.end - chunk.start));
                        }
                    }
                    acc
                },
                |mut a, b| {
                    a.0.extend(b.0);
                    a.1.extend(b.1);
                    a
                },
            );
            debug_assert!(
                results.windows(2).all(|w| w[0].0 < w[1].0),
                "span results must arrive in unit order"
            );
            if let Some(reg) = metrics.as_deref_mut() {
                for &(nanos, units_in_span) in &span_times {
                    let share = nanos / units_in_span.max(1) as u64;
                    for _ in 0..units_in_span {
                        reg.observe("job.unit_nanos", share);
                    }
                }
                reg.add("job.passes", 1);
                reg.add("job.units", pass as u64);
                for (unit, partial) in results {
                    let span = Span::start();
                    job.absorb(unit, partial);
                    span.record(reg, "job.absorb_nanos");
                }
            } else {
                for (unit, partial) in results {
                    job.absorb(unit, partial);
                }
            }
            ran += pass;
        }
        ran
    }

    /// Runs pending units — all of them, or up to `limit` — saving the
    /// checkpoint to `path` atomically after every batch of (at most)
    /// [`Job::units_per_checkpoint`] units, so a kill loses at most one
    /// batch (and a kill mid-save leaves the previous checkpoint intact).
    /// `on_batch(completed, total)` fires after every save. The
    /// checkpoint is (re)written even when nothing was pending, so a
    /// fresh plan always lands on disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint<J: Job + ?Sized>(
        job: &mut J,
        path: &Path,
        limit: Option<usize>,
        on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        Self::run_with_checkpoint_metered(job, path, limit, None, on_batch)
    }

    /// [`JobRunner::run_with_checkpoint`] with optional instrumentation:
    /// units run through [`JobRunner::run_pending_metered`], every save's
    /// latency lands in the `job.save_nanos` histogram, and the heartbeat's
    /// throughput/ETA figures are mirrored as gauges. Like the plain
    /// checkpoint loop this variant writes the [`Heartbeat`] sidecar after
    /// every batch; metering never changes the checkpoint bytes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written (heartbeat
    /// sidecar writes are best-effort and never fail the run).
    pub fn run_with_checkpoint_metered<J: Job + ?Sized>(
        job: &mut J,
        path: &Path,
        limit: Option<usize>,
        mut metrics: Option<&mut MetricsRegistry>,
        mut on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        let threads = job.threads().max(1);
        let run_span = Span::start();
        let started_at = job.completed_count();
        let mut batches = 0u64;
        let mut ran = 0usize;
        while !Self::is_complete(job) && limit.is_none_or(|l| ran < l) {
            let batch = job
                .units_per_checkpoint(threads)
                .max(1)
                .min(limit.map_or(usize::MAX, |l| l - ran));
            let batch_span = Span::start();
            let before = job.completed_count();
            ran += Self::run_pending_metered(job, Some(batch), metrics.as_deref_mut());
            let save_span = Span::start();
            Self::save(job, path)?;
            let save_nanos = save_span.elapsed_nanos();
            batches += 1;
            let heartbeat = Heartbeat::of(job, &run_span, &batch_span, started_at, before, batches);
            heartbeat.write_sidecar(path);
            if let Some(reg) = metrics.as_deref_mut() {
                reg.observe("job.save_nanos", save_nanos);
                reg.add("job.batches", 1);
                heartbeat.record_gauges(reg);
            }
            on_batch(job.completed_count(), job.unit_count());
        }
        if ran == 0 {
            Self::save(job, path)?;
        }
        if Self::is_complete(job) {
            // The sidecar is live in-flight state; a completed run cleans
            // it up so `job status` never reads a finished job's last
            // heartbeat as live progress.
            let _ = std::fs::remove_file(Heartbeat::sidecar_path(path));
        }
        Ok(ran)
    }

    /// Writes the job's checkpoint to `path` atomically (temp file +
    /// rename, via [`crate::jsonio::save_atomic`]) — the single save path
    /// every checkpointing pipeline goes through.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save<J: Job + ?Sized>(job: &J, path: &Path) -> std::io::Result<()> {
        jsonio::save_atomic(path, &job.to_json())
    }
}

/// The `"kind"` tag of a heartbeat sidecar document.
pub const HEARTBEAT_KIND: &str = "symloc_job_heartbeat";
/// The heartbeat sidecar schema version.
pub const HEARTBEAT_VERSION: u64 = 1;

/// The live-progress sidecar [`JobRunner::run_with_checkpoint`] writes
/// next to the checkpoint (`<ckpt>.hb`) after every batch: units done,
/// kind-specific progress items ([`Job::progress_items`]), instantaneous
/// and cumulative throughput, and an ETA. `symloc job status` reads it to
/// report live progress on an in-flight checkpoint.
///
/// The sidecar is strictly advisory: writes are best-effort, a missing or
/// corrupt file degrades status to checkpoint-only detail, and nothing
/// ever reads a heartbeat back into a computation — checkpoint bytes are
/// identical with or without one.
#[derive(Debug, Clone, PartialEq)]
pub struct Heartbeat {
    /// The kind of the job that wrote the heartbeat.
    pub job_kind: JobKind,
    /// The job's plan fingerprint (must match the checkpoint's to count
    /// as live).
    pub fingerprint: String,
    /// Completed units when the heartbeat was written.
    pub completed: usize,
    /// Total planned units.
    pub total: usize,
    /// Checkpoint batches saved by this run so far.
    pub batches: u64,
    /// Kind-specific progress counter, e.g. `("accesses", streamed)`.
    pub items: Option<(String, u64)>,
    /// Wall-clock seconds since this run started.
    pub elapsed_secs: f64,
    /// Cumulative units/sec over this run.
    pub units_per_sec: f64,
    /// Units/sec over the last batch alone.
    pub instant_units_per_sec: f64,
    /// Estimated seconds to completion at the instantaneous rate when it
    /// is positive, else the cumulative rate (see [`eta_secs_from`]).
    pub eta_secs: Option<f64>,
}

/// The ETA rule shared by every heartbeat: estimate from the
/// *instantaneous* rate of the last batch when it is positive and finite,
/// falling back to the cumulative rate otherwise. A cumulative-only ETA
/// freezes at an ever-optimistic figure when a job stalls after a fast
/// start; the instant rate tracks the stall (and `None` signals "no
/// forward progress" honestly once both rates hit zero).
#[must_use]
pub fn eta_secs_from(
    remaining: usize,
    units_per_sec: f64,
    instant_units_per_sec: f64,
) -> Option<f64> {
    let rate = if instant_units_per_sec > 0.0 && instant_units_per_sec.is_finite() {
        instant_units_per_sec
    } else {
        units_per_sec
    };
    (rate > 0.0 && rate.is_finite()).then(|| remaining as f64 / rate)
}

impl Heartbeat {
    /// The sidecar path for a checkpoint: the checkpoint path with `.hb`
    /// appended (`sweep.ckpt.json` → `sweep.ckpt.json.hb`).
    #[must_use]
    pub fn sidecar_path(checkpoint: &Path) -> PathBuf {
        let mut os = checkpoint.as_os_str().to_os_string();
        os.push(".hb");
        PathBuf::from(os)
    }

    /// Snapshots a job's live progress mid-checkpoint-loop. `run_span` /
    /// `batch_span` time the whole run and the last batch; `started_at` /
    /// `before` are the completed counts when the run and the batch began.
    fn of<J: Job + ?Sized>(
        job: &J,
        run_span: &Span,
        batch_span: &Span,
        started_at: usize,
        before: usize,
        batches: u64,
    ) -> Heartbeat {
        let completed = job.completed_count();
        let total = job.unit_count();
        let elapsed = run_span.elapsed_secs();
        let units_per_sec = if elapsed > 0.0 {
            (completed - started_at) as f64 / elapsed
        } else {
            0.0
        };
        let batch_elapsed = batch_span.elapsed_secs();
        let instant_units_per_sec = if batch_elapsed > 0.0 {
            (completed - before) as f64 / batch_elapsed
        } else {
            0.0
        };
        let eta_secs = eta_secs_from(
            total.saturating_sub(completed),
            units_per_sec,
            instant_units_per_sec,
        );
        Heartbeat {
            job_kind: job.kind(),
            fingerprint: job.fingerprint(),
            completed,
            total,
            batches,
            items: job
                .progress_items()
                .map(|(name, done)| (name.to_string(), done)),
            elapsed_secs: elapsed,
            units_per_sec,
            instant_units_per_sec,
            eta_secs,
        }
    }

    /// True when this heartbeat describes exactly the run the checkpoint
    /// summarized by `status` is in — same kind, fingerprint and progress.
    /// A mismatch means the sidecar is stale (an older run, or a kill
    /// between the checkpoint save and the heartbeat write).
    #[must_use]
    pub fn matches(&self, status: &JobStatus) -> bool {
        self.job_kind == status.kind
            && self.fingerprint == status.fingerprint
            && self.completed == status.completed
            && self.total == status.total
    }

    /// Mirrors the heartbeat's figures into `registry` as gauges.
    pub fn record_gauges(&self, registry: &mut MetricsRegistry) {
        registry.set_gauge("job.elapsed_secs", self.elapsed_secs);
        registry.set_gauge("job.units_per_sec", self.units_per_sec);
        registry.set_gauge("job.instant_units_per_sec", self.instant_units_per_sec);
        if let Some(eta) = self.eta_secs {
            registry.set_gauge("job.eta_secs", eta);
        }
        if let Some((name, done)) = &self.items {
            registry.set_gauge(&format!("job.{name}_done"), *done as f64);
            if self.elapsed_secs > 0.0 {
                registry.set_gauge(
                    &format!("job.{name}_per_sec"),
                    *done as f64 / self.elapsed_secs,
                );
            }
        }
    }

    /// Renders the heartbeat as its sidecar JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"kind\": \"{HEARTBEAT_KIND}\",");
        let _ = writeln!(out, "  \"version\": {HEARTBEAT_VERSION},");
        let _ = writeln!(out, "  \"job_kind\": \"{}\",", self.job_kind.kind_str());
        let _ = writeln!(
            out,
            "  \"fingerprint\": \"{}\",",
            jsonio::escape(&self.fingerprint)
        );
        let _ = writeln!(out, "  \"completed\": {},", self.completed);
        let _ = writeln!(out, "  \"total\": {},", self.total);
        let _ = writeln!(out, "  \"batches\": {},", self.batches);
        if let Some((name, done)) = &self.items {
            let _ = writeln!(out, "  \"items_name\": \"{}\",", jsonio::escape(name));
            let _ = writeln!(out, "  \"items_done\": {done},");
        }
        let _ = writeln!(out, "  \"elapsed_secs\": {},", self.elapsed_secs);
        let _ = writeln!(out, "  \"units_per_sec\": {},", self.units_per_sec);
        let _ = writeln!(
            out,
            "  \"instant_units_per_sec\": {},",
            self.instant_units_per_sec
        );
        let eta = self
            .eta_secs
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let _ = writeln!(out, "  \"eta_secs\": {eta}");
        out.push_str("}\n");
        out
    }

    /// Parses a sidecar document written by [`Heartbeat::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error on malformed JSON, a wrong kind tag, an
    /// unsupported version, an unregistered job kind, or missing fields —
    /// callers treat every error as "no live heartbeat", never a failure.
    pub fn from_json(text: &str) -> Result<Heartbeat, String> {
        let doc = jsonio::parse(text)?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some(HEARTBEAT_KIND) => {}
            other => {
                return Err(format!(
                    "not a {HEARTBEAT_KIND} document (kind = {other:?})"
                ))
            }
        }
        let version = doc.get("version").and_then(JsonValue::as_u64);
        if version != Some(HEARTBEAT_VERSION) {
            return Err(format!("unsupported heartbeat version {version:?}"));
        }
        let tag = doc
            .get("job_kind")
            .and_then(JsonValue::as_str)
            .ok_or("heartbeat missing job_kind")?;
        let job_kind =
            JobKind::parse(tag).ok_or_else(|| format!("unknown heartbeat job kind {tag:?}"))?;
        let fingerprint = doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or("heartbeat missing fingerprint")?
            .to_string();
        let count = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("heartbeat missing {key}"))
        };
        let rate = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("heartbeat missing {key}"))
        };
        let items = match (
            doc.get("items_name").and_then(JsonValue::as_str),
            doc.get("items_done").and_then(JsonValue::as_u64),
        ) {
            (Some(name), Some(done)) => Some((name.to_string(), done)),
            (None, None) => None,
            _ => return Err("heartbeat items_name/items_done must appear together".to_string()),
        };
        let eta_secs = match doc.get("eta_secs") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(v.as_f64().ok_or("heartbeat eta_secs is not a number")?),
        };
        Ok(Heartbeat {
            job_kind,
            fingerprint,
            completed: count("completed")?,
            total: count("total")?,
            batches: doc
                .get("batches")
                .and_then(JsonValue::as_u64)
                .ok_or("heartbeat missing batches")?,
            items,
            elapsed_secs: rate("elapsed_secs")?,
            units_per_sec: rate("units_per_sec")?,
            instant_units_per_sec: rate("instant_units_per_sec")?,
            eta_secs,
        })
    }

    /// Reads the sidecar next to `checkpoint`: `None` when no sidecar
    /// exists (or it cannot be read), the parse result otherwise.
    #[must_use]
    pub fn load(checkpoint: &Path) -> Option<Result<Heartbeat, String>> {
        let text = std::fs::read_to_string(Self::sidecar_path(checkpoint)).ok()?;
        Some(Heartbeat::from_json(&text))
    }

    /// Best-effort sidecar write next to `checkpoint` — heartbeats are
    /// advisory, so failures are swallowed.
    fn write_sidecar(&self, checkpoint: &Path) {
        let _ = std::fs::write(Self::sidecar_path(checkpoint), self.to_json());
    }
}

/// Writes the shared checkpoint header — opening brace, kind, version,
/// fingerprint — in the exact byte layout every pipeline has always used,
/// so checkpoints stay byte-compatible across the port onto [`Job`].
pub fn write_checkpoint_header(out: &mut String, kind: JobKind, fingerprint: &str) {
    out.push_str("{\n");
    let _ = writeln!(out, "  \"kind\": \"{}\",", kind.kind_str());
    let _ = writeln!(out, "  \"version\": {},", kind.version());
    let _ = writeln!(
        out,
        "  \"fingerprint\": \"{}\",",
        jsonio::escape(fingerprint)
    );
}

/// Parses a checkpoint document and validates its header against the
/// expected kind and version, returning the parsed document for the
/// caller's body decoder.
///
/// # Errors
///
/// Returns a descriptive error on malformed JSON, a missing kind, an
/// unsupported version — and, crucially, a **kind mismatch**: a document
/// of another registered kind names both kinds and points at
/// `symloc job resume`, so resuming a checkpoint with the wrong command
/// can never quietly misparse it.
pub fn parse_checkpoint(text: &str, expected: JobKind) -> Result<JsonValue, String> {
    let doc = jsonio::parse(text)?;
    match doc.get("kind").and_then(JsonValue::as_str) {
        None => {
            return Err(format!(
                "not a {} checkpoint (no kind field)",
                expected.describe()
            ))
        }
        Some(tag) if tag != expected.kind_str() => {
            return Err(match JobKind::parse(tag) {
                Some(found) => format!(
                    "checkpoint kind mismatch: this file holds a {} ({:?}), not the {} \
                     ({:?}) being decoded; resume it with the matching command or \
                     `symloc job resume`",
                    found.describe(),
                    tag,
                    expected.describe(),
                    expected.kind_str(),
                ),
                None => format!("not a {} checkpoint (kind = {tag:?})", expected.describe()),
            });
        }
        Some(_) => {}
    }
    let version = doc.get("version").and_then(JsonValue::as_u64);
    if version != Some(expected.version()) {
        return Err(format!("unsupported checkpoint version {version:?}"));
    }
    Ok(doc)
}

/// The kind recorded in a checkpoint document, if it parses as JSON and
/// carries a registered kind tag.
#[must_use]
pub fn sniff_kind(text: &str) -> Option<JobKind> {
    let doc = jsonio::parse(text).ok()?;
    JobKind::parse(doc.get("kind")?.as_str()?)
}

/// The shared resume policy of every pipeline: load the checkpoint at
/// `path` or plan a fresh job.
///
/// * No file (or unreadable): fresh plan.
/// * A checkpoint of a **different registered kind**: a loud error naming
///   both kinds — a sampled-sweep checkpoint must never be silently
///   discarded (or worse, misread) by an exhaustive sweep, and vice versa
///   for every cross-kind pair.
/// * The right kind but a plan that fails `matches` (different spec,
///   seed, source, shard count, ...): fresh plan, the stale file left
///   untouched on disk until the next save (callers warn about this).
/// * The right kind and a matching plan: resumed; the returned flag says
///   whether any completed progress actually came back.
///
/// # Errors
///
/// Returns the cross-kind mismatch error described above.
pub fn resume_or_new_with<T>(
    path: &Path,
    expected: JobKind,
    decode: impl FnOnce(&str) -> Result<T, String>,
    matches: impl FnOnce(&T) -> bool,
    completed: impl FnOnce(&T) -> usize,
    fresh: impl FnOnce() -> T,
) -> Result<(T, bool), String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok((fresh(), false));
    };
    if let Some(found) = sniff_kind(&text) {
        if found != expected {
            return Err(format!(
                "checkpoint {} holds a {} ({:?}), not the {} this command would resume; \
                 resume it with the matching command (or `symloc job resume`), or point \
                 the checkpoint flag at a different file",
                path.display(),
                found.describe(),
                found.kind_str(),
                expected.describe(),
            ));
        }
    }
    match decode(&text) {
        Ok(job) if matches(&job) => {
            let resumed = completed(&job) > 0;
            Ok((job, resumed))
        }
        _ => Ok((fresh(), false)),
    }
}

/// A kind-agnostic summary of a checkpoint document, the payload of
/// `symloc job status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The checkpoint's kind.
    pub kind: JobKind,
    /// The job's plan fingerprint.
    pub fingerprint: String,
    /// Completed units.
    pub completed: usize,
    /// Total planned units.
    pub total: usize,
    /// Kind-specific `(label, value)` detail lines.
    pub detail: Vec<(String, String)>,
}

impl JobStatus {
    /// True when every unit has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total
    }
}

/// Decodes any registered checkpoint document into a [`JobStatus`],
/// dispatching on the kind the document itself records.
///
/// # Errors
///
/// Returns a descriptive error for unparseable documents, unknown kinds,
/// or structurally invalid bodies (via the kind's own decoder).
pub fn checkpoint_status(text: &str) -> Result<JobStatus, String> {
    let doc = jsonio::parse(text)?;
    let tag = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("not a symloc checkpoint (no kind field)")?;
    let kind = JobKind::parse(tag)
        .ok_or_else(|| format!("unknown checkpoint kind {tag:?} (not a registered job)"))?;
    let detail_pair = |label: &str, value: String| (label.to_string(), value);
    match kind {
        JobKind::ShardedSweep => {
            let sweep = crate::shard::ShardedSweep::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: sweep.spec().fingerprint(),
                completed: sweep.completed_count(),
                total: sweep.shard_count(),
                detail: vec![detail_pair("degree m", sweep.spec().m.to_string())],
            })
        }
        JobKind::SampledSweep => {
            let sweep = crate::shard::SampledSweep::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: sweep.spec().fingerprint(),
                completed: sweep.completed_count(),
                total: sweep.level_count(),
                detail: vec![
                    detail_pair("degree m", sweep.spec().m.to_string()),
                    detail_pair("budget", sweep.budget().to_string()),
                    detail_pair("seed", sweep.seed().to_string()),
                ],
            })
        }
        JobKind::TraceIngest => {
            let ingest = crate::tracesweep::TraceIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.chunk_count(),
                detail: vec![detail_pair("accesses", ingest.total_accesses().to_string())],
            })
        }
        JobKind::SampledIngest => {
            let ingest = crate::tracesweep::SampledIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.shard_count(),
                detail: vec![
                    detail_pair("accesses", ingest.total_accesses().to_string()),
                    detail_pair("budget per shard", ingest.budget_per_shard().to_string()),
                ],
            })
        }
        JobKind::FusedIngest => {
            let ingest = crate::tracesweep::FusedIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.chunk_count(),
                detail: vec![
                    detail_pair("accesses", ingest.total_accesses().to_string()),
                    detail_pair("hash shards", ingest.shard_count().to_string()),
                    detail_pair("budget per shard", ingest.budget_per_shard().to_string()),
                ],
            })
        }
        JobKind::ServeState => {
            let state = crate::serve::ServeState::from_json(text)?;
            // A serve checkpoint is a snapshot of a daemon, not a batch with
            // a planned end: every persisted tenant counts as complete.
            Ok(JobStatus {
                kind,
                fingerprint: state.fingerprint(),
                completed: state.tenant_count(),
                total: state.tenant_count(),
                detail: vec![
                    detail_pair("accesses", state.total_accesses().to_string()),
                    detail_pair("budget per tenant", state.budget().to_string()),
                    detail_pair("max tenants", state.max_tenants().to_string()),
                    detail_pair("rejected tenants", state.rejected().to_string()),
                ],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_registry_round_trips() {
        for kind in JobKind::ALL {
            assert_eq!(JobKind::parse(kind.kind_str()), Some(kind));
            assert_eq!(format!("{kind}"), kind.kind_str());
            assert_eq!(kind.version(), 1);
            assert!(!kind.describe().is_empty());
            assert!(!kind.unit_name().is_empty());
        }
        assert_eq!(JobKind::parse("bogus"), None);
    }

    #[test]
    fn header_writer_and_parser_agree() {
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::ShardedSweep, "m=5;x");
        out.push_str("  \"payload\": 1\n}\n");
        let doc = parse_checkpoint(&out, JobKind::ShardedSweep).unwrap();
        assert_eq!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            Some("m=5;x")
        );
        assert_eq!(sniff_kind(&out), Some(JobKind::ShardedSweep));
    }

    #[test]
    fn cross_kind_parse_names_both_kinds() {
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::SampledSweep, "fp");
        out.push_str("  \"payload\": 1\n}\n");
        let err = parse_checkpoint(&out, JobKind::ShardedSweep).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
        assert!(err.contains(JobKind::SampledSweep.kind_str()), "{err}");
        assert!(err.contains(JobKind::ShardedSweep.kind_str()), "{err}");
        assert!(err.contains("symloc job resume"), "{err}");
    }

    #[test]
    fn parse_checkpoint_rejects_foreign_and_versioned_documents() {
        assert!(parse_checkpoint("not json", JobKind::TraceIngest).is_err());
        assert!(parse_checkpoint("{}", JobKind::TraceIngest).is_err());
        let err =
            parse_checkpoint("{\"kind\": \"something_else\"}", JobKind::TraceIngest).unwrap_err();
        assert!(err.contains("something_else"), "{err}");
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::TraceIngest, "fp");
        out.push_str("  \"x\": 1\n}\n");
        let bumped = out.replace("\"version\": 1", "\"version\": 9");
        assert!(parse_checkpoint(&bumped, JobKind::TraceIngest)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn sniff_kind_handles_garbage() {
        assert_eq!(sniff_kind("not json"), None);
        assert_eq!(sniff_kind("{}"), None);
        assert_eq!(sniff_kind("{\"kind\": \"mystery\"}"), None);
    }

    #[test]
    fn checkpoint_status_rejects_unknown_documents() {
        assert!(checkpoint_status("nope").is_err());
        assert!(checkpoint_status("{}").is_err());
        let err = checkpoint_status("{\"kind\": \"mystery_format\"}").unwrap_err();
        assert!(err.contains("mystery_format"), "{err}");
    }

    /// A miniature job: unit `i` contributes `i + 1`; state is the running
    /// sum plus the completion bitmap. Exercises the runner's scheduling,
    /// ordering and checkpoint loop without the heavyweight pipelines.
    struct ToyJob {
        done: Vec<bool>,
        sum: u64,
        threads: usize,
        per_pass: usize,
        per_checkpoint: usize,
    }

    impl ToyJob {
        fn new(units: usize, threads: usize) -> Self {
            ToyJob {
                done: vec![false; units],
                sum: 0,
                threads,
                per_pass: usize::MAX,
                per_checkpoint: threads.max(1),
            }
        }
    }

    impl Job for ToyJob {
        type Partial = u64;
        fn kind(&self) -> JobKind {
            JobKind::ShardedSweep
        }
        fn fingerprint(&self) -> String {
            format!("toy:{}", self.done.len())
        }
        fn threads(&self) -> usize {
            self.threads
        }
        fn unit_count(&self) -> usize {
            self.done.len()
        }
        fn completed_count(&self) -> usize {
            self.done.iter().filter(|&&d| d).count()
        }
        fn pending_units(&self) -> Vec<usize> {
            (0..self.done.len()).filter(|&i| !self.done[i]).collect()
        }
        fn units_per_pass(&self, _threads: usize) -> usize {
            self.per_pass
        }
        fn units_per_checkpoint(&self, _threads: usize) -> usize {
            self.per_checkpoint
        }
        fn run_span(&self, units: &[usize], out: &mut Vec<(usize, u64)>) {
            for &u in units {
                out.push((u, u as u64 + 1));
            }
        }
        fn absorb(&mut self, unit: usize, partial: u64) {
            assert!(!self.done[unit], "unit {unit} absorbed twice");
            self.done[unit] = true;
            self.sum += partial;
        }
        fn to_json(&self) -> String {
            let mut out = String::new();
            write_checkpoint_header(&mut out, self.kind(), &self.fingerprint());
            let _ = writeln!(out, "  \"sum\": {}\n}}", self.sum);
            out
        }
    }

    #[test]
    fn runner_completes_and_is_thread_invariant() {
        for threads in [1, 2, 5] {
            let mut job = ToyJob::new(17, threads);
            assert_eq!(JobRunner::run_pending(&mut job, None), 17);
            assert!(JobRunner::is_complete(&job));
            assert_eq!(job.sum, (1..=17).sum::<u64>(), "threads={threads}");
            // Nothing left: running again is a no-op.
            assert_eq!(JobRunner::run_pending(&mut job, None), 0);
        }
    }

    #[test]
    fn runner_respects_limits_and_pass_bounds() {
        let mut job = ToyJob::new(10, 3);
        job.per_pass = 2;
        assert_eq!(JobRunner::run_pending(&mut job, Some(5)), 5);
        assert_eq!(job.completed_count(), 5);
        assert_eq!(JobRunner::run_pending(&mut job, Some(0)), 0);
        assert_eq!(JobRunner::run_pending(&mut job, None), 5);
        assert!(JobRunner::is_complete(&job));
    }

    #[test]
    fn checkpoint_loop_saves_every_batch_and_reports_progress() {
        let path = std::env::temp_dir().join(format!(
            "symloc_job_toy_checkpoint_{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let mut job = ToyJob::new(6, 1);
        job.per_checkpoint = 2;
        let mut progress = Vec::new();
        let ran = JobRunner::run_with_checkpoint(&mut job, &path, None, |done, total| {
            progress.push((done, total));
        })
        .unwrap();
        assert_eq!(ran, 6);
        assert_eq!(progress, vec![(2, 6), (4, 6), (6, 6)]);
        let saved = std::fs::read_to_string(&path).unwrap();
        assert_eq!(saved, job.to_json());
        // Complete job: nothing runs, checkpoint still rewritten, no
        // progress callback.
        let ran = JobRunner::run_with_checkpoint(&mut job, &path, None, |_, _| {
            panic!("no batch should complete")
        })
        .unwrap();
        assert_eq!(ran, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metered_run_is_result_invariant_and_records() {
        let mut plain = ToyJob::new(9, 2);
        let mut metered = ToyJob::new(9, 2);
        let mut reg = MetricsRegistry::new();
        assert_eq!(JobRunner::run_pending(&mut plain, None), 9);
        assert_eq!(
            JobRunner::run_pending_metered(&mut metered, None, Some(&mut reg)),
            9
        );
        assert_eq!(plain.to_json(), metered.to_json());
        assert_eq!(reg.counter("job.units"), Some(9));
        assert!(reg.counter("job.passes").unwrap_or(0) >= 1);
        assert_eq!(reg.histogram("job.unit_nanos").unwrap().count(), 9);
        assert_eq!(reg.histogram("job.absorb_nanos").unwrap().count(), 9);
    }

    #[test]
    fn checkpoint_loop_writes_and_clears_the_heartbeat_sidecar() {
        let path = std::env::temp_dir().join(format!(
            "symloc_job_toy_heartbeat_{}.json",
            std::process::id()
        ));
        let sidecar = Heartbeat::sidecar_path(&path);
        assert_eq!(
            sidecar.file_name().unwrap().to_str().unwrap(),
            path.file_name().unwrap().to_str().unwrap().to_owned() + ".hb"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();

        // An interrupted run leaves a live heartbeat matching the
        // checkpoint it sits next to.
        let mut job = ToyJob::new(6, 1);
        job.per_checkpoint = 2;
        let mut reg = MetricsRegistry::new();
        let ran = JobRunner::run_with_checkpoint_metered(
            &mut job,
            &path,
            Some(4),
            Some(&mut reg),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(ran, 4);
        let hb = Heartbeat::load(&path).expect("sidecar exists").unwrap();
        assert_eq!(hb.job_kind, JobKind::ShardedSweep);
        assert_eq!((hb.completed, hb.total, hb.batches), (4, 6, 2));
        assert!(hb.units_per_sec >= 0.0);
        let status = JobStatus {
            kind: JobKind::ShardedSweep,
            fingerprint: job.fingerprint(),
            completed: 4,
            total: 6,
            detail: Vec::new(),
        };
        assert!(hb.matches(&status));
        assert!(!hb.matches(&JobStatus {
            completed: 2,
            ..status.clone()
        }));
        assert_eq!(reg.histogram("job.save_nanos").unwrap().count(), 2);
        assert_eq!(reg.counter("job.batches"), Some(2));
        assert!(reg.gauge("job.units_per_sec").is_some());

        // Finishing the run cleans the sidecar up.
        JobRunner::run_with_checkpoint(&mut job, &path, None, |_, _| {}).unwrap();
        assert!(JobRunner::is_complete(&job));
        assert!(Heartbeat::load(&path).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heartbeat_json_round_trips_and_rejects_garbage() {
        let hb = Heartbeat {
            job_kind: JobKind::FusedIngest,
            fingerprint: "gen:zipf:20000:1000000:0.8:42".to_string(),
            completed: 3,
            total: 8,
            batches: 3,
            items: Some(("accesses".to_string(), 375_000)),
            elapsed_secs: 1.25,
            units_per_sec: 2.4,
            instant_units_per_sec: 2.125,
            eta_secs: Some(2.0833),
        };
        let json = hb.to_json();
        assert_eq!(Heartbeat::from_json(&json).unwrap(), hb);
        // No items, no ETA: the optional fields round-trip too.
        let bare = Heartbeat {
            items: None,
            eta_secs: None,
            ..hb.clone()
        };
        assert_eq!(Heartbeat::from_json(&bare.to_json()).unwrap(), bare);

        assert!(Heartbeat::from_json("not json").is_err());
        assert!(Heartbeat::from_json("{}").is_err());
        assert!(Heartbeat::from_json(&json.replace(HEARTBEAT_KIND, "other")).is_err());
        assert!(Heartbeat::from_json(&json.replace("\"version\": 1", "\"version\": 7")).is_err());
        assert!(
            Heartbeat::from_json(&json.replace(JobKind::FusedIngest.kind_str(), "mystery"))
                .is_err()
        );
        assert!(Heartbeat::from_json(&json[..json.len() / 2]).is_err());

        let mut reg = MetricsRegistry::new();
        hb.record_gauges(&mut reg);
        assert_eq!(reg.gauge("job.units_per_sec"), Some(2.4));
        assert_eq!(reg.gauge("job.eta_secs"), Some(2.0833));
        assert_eq!(reg.gauge("job.accesses_done"), Some(375_000.0));
        assert_eq!(reg.gauge("job.accesses_per_sec"), Some(375_000.0 / 1.25));
    }

    #[test]
    fn eta_tracks_a_stall_instead_of_freezing_optimistic() {
        // A job that raced through half its units and then stalled: the
        // cumulative rate still says 100/s, the last batch says 2/s. The
        // old cumulative-only ETA froze at 5s forever; the instant rate
        // reports the honest 250s.
        assert_eq!(eta_secs_from(500, 100.0, 2.0), Some(250.0));
        // Steady state: instant ≈ overall, either answer is fine.
        assert_eq!(eta_secs_from(500, 100.0, 100.0), Some(5.0));
        // A zero instant rate (batch too fast for the clock, or no
        // progress measured yet) falls back to the cumulative rate.
        assert_eq!(eta_secs_from(500, 100.0, 0.0), Some(5.0));
        // Non-finite instant rates fall back too.
        assert_eq!(eta_secs_from(500, 100.0, f64::NAN), Some(5.0));
        assert_eq!(eta_secs_from(500, 100.0, f64::INFINITY), Some(5.0));
        // No measurable progress at all: no ETA, not a division blow-up.
        assert_eq!(eta_secs_from(500, 0.0, 0.0), None);
        assert_eq!(eta_secs_from(500, -1.0, 0.0), None);
    }

    #[test]
    fn resume_or_new_with_distinguishes_the_three_outcomes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("symloc_job_resume_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();

        // No file: fresh.
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (0, false));

        // Right kind, matching plan: resumed.
        let mut doc = String::new();
        write_checkpoint_header(&mut doc, JobKind::ShardedSweep, "fp");
        doc.push_str("  \"x\": 1\n}\n");
        std::fs::write(&path, &doc).unwrap();
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (1, true));

        // Right kind, plan mismatch: fresh.
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| false,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (0, false));

        // Cross-kind: loud error naming both kinds.
        let err = resume_or_new_with(
            &path,
            JobKind::SampledIngest,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap_err();
        assert!(err.contains(JobKind::ShardedSweep.kind_str()), "{err}");
        assert!(err.contains(JobKind::SampledIngest.describe()), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
