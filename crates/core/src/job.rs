//! The unified resumable-job API: one trait, one runner, one checkpoint
//! lifecycle for every unit-parallel pipeline in the workspace.
//!
//! Before this module existed the workspace carried four near-duplicate
//! resumable-execution implementations — [`crate::shard::ShardedSweep`],
//! [`crate::shard::SampledSweep`], [`crate::tracesweep::TraceIngest`] and
//! [`crate::tracesweep::SampledIngest`] — each hand-rolling the same
//! lifecycle: partition the work into deterministic units, run pending
//! units in parallel, absorb completed partials in unit order, save an
//! atomic JSON checkpoint every batch, and resume from a checkpoint that
//! matches the plan. This module is that lifecycle, written once:
//!
//! * [`Job`] — the contract a pipeline implements: deterministic unit
//!   enumeration ([`Job::unit_count`] / [`Job::pending_units`]), per-unit
//!   execution producing a mergeable partial ([`Job::run_span`]),
//!   in-order absorption ([`Job::absorb`]), a checkpoint codec built on
//!   [`crate::jsonio`] ([`Job::to_json`] + the shared
//!   [`write_checkpoint_header`] / [`parse_checkpoint`] pair), and a
//!   [`Job::fingerprint`] identity embedded in every checkpoint.
//! * [`JobRunner`] — the generic runner that owns parallel unit
//!   scheduling over [`symloc_par::parallel_reduce_chunked`]
//!   (`std::thread::scope` underneath), bounded in-flight checkpointing
//!   with atomic saves ([`crate::jsonio::save_atomic`]), progress
//!   callbacks, and the deterministic unit-order merge. Every
//!   `run_pending` / `run_with_checkpoint` / `save` across the four
//!   pipelines is a thin delegation into this runner.
//! * [`JobKind`] — the closed registry of checkpoint kinds, used to
//!   dispatch `symloc job status` / `symloc job resume` on whatever kind
//!   a checkpoint file records, and to make cross-kind resumes
//!   ([`resume_or_new_with`]) a loud, descriptive error instead of a
//!   silently discarded file.
//!
//! # Execution model
//!
//! A job is a fixed, deterministically planned sequence of **units**
//! (rank shards, sample levels, trace chunks, hash shards). The runner
//! repeatedly takes a prefix of the pending units, fans a contiguous span
//! of them out to each worker ([`Job::run_span`] — so a worker can hold
//! per-span state such as a single streaming pass over a trace), then
//! absorbs the resulting `(unit, partial)` pairs strictly in unit order.
//! Two knobs let each pipeline keep its historical scheduling shape:
//!
//! * [`Job::units_per_pass`] — how many units one parallel pass may
//!   schedule. Jobs whose single unit is *internally* parallel (the
//!   exhaustive sweep shard) return 1 so the runner feeds them one unit
//!   at a time on the caller thread; jobs whose merge state advances
//!   between passes (the exact trace ingest) return the thread count.
//! * [`Job::units_per_checkpoint`] — how many units complete between
//!   checkpoint saves in [`JobRunner::run_with_checkpoint`].
//!
//! Because units are deterministic and absorption is ordered, resuming a
//! killed job from its checkpoint reproduces the uninterrupted run
//! *byte-identically* — the invariant `core/tests/job_props.rs` pins for
//! all four pipelines at every unit boundary.

use crate::jsonio::{self, JsonValue};
use std::fmt::Write as _;
use std::path::Path;
use symloc_par::parallel_reduce_chunked;

/// The closed set of resumable-job kinds the workspace knows, keyed by the
/// `"kind"` tag embedded in every checkpoint document.
///
/// The registry is what lets `symloc job status <ckpt>` and
/// `symloc job resume <ckpt>` dispatch on a checkpoint file alone, and
/// what turns a cross-kind resume (say, pointing an exhaustive sweep at a
/// sampled-sweep checkpoint) into a descriptive error instead of garbage
/// or silent data loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// An exhaustive rank-sharded sweep ([`crate::shard::ShardedSweep`]).
    ShardedSweep,
    /// A sampled level-sharded sweep ([`crate::shard::SampledSweep`]).
    SampledSweep,
    /// An exact chunk-sharded trace ingest
    /// ([`crate::tracesweep::TraceIngest`]).
    TraceIngest,
    /// A sampled hash-sharded trace ingest
    /// ([`crate::tracesweep::SampledIngest`]).
    SampledIngest,
    /// A fused exact+sampled trace ingest — one streaming pass feeding
    /// both engines ([`crate::tracesweep::FusedIngest`]).
    FusedIngest,
}

impl JobKind {
    /// Every kind, in registry order.
    pub const ALL: [JobKind; 5] = [
        JobKind::ShardedSweep,
        JobKind::SampledSweep,
        JobKind::TraceIngest,
        JobKind::SampledIngest,
        JobKind::FusedIngest,
    ];

    /// The `"kind"` tag this kind writes into (and expects from) its
    /// checkpoint documents.
    #[must_use]
    pub const fn kind_str(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "symloc_sweep_checkpoint",
            JobKind::SampledSweep => "symloc_sampled_sweep_checkpoint",
            JobKind::TraceIngest => "symloc_trace_ingest_checkpoint",
            JobKind::SampledIngest => "symloc_sampled_trace_checkpoint",
            JobKind::FusedIngest => "symloc_fused_trace_checkpoint",
        }
    }

    /// The checkpoint schema version this kind currently writes.
    #[must_use]
    pub const fn version(self) -> u64 {
        1
    }

    /// A short human description, used in mismatch errors and status
    /// reports.
    #[must_use]
    pub const fn describe(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "exhaustive sharded sweep",
            JobKind::SampledSweep => "sampled (level-sharded) sweep",
            JobKind::TraceIngest => "exact trace ingest",
            JobKind::SampledIngest => "sampled (hash-sharded) trace ingest",
            JobKind::FusedIngest => "fused exact+sampled trace ingest",
        }
    }

    /// What a unit of this kind is called in progress reports.
    #[must_use]
    pub const fn unit_name(self) -> &'static str {
        match self {
            JobKind::ShardedSweep => "shard",
            JobKind::SampledSweep => "level",
            JobKind::TraceIngest => "chunk",
            JobKind::SampledIngest => "hash shard",
            JobKind::FusedIngest => "chunk",
        }
    }

    /// Looks a kind tag up in the registry.
    #[must_use]
    pub fn parse(tag: &str) -> Option<JobKind> {
        JobKind::ALL.into_iter().find(|k| k.kind_str() == tag)
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind_str())
    }
}

/// One checkpointable, unit-parallel, resumable job.
///
/// Implementors own their plan and their completed state; the trait
/// exposes enough of both for [`JobRunner`] to drive the whole lifecycle.
/// See the [module docs](self) for the execution model and the two
/// scheduling knobs.
pub trait Job: Sync {
    /// The mergeable result of one completed unit.
    type Partial: Send;

    /// The kind tag of this job's checkpoints.
    fn kind(&self) -> JobKind;

    /// Stable identity of the job's plan, embedded in checkpoints so a
    /// resume can tell whether a checkpoint belongs to the job it is
    /// about to continue.
    fn fingerprint(&self) -> String;

    /// Worker threads the job was configured with.
    fn threads(&self) -> usize;

    /// Total number of planned units.
    fn unit_count(&self) -> usize;

    /// Number of completed units.
    fn completed_count(&self) -> usize;

    /// The pending unit indices, in the deterministic order they must be
    /// absorbed. The runner always takes a prefix of this list.
    fn pending_units(&self) -> Vec<usize>;

    /// Maximum units one parallel pass may schedule. Return 1 when a
    /// single unit is internally parallel (so passes stay sequential over
    /// units), the thread count when absorbed state must advance between
    /// passes, or `usize::MAX` to let one pass cover everything pending.
    fn units_per_pass(&self, threads: usize) -> usize {
        let _ = threads;
        usize::MAX
    }

    /// Units between checkpoint saves in
    /// [`JobRunner::run_with_checkpoint`].
    fn units_per_checkpoint(&self, threads: usize) -> usize {
        threads
    }

    /// Executes a contiguous span of pending `units` on one worker,
    /// appending `(unit, partial)` pairs **in unit order**. Must be
    /// deterministic in the unit indices alone (never in which worker ran
    /// the span), so results are thread- and batching-invariant.
    fn run_span(&self, units: &[usize], out: &mut Vec<(usize, Self::Partial)>);

    /// Absorbs one completed unit's partial. The runner calls this in
    /// strict unit order, once per unit.
    fn absorb(&mut self, unit: usize, partial: Self::Partial);

    /// Serializes the job — plan, progress, completed state — as a JSON
    /// checkpoint document (header via [`write_checkpoint_header`]).
    fn to_json(&self) -> String;
}

/// The generic driver of every [`Job`]: parallel unit scheduling,
/// bounded checkpointing with atomic saves, progress callbacks, and the
/// deterministic unit-order merge. Stateless — all state lives in the
/// job itself, which is what makes the checkpoints self-contained.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobRunner;

impl JobRunner {
    /// True when every unit of `job` has been absorbed.
    #[must_use]
    pub fn is_complete<J: Job + ?Sized>(job: &J) -> bool {
        job.completed_count() >= job.unit_count()
    }

    /// Runs up to `limit` pending units (all of them when `None`) in
    /// parallel passes of at most [`Job::units_per_pass`] units, absorbing
    /// partials in unit order after each pass. Returns how many units were
    /// processed.
    pub fn run_pending<J: Job + ?Sized>(job: &mut J, limit: Option<usize>) -> usize {
        let threads = job.threads().max(1);
        let mut ran = 0usize;
        loop {
            if limit.is_some_and(|l| ran >= l) {
                break;
            }
            let pending = job.pending_units();
            if pending.is_empty() {
                break;
            }
            let cap = limit.map_or(usize::MAX, |l| l - ran);
            let pass = pending
                .len()
                .min(cap)
                .min(job.units_per_pass(threads).max(1));
            let units = &pending[..pass];
            // One parallel pass: contiguous spans of the unit prefix go to
            // the workers; concatenating the per-span vectors preserves
            // unit order, so absorption below is deterministic.
            let shared: &J = job;
            let results: Vec<(usize, J::Partial)> = parallel_reduce_chunked(
                units.len(),
                threads,
                Vec::new,
                |mut acc, chunk| {
                    if !chunk.is_empty() {
                        shared.run_span(&units[chunk.start..chunk.end], &mut acc);
                    }
                    acc
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            debug_assert!(
                results.windows(2).all(|w| w[0].0 < w[1].0),
                "span results must arrive in unit order"
            );
            for (unit, partial) in results {
                job.absorb(unit, partial);
            }
            ran += pass;
        }
        ran
    }

    /// Runs pending units — all of them, or up to `limit` — saving the
    /// checkpoint to `path` atomically after every batch of (at most)
    /// [`Job::units_per_checkpoint`] units, so a kill loses at most one
    /// batch (and a kill mid-save leaves the previous checkpoint intact).
    /// `on_batch(completed, total)` fires after every save. The
    /// checkpoint is (re)written even when nothing was pending, so a
    /// fresh plan always lands on disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint<J: Job + ?Sized>(
        job: &mut J,
        path: &Path,
        limit: Option<usize>,
        mut on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        let threads = job.threads().max(1);
        let mut ran = 0usize;
        while !Self::is_complete(job) && limit.is_none_or(|l| ran < l) {
            let batch = job
                .units_per_checkpoint(threads)
                .max(1)
                .min(limit.map_or(usize::MAX, |l| l - ran));
            ran += Self::run_pending(job, Some(batch));
            Self::save(job, path)?;
            on_batch(job.completed_count(), job.unit_count());
        }
        if ran == 0 {
            Self::save(job, path)?;
        }
        Ok(ran)
    }

    /// Writes the job's checkpoint to `path` atomically (temp file +
    /// rename, via [`crate::jsonio::save_atomic`]) — the single save path
    /// every checkpointing pipeline goes through.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save<J: Job + ?Sized>(job: &J, path: &Path) -> std::io::Result<()> {
        jsonio::save_atomic(path, &job.to_json())
    }
}

/// Writes the shared checkpoint header — opening brace, kind, version,
/// fingerprint — in the exact byte layout every pipeline has always used,
/// so checkpoints stay byte-compatible across the port onto [`Job`].
pub fn write_checkpoint_header(out: &mut String, kind: JobKind, fingerprint: &str) {
    out.push_str("{\n");
    let _ = writeln!(out, "  \"kind\": \"{}\",", kind.kind_str());
    let _ = writeln!(out, "  \"version\": {},", kind.version());
    let _ = writeln!(
        out,
        "  \"fingerprint\": \"{}\",",
        jsonio::escape(fingerprint)
    );
}

/// Parses a checkpoint document and validates its header against the
/// expected kind and version, returning the parsed document for the
/// caller's body decoder.
///
/// # Errors
///
/// Returns a descriptive error on malformed JSON, a missing kind, an
/// unsupported version — and, crucially, a **kind mismatch**: a document
/// of another registered kind names both kinds and points at
/// `symloc job resume`, so resuming a checkpoint with the wrong command
/// can never quietly misparse it.
pub fn parse_checkpoint(text: &str, expected: JobKind) -> Result<JsonValue, String> {
    let doc = jsonio::parse(text)?;
    match doc.get("kind").and_then(JsonValue::as_str) {
        None => {
            return Err(format!(
                "not a {} checkpoint (no kind field)",
                expected.describe()
            ))
        }
        Some(tag) if tag != expected.kind_str() => {
            return Err(match JobKind::parse(tag) {
                Some(found) => format!(
                    "checkpoint kind mismatch: this file holds a {} ({:?}), not the {} \
                     ({:?}) being decoded; resume it with the matching command or \
                     `symloc job resume`",
                    found.describe(),
                    tag,
                    expected.describe(),
                    expected.kind_str(),
                ),
                None => format!("not a {} checkpoint (kind = {tag:?})", expected.describe()),
            });
        }
        Some(_) => {}
    }
    let version = doc.get("version").and_then(JsonValue::as_u64);
    if version != Some(expected.version()) {
        return Err(format!("unsupported checkpoint version {version:?}"));
    }
    Ok(doc)
}

/// The kind recorded in a checkpoint document, if it parses as JSON and
/// carries a registered kind tag.
#[must_use]
pub fn sniff_kind(text: &str) -> Option<JobKind> {
    let doc = jsonio::parse(text).ok()?;
    JobKind::parse(doc.get("kind")?.as_str()?)
}

/// The shared resume policy of every pipeline: load the checkpoint at
/// `path` or plan a fresh job.
///
/// * No file (or unreadable): fresh plan.
/// * A checkpoint of a **different registered kind**: a loud error naming
///   both kinds — a sampled-sweep checkpoint must never be silently
///   discarded (or worse, misread) by an exhaustive sweep, and vice versa
///   for every cross-kind pair.
/// * The right kind but a plan that fails `matches` (different spec,
///   seed, source, shard count, ...): fresh plan, the stale file left
///   untouched on disk until the next save (callers warn about this).
/// * The right kind and a matching plan: resumed; the returned flag says
///   whether any completed progress actually came back.
///
/// # Errors
///
/// Returns the cross-kind mismatch error described above.
pub fn resume_or_new_with<T>(
    path: &Path,
    expected: JobKind,
    decode: impl FnOnce(&str) -> Result<T, String>,
    matches: impl FnOnce(&T) -> bool,
    completed: impl FnOnce(&T) -> usize,
    fresh: impl FnOnce() -> T,
) -> Result<(T, bool), String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok((fresh(), false));
    };
    if let Some(found) = sniff_kind(&text) {
        if found != expected {
            return Err(format!(
                "checkpoint {} holds a {} ({:?}), not the {} this command would resume; \
                 resume it with the matching command (or `symloc job resume`), or point \
                 the checkpoint flag at a different file",
                path.display(),
                found.describe(),
                found.kind_str(),
                expected.describe(),
            ));
        }
    }
    match decode(&text) {
        Ok(job) if matches(&job) => {
            let resumed = completed(&job) > 0;
            Ok((job, resumed))
        }
        _ => Ok((fresh(), false)),
    }
}

/// A kind-agnostic summary of a checkpoint document, the payload of
/// `symloc job status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The checkpoint's kind.
    pub kind: JobKind,
    /// The job's plan fingerprint.
    pub fingerprint: String,
    /// Completed units.
    pub completed: usize,
    /// Total planned units.
    pub total: usize,
    /// Kind-specific `(label, value)` detail lines.
    pub detail: Vec<(String, String)>,
}

impl JobStatus {
    /// True when every unit has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total
    }
}

/// Decodes any registered checkpoint document into a [`JobStatus`],
/// dispatching on the kind the document itself records.
///
/// # Errors
///
/// Returns a descriptive error for unparseable documents, unknown kinds,
/// or structurally invalid bodies (via the kind's own decoder).
pub fn checkpoint_status(text: &str) -> Result<JobStatus, String> {
    let doc = jsonio::parse(text)?;
    let tag = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("not a symloc checkpoint (no kind field)")?;
    let kind = JobKind::parse(tag)
        .ok_or_else(|| format!("unknown checkpoint kind {tag:?} (not a registered job)"))?;
    let detail_pair = |label: &str, value: String| (label.to_string(), value);
    match kind {
        JobKind::ShardedSweep => {
            let sweep = crate::shard::ShardedSweep::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: sweep.spec().fingerprint(),
                completed: sweep.completed_count(),
                total: sweep.shard_count(),
                detail: vec![detail_pair("degree m", sweep.spec().m.to_string())],
            })
        }
        JobKind::SampledSweep => {
            let sweep = crate::shard::SampledSweep::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: sweep.spec().fingerprint(),
                completed: sweep.completed_count(),
                total: sweep.level_count(),
                detail: vec![
                    detail_pair("degree m", sweep.spec().m.to_string()),
                    detail_pair("budget", sweep.budget().to_string()),
                    detail_pair("seed", sweep.seed().to_string()),
                ],
            })
        }
        JobKind::TraceIngest => {
            let ingest = crate::tracesweep::TraceIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.chunk_count(),
                detail: vec![detail_pair("accesses", ingest.total_accesses().to_string())],
            })
        }
        JobKind::SampledIngest => {
            let ingest = crate::tracesweep::SampledIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.shard_count(),
                detail: vec![
                    detail_pair("accesses", ingest.total_accesses().to_string()),
                    detail_pair("budget per shard", ingest.budget_per_shard().to_string()),
                ],
            })
        }
        JobKind::FusedIngest => {
            let ingest = crate::tracesweep::FusedIngest::from_json(text, 1)?;
            Ok(JobStatus {
                kind,
                fingerprint: ingest.fingerprint().to_string(),
                completed: ingest.completed_count(),
                total: ingest.chunk_count(),
                detail: vec![
                    detail_pair("accesses", ingest.total_accesses().to_string()),
                    detail_pair("hash shards", ingest.shard_count().to_string()),
                    detail_pair("budget per shard", ingest.budget_per_shard().to_string()),
                ],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_registry_round_trips() {
        for kind in JobKind::ALL {
            assert_eq!(JobKind::parse(kind.kind_str()), Some(kind));
            assert_eq!(format!("{kind}"), kind.kind_str());
            assert_eq!(kind.version(), 1);
            assert!(!kind.describe().is_empty());
            assert!(!kind.unit_name().is_empty());
        }
        assert_eq!(JobKind::parse("bogus"), None);
    }

    #[test]
    fn header_writer_and_parser_agree() {
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::ShardedSweep, "m=5;x");
        out.push_str("  \"payload\": 1\n}\n");
        let doc = parse_checkpoint(&out, JobKind::ShardedSweep).unwrap();
        assert_eq!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            Some("m=5;x")
        );
        assert_eq!(sniff_kind(&out), Some(JobKind::ShardedSweep));
    }

    #[test]
    fn cross_kind_parse_names_both_kinds() {
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::SampledSweep, "fp");
        out.push_str("  \"payload\": 1\n}\n");
        let err = parse_checkpoint(&out, JobKind::ShardedSweep).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
        assert!(err.contains(JobKind::SampledSweep.kind_str()), "{err}");
        assert!(err.contains(JobKind::ShardedSweep.kind_str()), "{err}");
        assert!(err.contains("symloc job resume"), "{err}");
    }

    #[test]
    fn parse_checkpoint_rejects_foreign_and_versioned_documents() {
        assert!(parse_checkpoint("not json", JobKind::TraceIngest).is_err());
        assert!(parse_checkpoint("{}", JobKind::TraceIngest).is_err());
        let err =
            parse_checkpoint("{\"kind\": \"something_else\"}", JobKind::TraceIngest).unwrap_err();
        assert!(err.contains("something_else"), "{err}");
        let mut out = String::new();
        write_checkpoint_header(&mut out, JobKind::TraceIngest, "fp");
        out.push_str("  \"x\": 1\n}\n");
        let bumped = out.replace("\"version\": 1", "\"version\": 9");
        assert!(parse_checkpoint(&bumped, JobKind::TraceIngest)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn sniff_kind_handles_garbage() {
        assert_eq!(sniff_kind("not json"), None);
        assert_eq!(sniff_kind("{}"), None);
        assert_eq!(sniff_kind("{\"kind\": \"mystery\"}"), None);
    }

    #[test]
    fn checkpoint_status_rejects_unknown_documents() {
        assert!(checkpoint_status("nope").is_err());
        assert!(checkpoint_status("{}").is_err());
        let err = checkpoint_status("{\"kind\": \"mystery_format\"}").unwrap_err();
        assert!(err.contains("mystery_format"), "{err}");
    }

    /// A miniature job: unit `i` contributes `i + 1`; state is the running
    /// sum plus the completion bitmap. Exercises the runner's scheduling,
    /// ordering and checkpoint loop without the heavyweight pipelines.
    struct ToyJob {
        done: Vec<bool>,
        sum: u64,
        threads: usize,
        per_pass: usize,
        per_checkpoint: usize,
    }

    impl ToyJob {
        fn new(units: usize, threads: usize) -> Self {
            ToyJob {
                done: vec![false; units],
                sum: 0,
                threads,
                per_pass: usize::MAX,
                per_checkpoint: threads.max(1),
            }
        }
    }

    impl Job for ToyJob {
        type Partial = u64;
        fn kind(&self) -> JobKind {
            JobKind::ShardedSweep
        }
        fn fingerprint(&self) -> String {
            format!("toy:{}", self.done.len())
        }
        fn threads(&self) -> usize {
            self.threads
        }
        fn unit_count(&self) -> usize {
            self.done.len()
        }
        fn completed_count(&self) -> usize {
            self.done.iter().filter(|&&d| d).count()
        }
        fn pending_units(&self) -> Vec<usize> {
            (0..self.done.len()).filter(|&i| !self.done[i]).collect()
        }
        fn units_per_pass(&self, _threads: usize) -> usize {
            self.per_pass
        }
        fn units_per_checkpoint(&self, _threads: usize) -> usize {
            self.per_checkpoint
        }
        fn run_span(&self, units: &[usize], out: &mut Vec<(usize, u64)>) {
            for &u in units {
                out.push((u, u as u64 + 1));
            }
        }
        fn absorb(&mut self, unit: usize, partial: u64) {
            assert!(!self.done[unit], "unit {unit} absorbed twice");
            self.done[unit] = true;
            self.sum += partial;
        }
        fn to_json(&self) -> String {
            let mut out = String::new();
            write_checkpoint_header(&mut out, self.kind(), &self.fingerprint());
            let _ = writeln!(out, "  \"sum\": {}\n}}", self.sum);
            out
        }
    }

    #[test]
    fn runner_completes_and_is_thread_invariant() {
        for threads in [1, 2, 5] {
            let mut job = ToyJob::new(17, threads);
            assert_eq!(JobRunner::run_pending(&mut job, None), 17);
            assert!(JobRunner::is_complete(&job));
            assert_eq!(job.sum, (1..=17).sum::<u64>(), "threads={threads}");
            // Nothing left: running again is a no-op.
            assert_eq!(JobRunner::run_pending(&mut job, None), 0);
        }
    }

    #[test]
    fn runner_respects_limits_and_pass_bounds() {
        let mut job = ToyJob::new(10, 3);
        job.per_pass = 2;
        assert_eq!(JobRunner::run_pending(&mut job, Some(5)), 5);
        assert_eq!(job.completed_count(), 5);
        assert_eq!(JobRunner::run_pending(&mut job, Some(0)), 0);
        assert_eq!(JobRunner::run_pending(&mut job, None), 5);
        assert!(JobRunner::is_complete(&job));
    }

    #[test]
    fn checkpoint_loop_saves_every_batch_and_reports_progress() {
        let path = std::env::temp_dir().join(format!(
            "symloc_job_toy_checkpoint_{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let mut job = ToyJob::new(6, 1);
        job.per_checkpoint = 2;
        let mut progress = Vec::new();
        let ran = JobRunner::run_with_checkpoint(&mut job, &path, None, |done, total| {
            progress.push((done, total));
        })
        .unwrap();
        assert_eq!(ran, 6);
        assert_eq!(progress, vec![(2, 6), (4, 6), (6, 6)]);
        let saved = std::fs::read_to_string(&path).unwrap();
        assert_eq!(saved, job.to_json());
        // Complete job: nothing runs, checkpoint still rewritten, no
        // progress callback.
        let ran = JobRunner::run_with_checkpoint(&mut job, &path, None, |_, _| {
            panic!("no batch should complete")
        })
        .unwrap();
        assert_eq!(ran, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_or_new_with_distinguishes_the_three_outcomes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("symloc_job_resume_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();

        // No file: fresh.
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (0, false));

        // Right kind, matching plan: resumed.
        let mut doc = String::new();
        write_checkpoint_header(&mut doc, JobKind::ShardedSweep, "fp");
        doc.push_str("  \"x\": 1\n}\n");
        std::fs::write(&path, &doc).unwrap();
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (1, true));

        // Right kind, plan mismatch: fresh.
        let (value, resumed) = resume_or_new_with(
            &path,
            JobKind::ShardedSweep,
            |_| Ok(1u32),
            |_| false,
            |_| 1,
            || 0u32,
        )
        .unwrap();
        assert_eq!((value, resumed), (0, false));

        // Cross-kind: loud error naming both kinds.
        let err = resume_or_new_with(
            &path,
            JobKind::SampledIngest,
            |_| Ok(1u32),
            |_| true,
            |_| 1,
            || 0u32,
        )
        .unwrap_err();
        assert!(err.contains(JobKind::ShardedSweep.kind_str()), "{err}");
        assert!(err.contains(JobKind::SampledIngest.describe()), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
