//! Executable statements of the paper's theorems.
//!
//! Each theorem is exposed as a checking function that recomputes both sides
//! of the claimed identity/inequality from first principles, so the test
//! suite and the experiment binaries can verify them exhaustively on small
//! degrees and by sampling on large degrees.
//!
//! ## A note on Theorem 3
//!
//! The paper states that a Bruhat cover `σ ◁_B τ` changes the hit vector at
//! *exactly one* cache size (by one extra hit) and therefore
//! `mr(c; τ) ≤ mr(c; σ)` at every `c`. Exhaustive checking (see
//! [`theorem3_check`] and the `exp5_theorem3_covers` experiment) shows this
//! is **not** always the case: non-adjacent cover transpositions can shift
//! hits between several cache sizes, improving some and worsening others.
//! What does always hold — and is what Theorem 2 actually implies — is that
//! the *truncated hit-vector sum* increases by exactly one per cover. The
//! checking API therefore reports both the paper's literal claim and the
//! weaker aggregate claim.

use crate::hits::{hit_vector, mrc};
use symloc_perm::bruhat::is_cover;
use symloc_perm::inversions::inversions;
use symloc_perm::Permutation;

/// Outcome of checking Theorem 3 on a pair `(σ, τ)` with `σ ◁_B τ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverLocalityCheck {
    /// Cache sizes `c < m` at which `τ` has strictly more hits than `σ`.
    pub improved_sizes: Vec<usize>,
    /// Cache sizes `c < m` at which `τ` has strictly fewer hits than `σ`.
    pub worsened_sizes: Vec<usize>,
    /// Difference of the truncated hit-vector sums (`τ` minus `σ`); always 1
    /// for a Bruhat cover by Theorem 2.
    pub truncated_delta: i64,
    /// True if `τ`'s miss ratio is no larger than `σ`'s at every cache size
    /// (the paper's stated conclusion).
    pub pointwise_dominates: bool,
}

impl CoverLocalityCheck {
    /// True when the cover behaves exactly as the paper's Theorem 3 states:
    /// a single improved cache size, no worsened sizes, and pointwise
    /// miss-ratio dominance.
    #[must_use]
    pub fn holds_as_stated(&self) -> bool {
        self.improved_sizes.len() == 1 && self.worsened_sizes.is_empty() && self.pointwise_dominates
    }

    /// True for the weaker aggregate claim that is implied by Theorem 2:
    /// the truncated hit-vector sum increases by exactly one.
    #[must_use]
    pub fn holds_in_aggregate(&self) -> bool {
        self.truncated_delta == 1
    }
}

/// Theorem 2 (Bruhat–Locality): `Σ_{c=1}^{m-1} hits_c(σ) = ℓ(σ)`.
#[must_use]
pub fn theorem2_holds(sigma: &Permutation) -> bool {
    hit_vector(sigma).truncated_sum() == inversions(sigma)
}

/// Corollary 1: `Σ_{c=1}^{m} hits_c(σ) = m + ℓ(σ)`.
#[must_use]
pub fn corollary1_holds(sigma: &Permutation) -> bool {
    hit_vector(sigma).full_sum() == sigma.degree() + inversions(sigma)
}

/// Checks Theorem 3 on a Bruhat cover `σ ◁_B τ`, reporting exactly how the
/// hit vectors differ (see the module-level note).
///
/// Returns `None` if `(σ, τ)` is not actually a Bruhat cover.
#[must_use]
pub fn theorem3_check(sigma: &Permutation, tau: &Permutation) -> Option<CoverLocalityCheck> {
    if !is_cover(sigma, tau) {
        return None;
    }
    let m = sigma.degree();
    let hv_s = hit_vector(sigma);
    let hv_t = hit_vector(tau);
    let mut improved_sizes = Vec::new();
    let mut worsened_sizes = Vec::new();
    for c in 1..m {
        let s = hv_s.hits(c);
        let t = hv_t.hits(c);
        match t.cmp(&s) {
            std::cmp::Ordering::Greater => improved_sizes.push(c),
            std::cmp::Ordering::Less => worsened_sizes.push(c),
            std::cmp::Ordering::Equal => {}
        }
    }
    let truncated_delta = hv_t.truncated_sum() as i64 - hv_s.truncated_sum() as i64;
    let mrc_s = mrc(sigma);
    let mrc_t = mrc(tau);
    let pointwise_dominates = (0..=m).all(|c| mrc_t.miss_ratio(c) <= mrc_s.miss_ratio(c) + 1e-12);
    Some(CoverLocalityCheck {
        improved_sizes,
        worsened_sizes,
        truncated_delta,
        pointwise_dominates,
    })
}

/// The locality-ordering consequence of Theorem 2: `ℓ(σ) > ℓ(τ)` implies σ
/// has better temporal locality, measured by the truncated hit-vector sum.
/// Returns the comparison of σ's and τ's truncated sums (Greater = σ better).
#[must_use]
pub fn locality_cmp(sigma: &Permutation, tau: &Permutation) -> std::cmp::Ordering {
    hit_vector(sigma)
        .truncated_sum()
        .cmp(&hit_vector(tau).truncated_sum())
}

/// Theorem 4 (alternation optimality), checked constructively: if `σ` is a
/// locality-optimal reordering of `A` among `candidates`, then in the
/// two-epoch schedule starting from `σ(A)` the best next epoch among the same
/// candidates (applied relative to `σ(A)`) is to go back to `A`
/// (i.e. the relative permutation `σ⁻¹`, whose locality equals σ's).
///
/// Returns true if no candidate beats returning to the original order.
#[must_use]
pub fn theorem4_alternation_optimal(sigma: &Permutation, candidates: &[Permutation]) -> bool {
    // Locality of the epoch pair (σ(A), next) is that of the relative
    // permutation σ⁻¹ ∘ next (relabel σ(A) to the canonical order), measured
    // on the re-traversal it generates. Going back to A corresponds to the
    // relative permutation σ⁻¹, whose inversion number equals σ's.
    let back_score = inversions(&sigma.inverse());
    candidates
        .iter()
        .filter(|tau| tau.degree() == sigma.degree())
        .all(|tau| {
            let relative = sigma.inverse().compose(tau);
            inversions(&relative) <= back_score.max(inversions(sigma))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::bruhat::upper_covers;
    use symloc_perm::iter::LexIter;

    #[test]
    fn theorem2_exhaustive_small_degrees() {
        for m in 0..=7usize {
            for sigma in LexIter::new(m) {
                assert!(theorem2_holds(&sigma), "m={m} σ={sigma}");
                assert!(corollary1_holds(&sigma), "m={m} σ={sigma}");
            }
        }
    }

    #[test]
    fn theorem2_on_random_large_degrees() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use symloc_perm::sample::random_permutation;
        let mut rng = StdRng::seed_from_u64(99);
        for m in [20usize, 50, 100, 250] {
            for _ in 0..5 {
                let sigma = random_permutation(m, &mut rng);
                assert!(theorem2_holds(&sigma), "m={m}");
                assert!(corollary1_holds(&sigma), "m={m}");
            }
        }
    }

    #[test]
    fn theorem3_aggregate_claim_holds_exhaustively() {
        // Every Bruhat cover adds exactly one to the truncated hit sum.
        for m in 2..=5usize {
            for sigma in LexIter::new(m) {
                for cover in upper_covers(&sigma) {
                    let check = theorem3_check(&sigma, &cover.perm).expect("is a cover");
                    assert!(
                        check.holds_in_aggregate(),
                        "m={m} σ={sigma} τ={}",
                        cover.perm
                    );
                    assert!(!check.improved_sizes.is_empty());
                }
            }
        }
    }

    #[test]
    fn theorem3_adjacent_covers_hold_as_stated() {
        // For covers by *adjacent* transpositions the paper's literal claim
        // does hold: one improved size, nothing worsened.
        for sigma in LexIter::new(5) {
            for cover in upper_covers(&sigma) {
                let (a, b) = cover.transposition;
                if b != a + 1 {
                    continue;
                }
                let check = theorem3_check(&sigma, &cover.perm).expect("is a cover");
                assert!(check.holds_as_stated(), "σ={sigma} τ={}", cover.perm);
            }
        }
    }

    #[test]
    fn theorem3_has_counterexamples_for_long_transpositions() {
        // The specific counterexample found by exhaustive checking:
        // σ = [1 3 2 5 4], τ = σ·(2 4) = [1 5 2 3 4] (1-based). The hit
        // vectors are (0,0,0,2,5) vs (0,1,1,1,5): two sizes improve and one
        // worsens, so pointwise dominance fails even though the truncated sum
        // still increases by exactly one.
        let sigma = Permutation::from_one_based(vec![1, 3, 2, 5, 4]).unwrap();
        let tau = Permutation::from_one_based(vec![1, 5, 2, 3, 4]).unwrap();
        let check = theorem3_check(&sigma, &tau).expect("is a cover");
        assert!(!check.holds_as_stated());
        assert!(check.holds_in_aggregate());
        assert_eq!(check.improved_sizes, vec![2, 3]);
        assert_eq!(check.worsened_sizes, vec![4]);
        assert!(!check.pointwise_dominates);

        // Quantify how common this is over all covers of S5.
        let mut total = 0usize;
        let mut as_stated = 0usize;
        for sigma in LexIter::new(5) {
            for cover in upper_covers(&sigma) {
                let check = theorem3_check(&sigma, &cover.perm).unwrap();
                total += 1;
                if check.holds_as_stated() {
                    as_stated += 1;
                }
            }
        }
        assert!(as_stated < total, "counterexamples must exist");
        assert!(
            as_stated * 2 > total,
            "the literal claim should still hold for most covers ({as_stated}/{total})"
        );
    }

    #[test]
    fn theorem3_rejects_non_covers() {
        let e = Permutation::identity(4);
        let w0 = Permutation::reverse(4);
        assert!(theorem3_check(&e, &w0).is_none());
        assert!(theorem3_check(&e, &e).is_none());
    }

    #[test]
    fn locality_cmp_orders_extremes() {
        use std::cmp::Ordering;
        let e = Permutation::identity(5);
        let w0 = Permutation::reverse(5);
        assert_eq!(locality_cmp(&w0, &e), Ordering::Greater);
        assert_eq!(locality_cmp(&e, &w0), Ordering::Less);
        assert_eq!(locality_cmp(&e, &e), Ordering::Equal);
    }

    #[test]
    fn theorem4_sawtooth_is_alternation_optimal() {
        // With σ = w0 (the unconstrained optimum), returning to A is at least
        // as good as any other next epoch.
        let m = 5;
        let w0 = Permutation::reverse(m);
        let candidates: Vec<Permutation> = LexIter::new(m).collect();
        assert!(theorem4_alternation_optimal(&w0, &candidates));
    }

    #[test]
    fn theorem4_ignores_degree_mismatched_candidates() {
        let w0 = Permutation::reverse(4);
        let candidates = vec![Permutation::identity(7)];
        assert!(theorem4_alternation_optimal(&w0, &candidates));
    }
}
