//! Algorithm 1: reuse distances, hit vectors and miss-ratio curves of a
//! re-traversal, computed directly from the permutation.
//!
//! For the re-traversal `T = A σ(A)` the element `a` (0-based value) is
//! accessed at position `a` of `A` and at position `i = σ⁻¹(a)` of `B`.
//! Its reuse interval (position difference) is `(m - 1 - a) + (i + 1)`; its
//! reuse distance subtracts the number of *repeated* values in between, which
//! are exactly the values greater than `a` already accessed in `B[0..i]`:
//!
//! ```text
//! rd(a) = (m - 1 - a) + (i + 1) - |{ j < i : σ(j) > a }|
//! ```
//!
//! The paper states this with 1-based ranks `r(a) = m - a + 1`. Three
//! implementations are provided: the literal prefix-sum bit-vector algorithm
//! of the paper (`O(m²)`), a Fenwick-tree variant (`O(m log m)`), and a
//! cross-check through the generic LRU simulator of `symloc-cache`.
//!
//! # Scratch kernels
//!
//! Every quantity here is also computable through an [`AnalysisScratch`]
//! workspace (`second_pass_distances_with_scratch`, `hit_vector_with_scratch`,
//! `rd_histogram_with_scratch`, `mrc_with_scratch`): the workspace owns the
//! Fenwick tree and all intermediate buffers, so a loop evaluating millions
//! of permutations performs **zero** allocations after the first iteration.
//! The classic allocating functions are thin wrappers over these kernels and
//! remain the convenient API for one-shot use. A free by-product of the
//! Fenwick pass is the inversion number `ℓ(σ)` (the per-step repeat counts
//! sum to exactly the inversion pairs), which the sweep engine exploits.

use symloc_cache::histogram::{HitVector, ReuseDistanceHistogram};
use symloc_cache::mrc::MissRatioCurve;
use symloc_cache::reuse::reuse_profile;
use symloc_perm::fenwick::Fenwick;
use symloc_perm::Permutation;
use symloc_trace::generators::retraversal_trace;

/// A reusable workspace for the Algorithm-1 kernels.
///
/// Owns the Fenwick tree and the distance / histogram / hit-vector buffers
/// so that repeated analyses (sweeps, ChainFind label evaluations, epoch
/// decompositions) never allocate on the hot path. The workspace re-targets
/// itself automatically when handed a permutation of a different degree.
///
/// ```
/// use symloc_core::hits::{hit_vector, hit_vector_with_scratch, AnalysisScratch};
/// use symloc_perm::Permutation;
///
/// let mut scratch = AnalysisScratch::new(6);
/// let sigma = Permutation::reverse(6);
/// assert_eq!(hit_vector_with_scratch(&sigma, &mut scratch), &[1, 2, 3, 4, 5, 6]);
/// assert_eq!(hit_vector_with_scratch(&sigma, &mut scratch), hit_vector(&sigma).as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisScratch {
    fenwick: Fenwick,
    distances: Vec<usize>,
    /// Dense reuse-distance counts, indexed by distance `0..=m` (index 0 is
    /// unused: the minimum stack distance of a re-traversal is 1).
    counts: Vec<usize>,
    /// Dense hit vector, index 0 = cache size 1.
    hits: Vec<usize>,
    degree: usize,
}

impl AnalysisScratch {
    /// Creates a workspace sized for permutations of `m` elements.
    #[must_use]
    pub fn new(m: usize) -> Self {
        AnalysisScratch {
            fenwick: Fenwick::new(m),
            distances: Vec::with_capacity(m),
            counts: Vec::new(),
            hits: Vec::new(),
            degree: m,
        }
    }

    /// The degree the workspace is currently sized for.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Re-targets the workspace to degree `m`, reusing buffers when they are
    /// large enough.
    pub fn retarget(&mut self, m: usize) {
        if self.degree != m {
            self.fenwick.reset(m);
            self.degree = m;
        }
    }

    /// The Algorithm-1 Fenwick pass over one-line images: fills the distance
    /// buffer and returns the inversion number `ℓ(σ)` (the sum of the
    /// per-step repeat counts — free from the same tree queries).
    ///
    /// `images` must be a valid permutation of `0..images.len()`; this is the
    /// raw-slice entry point the streaming sweep engine feeds directly from
    /// its lexicographic iterator.
    pub fn pass_images(&mut self, images: &[usize]) -> usize {
        let m = images.len();
        self.retarget(m);
        self.fenwick.clear();
        self.distances.clear();
        let mut inversions = 0usize;
        for (i, &a) in images.iter().enumerate() {
            debug_assert!(a < m, "images must be a permutation of 0..m");
            // Values greater than a already accessed in B.
            let repeats = self.fenwick.range_sum(a + 1, m) as usize;
            let reuse_interval = (m - 1 - a) + (i + 1);
            self.distances.push(reuse_interval - repeats);
            self.fenwick.add(a, 1);
            inversions += repeats;
        }
        inversions
    }

    /// [`AnalysisScratch::pass_images`] for a [`Permutation`].
    pub fn pass(&mut self, sigma: &Permutation) -> usize {
        self.pass_images(sigma.images())
    }

    /// The distances computed by the most recent pass, in traversal order.
    #[must_use]
    pub fn distances(&self) -> &[usize] {
        &self.distances
    }

    /// Converts the distances of the most recent pass into the dense hit
    /// vector (index 0 = cache size 1) and returns it.
    pub fn compute_hits(&mut self) -> &[usize] {
        let m = self.distances.len();
        self.counts.clear();
        self.counts.resize(m + 1, 0);
        for &d in &self.distances {
            debug_assert!((1..=m).contains(&d));
            self.counts[d] += 1;
        }
        self.hits.clear();
        let mut acc = 0usize;
        for c in 1..=m {
            acc += self.counts[c];
            self.hits.push(acc);
        }
        &self.hits
    }

    /// The hit vector computed by the most recent
    /// [`AnalysisScratch::compute_hits`].
    #[must_use]
    pub fn hits(&self) -> &[usize] {
        &self.hits
    }

    /// Sum of the distances of the most recent pass.
    #[must_use]
    pub fn total_distance(&self) -> u128 {
        self.distances.iter().map(|&d| d as u128).sum()
    }
}

/// Reuse distances of the second-traversal accesses, in traversal order
/// (`result[i]` is the reuse distance of the access `B[i] = σ(i)`), computed
/// with the paper's Algorithm 1 using an explicit bit vector and prefix sums
/// (`O(m²)`).
///
/// Every second-traversal access of a re-traversal has a finite distance in
/// `1..=m`.
#[must_use]
pub fn second_pass_distances_naive(sigma: &Permutation) -> Vec<usize> {
    let m = sigma.degree();
    // c[r] flips to 1 when the element of rank r (value m-1-r, 0-based) has
    // been accessed in B. Indexed here by value for clarity; the paper indexes
    // by rank r = m - a (1-based r = m - a + 1), which is a mirror image.
    let mut seen = vec![false; m];
    let mut distances = Vec::with_capacity(m);
    for i in 0..m {
        let a = sigma.apply(i);
        // repeats = number of values greater than a already seen in B.
        let repeats = seen[a + 1..].iter().filter(|&&b| b).count();
        let reuse_interval = (m - 1 - a) + (i + 1);
        distances.push(reuse_interval - repeats);
        seen[a] = true;
    }
    distances
}

/// Reuse distances of the second-traversal accesses computed with a Fenwick
/// tree over values (`O(m log m)`): the prefix-sum of the paper's bit vector
/// is replaced by a tree query.
///
/// Allocating wrapper over [`second_pass_distances_with_scratch`].
#[must_use]
pub fn second_pass_distances(sigma: &Permutation) -> Vec<usize> {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    second_pass_distances_with_scratch(sigma, &mut scratch).to_vec()
}

/// Scratch-reusing [`second_pass_distances`]: computes into `scratch` and
/// returns the borrowed distance slice (valid until the next kernel call).
pub fn second_pass_distances_with_scratch<'a>(
    sigma: &Permutation,
    scratch: &'a mut AnalysisScratch,
) -> &'a [usize] {
    scratch.pass(sigma);
    scratch.distances()
}

/// The reuse-distance histogram of the full re-traversal `A σ(A)`: `m` cold
/// accesses (the first traversal) plus the finite distances of the second
/// traversal.
///
/// Allocating wrapper over [`rd_histogram_with_scratch`].
#[must_use]
pub fn rd_histogram(sigma: &Permutation) -> ReuseDistanceHistogram {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    rd_histogram_with_scratch(sigma, &mut scratch)
}

/// Scratch-reusing [`rd_histogram`]: the intermediate Fenwick/distance work
/// reuses `scratch`; only the returned histogram is allocated.
pub fn rd_histogram_with_scratch(
    sigma: &Permutation,
    scratch: &mut AnalysisScratch,
) -> ReuseDistanceHistogram {
    scratch.pass(sigma);
    let mut h = ReuseDistanceHistogram::new();
    for _ in 0..sigma.degree() {
        h.record(None);
    }
    for &d in scratch.distances() {
        h.record(Some(d));
    }
    h
}

/// The cache-hit vector `hits_C(σ) = (hits_1, .., hits_m)` of the
/// re-traversal `A σ(A)` (Definition 3), computed by Algorithm 1.
///
/// Allocating wrapper over [`hit_vector_with_scratch`].
#[must_use]
pub fn hit_vector(sigma: &Permutation) -> HitVector {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    let hits = hit_vector_with_scratch(sigma, &mut scratch).to_vec();
    HitVector::new(hits, 2 * sigma.degree())
}

/// Scratch-reusing [`hit_vector`]: computes into `scratch` and returns the
/// borrowed dense hit slice (index 0 = cache size 1, out of `2m` accesses;
/// valid until the next kernel call).
pub fn hit_vector_with_scratch<'a>(
    sigma: &Permutation,
    scratch: &'a mut AnalysisScratch,
) -> &'a [usize] {
    scratch.pass(sigma);
    scratch.compute_hits()
}

/// The cache-hit vector computed by running the generic Olken/LRU simulator
/// of `symloc-cache` on the materialized trace. Used to cross-validate
/// Algorithm 1 (Theorem 1) in tests and benches.
#[must_use]
pub fn hit_vector_via_simulation(sigma: &Permutation) -> HitVector {
    let trace = retraversal_trace(sigma);
    let profile = reuse_profile(&trace);
    profile.hit_vector_up_to(sigma.degree())
}

/// Number of LRU hits of the re-traversal at a single cache size `c`.
#[must_use]
pub fn hits(sigma: &Permutation, c: usize) -> usize {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    hits_with_scratch(sigma, c, &mut scratch)
}

/// Scratch-reusing [`hits`].
pub fn hits_with_scratch(sigma: &Permutation, c: usize, scratch: &mut AnalysisScratch) -> usize {
    let m = sigma.degree();
    if c == 0 || m == 0 {
        return 0;
    }
    let hits = hit_vector_with_scratch(sigma, scratch);
    hits[c.min(m) - 1]
}

/// Miss ratio of the re-traversal at cache size `c`
/// (`mr(c; T) = 1 - hits_c / 2m`, Definition 2 with `#accesses = 2m`).
#[must_use]
pub fn miss_ratio(sigma: &Permutation, c: usize) -> f64 {
    let m = sigma.degree();
    if m == 0 {
        return 0.0;
    }
    1.0 - hits(sigma, c) as f64 / (2 * m) as f64
}

/// The full miss-ratio curve `MRC(T)` of the re-traversal over cache sizes
/// `0 ..= m`.
///
/// Allocating wrapper over [`mrc_with_scratch`].
#[must_use]
pub fn mrc(sigma: &Permutation) -> MissRatioCurve {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    mrc_with_scratch(sigma, &mut scratch)
}

/// Scratch-reusing [`mrc`]: the intermediate work reuses `scratch`; only the
/// returned curve is allocated.
pub fn mrc_with_scratch(sigma: &Permutation, scratch: &mut AnalysisScratch) -> MissRatioCurve {
    let m = sigma.degree();
    let hits = hit_vector_with_scratch(sigma, scratch);
    // hits counts out of 2m accesses.
    MissRatioCurve::from_hit_vector(&HitVector::new(hits.to_vec(), 2 * m))
}

/// Sum of the reuse distances of the second traversal — the scalar
/// "total reuse" the paper uses in the deep-learning comparison
/// (`n²m²` for cyclic vs `nm(nm+1)/2` for sawtooth on an `n×m` matrix).
#[must_use]
pub fn total_reuse_distance(sigma: &Permutation) -> u128 {
    let mut scratch = AnalysisScratch::new(sigma.degree());
    total_reuse_distance_with_scratch(sigma, &mut scratch)
}

/// Scratch-reusing [`total_reuse_distance`].
pub fn total_reuse_distance_with_scratch(
    sigma: &Permutation,
    scratch: &mut AnalysisScratch,
) -> u128 {
    scratch.pass(sigma);
    scratch.total_distance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::inversions::inversions;
    use symloc_perm::iter::LexIter;

    #[test]
    fn worked_example_from_paper() {
        // Paper Theorem 1 example: A σ(A) = 1 2 3 4 2 1 3 4, i.e. σ = [2,1,3,4].
        let sigma = Permutation::from_one_based(vec![2, 1, 3, 4]).unwrap();
        let d = second_pass_distances(&sigma);
        // Element 2 (rank 3): distance 3; elements 1, 3, 4: distance 4.
        assert_eq!(d, vec![3, 4, 4, 4]);
        let hv = hit_vector(&sigma);
        assert_eq!(hv.as_slice(), &[0, 0, 1, 4]);
        assert_eq!(hv.truncated_sum(), 1);
        assert_eq!(inversions(&sigma), 1);
    }

    #[test]
    fn cyclic_and_sawtooth_extremes() {
        let m = 6;
        let cyclic = Permutation::identity(m);
        assert_eq!(second_pass_distances(&cyclic), vec![m; m]);
        assert_eq!(hit_vector(&cyclic).as_slice(), &[0, 0, 0, 0, 0, 6]);

        let sawtooth = Permutation::reverse(m);
        assert_eq!(second_pass_distances(&sawtooth), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(hit_vector(&sawtooth).as_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sawtooth4_matches_paper_hit_vector() {
        let hv = hit_vector(&Permutation::reverse(4));
        assert_eq!(hv.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn naive_and_fenwick_agree_exhaustively() {
        for m in 0..=6usize {
            for sigma in LexIter::new(m) {
                assert_eq!(
                    second_pass_distances_naive(&sigma),
                    second_pass_distances(&sigma),
                    "σ = {sigma}"
                );
            }
        }
    }

    #[test]
    fn algorithm1_matches_generic_simulation_exhaustively() {
        // Theorem 1: the specialized algorithm agrees with LRU stack
        // simulation of the materialized trace.
        for m in 1..=6usize {
            for sigma in LexIter::new(m) {
                assert_eq!(
                    hit_vector(&sigma),
                    hit_vector_via_simulation(&sigma),
                    "σ = {sigma}"
                );
            }
        }
    }

    #[test]
    fn scratch_kernels_match_allocating_kernels_exhaustively() {
        // One workspace across every permutation of every degree: the reuse
        // (including cross-degree retargeting) must be invisible.
        let mut scratch = AnalysisScratch::new(0);
        for m in 0..=6usize {
            for sigma in LexIter::new(m) {
                assert_eq!(
                    second_pass_distances_with_scratch(&sigma, &mut scratch),
                    second_pass_distances_naive(&sigma),
                    "distances σ = {sigma}"
                );
                assert_eq!(
                    hit_vector_with_scratch(&sigma, &mut scratch),
                    hit_vector(&sigma).as_slice(),
                    "hits σ = {sigma}"
                );
                assert_eq!(
                    rd_histogram_with_scratch(&sigma, &mut scratch),
                    rd_histogram(&sigma),
                    "histogram σ = {sigma}"
                );
                assert_eq!(
                    mrc_with_scratch(&sigma, &mut scratch),
                    mrc(&sigma),
                    "mrc σ = {sigma}"
                );
                assert_eq!(
                    total_reuse_distance_with_scratch(&sigma, &mut scratch),
                    total_reuse_distance(&sigma),
                    "total σ = {sigma}"
                );
            }
        }
    }

    #[test]
    fn pass_returns_the_inversion_number() {
        let mut scratch = AnalysisScratch::new(5);
        for sigma in LexIter::new(5) {
            assert_eq!(scratch.pass(&sigma), inversions(&sigma), "σ = {sigma}");
        }
        // Raw-images entry point agrees.
        for sigma in LexIter::new(6) {
            assert_eq!(scratch.pass_images(sigma.images()), inversions(&sigma));
        }
        assert_eq!(scratch.degree(), 6);
    }

    #[test]
    fn distances_are_within_bounds() {
        for sigma in LexIter::new(7) {
            for d in second_pass_distances(&sigma) {
                assert!((1..=7).contains(&d));
            }
        }
    }

    #[test]
    fn hits_and_miss_ratio() {
        let sigma = Permutation::reverse(4);
        assert_eq!(hits(&sigma, 0), 0);
        assert_eq!(hits(&sigma, 2), 2);
        assert_eq!(hits(&sigma, 4), 4);
        assert_eq!(hits(&sigma, 100), 4);
        assert!((miss_ratio(&sigma, 4) - 0.5).abs() < 1e-12);
        assert!((miss_ratio(&sigma, 0) - 1.0).abs() < 1e-12);
        assert_eq!(miss_ratio(&Permutation::identity(0), 3), 0.0);
    }

    #[test]
    fn mrc_shape() {
        let curve = mrc(&Permutation::reverse(4));
        assert_eq!(curve.max_size(), 4);
        assert_eq!(curve.accesses(), 8);
        assert!((curve.miss_ratio(0) - 1.0).abs() < 1e-12);
        assert!((curve.miss_ratio(4) - 0.5).abs() < 1e-12);
        // The cyclic curve is flat at 1.0 until c = m.
        let flat = mrc(&Permutation::identity(4));
        for c in 0..4 {
            assert!((flat.miss_ratio(c) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn total_reuse_distance_extremes() {
        let m = 5u128;
        assert_eq!(total_reuse_distance(&Permutation::identity(5)), m * m);
        assert_eq!(
            total_reuse_distance(&Permutation::reverse(5)),
            m * (m + 1) / 2
        );
    }

    #[test]
    fn degenerate_degrees() {
        assert!(second_pass_distances(&Permutation::identity(0)).is_empty());
        assert_eq!(second_pass_distances(&Permutation::identity(1)), vec![1]);
        assert_eq!(hit_vector(&Permutation::identity(1)).as_slice(), &[1]);
        assert_eq!(total_reuse_distance(&Permutation::identity(0)), 0);
        let mut scratch = AnalysisScratch::new(0);
        assert_eq!(scratch.pass_images(&[]), 0);
        assert!(scratch.compute_hits().is_empty());
        assert_eq!(
            hits_with_scratch(&Permutation::identity(0), 3, &mut scratch),
            0
        );
    }
}
