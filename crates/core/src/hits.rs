//! Algorithm 1: reuse distances, hit vectors and miss-ratio curves of a
//! re-traversal, computed directly from the permutation.
//!
//! For the re-traversal `T = A σ(A)` the element `a` (0-based value) is
//! accessed at position `a` of `A` and at position `i = σ⁻¹(a)` of `B`.
//! Its reuse interval (position difference) is `(m - 1 - a) + (i + 1)`; its
//! reuse distance subtracts the number of *repeated* values in between, which
//! are exactly the values greater than `a` already accessed in `B[0..i]`:
//!
//! ```text
//! rd(a) = (m - 1 - a) + (i + 1) - |{ j < i : σ(j) > a }|
//! ```
//!
//! The paper states this with 1-based ranks `r(a) = m - a + 1`. Three
//! implementations are provided: the literal prefix-sum bit-vector algorithm
//! of the paper (`O(m²)`), a Fenwick-tree variant (`O(m log m)`), and a
//! cross-check through the generic LRU simulator of `symloc-cache`.

use symloc_cache::histogram::{HitVector, ReuseDistanceHistogram};
use symloc_cache::mrc::MissRatioCurve;
use symloc_cache::reuse::reuse_profile;
use symloc_perm::fenwick::Fenwick;
use symloc_perm::Permutation;
use symloc_trace::generators::retraversal_trace;

/// Reuse distances of the second-traversal accesses, in traversal order
/// (`result[i]` is the reuse distance of the access `B[i] = σ(i)`), computed
/// with the paper's Algorithm 1 using an explicit bit vector and prefix sums
/// (`O(m²)`).
///
/// Every second-traversal access of a re-traversal has a finite distance in
/// `1..=m`.
#[must_use]
pub fn second_pass_distances_naive(sigma: &Permutation) -> Vec<usize> {
    let m = sigma.degree();
    // c[r] flips to 1 when the element of rank r (value m-1-r, 0-based) has
    // been accessed in B. Indexed here by value for clarity; the paper indexes
    // by rank r = m - a (1-based r = m - a + 1), which is a mirror image.
    let mut seen = vec![false; m];
    let mut distances = Vec::with_capacity(m);
    for i in 0..m {
        let a = sigma.apply(i);
        // repeats = number of values greater than a already seen in B.
        let repeats = seen[a + 1..].iter().filter(|&&b| b).count();
        let reuse_interval = (m - 1 - a) + (i + 1);
        distances.push(reuse_interval - repeats);
        seen[a] = true;
    }
    distances
}

/// Reuse distances of the second-traversal accesses computed with a Fenwick
/// tree over values (`O(m log m)`): the prefix-sum of the paper's bit vector
/// is replaced by a tree query.
#[must_use]
pub fn second_pass_distances(sigma: &Permutation) -> Vec<usize> {
    let m = sigma.degree();
    let mut tree = Fenwick::new(m);
    let mut distances = Vec::with_capacity(m);
    for i in 0..m {
        let a = sigma.apply(i);
        // Values greater than a already accessed in B.
        let repeats = tree.range_sum(a + 1, m) as usize;
        let reuse_interval = (m - 1 - a) + (i + 1);
        distances.push(reuse_interval - repeats);
        tree.add(a, 1);
    }
    distances
}

/// The reuse-distance histogram of the full re-traversal `A σ(A)`: `m` cold
/// accesses (the first traversal) plus the finite distances of the second
/// traversal.
#[must_use]
pub fn rd_histogram(sigma: &Permutation) -> ReuseDistanceHistogram {
    let m = sigma.degree();
    let mut h = ReuseDistanceHistogram::new();
    for _ in 0..m {
        h.record(None);
    }
    for d in second_pass_distances(sigma) {
        h.record(Some(d));
    }
    h
}

/// The cache-hit vector `hits_C(σ) = (hits_1, .., hits_m)` of the
/// re-traversal `A σ(A)` (Definition 3), computed by Algorithm 1.
#[must_use]
pub fn hit_vector(sigma: &Permutation) -> HitVector {
    let m = sigma.degree();
    rd_histogram(sigma).hit_vector(m)
}

/// The cache-hit vector computed by running the generic Olken/LRU simulator
/// of `symloc-cache` on the materialized trace. Used to cross-validate
/// Algorithm 1 (Theorem 1) in tests and benches.
#[must_use]
pub fn hit_vector_via_simulation(sigma: &Permutation) -> HitVector {
    let trace = retraversal_trace(sigma);
    let profile = reuse_profile(&trace);
    profile.hit_vector_up_to(sigma.degree())
}

/// Number of LRU hits of the re-traversal at a single cache size `c`.
#[must_use]
pub fn hits(sigma: &Permutation, c: usize) -> usize {
    rd_histogram(sigma).hits_at(c)
}

/// Miss ratio of the re-traversal at cache size `c`
/// (`mr(c; T) = 1 - hits_c / 2m`, Definition 2 with `#accesses = 2m`).
#[must_use]
pub fn miss_ratio(sigma: &Permutation, c: usize) -> f64 {
    let m = sigma.degree();
    if m == 0 {
        return 0.0;
    }
    1.0 - hits(sigma, c) as f64 / (2 * m) as f64
}

/// The full miss-ratio curve `MRC(T)` of the re-traversal over cache sizes
/// `0 ..= m`.
#[must_use]
pub fn mrc(sigma: &Permutation) -> MissRatioCurve {
    let m = sigma.degree();
    let hv = rd_histogram(sigma).hit_vector(m);
    // hv counts hits out of 2m accesses.
    MissRatioCurve::from_hit_vector(&HitVector::new(hv.as_slice().to_vec(), 2 * m))
}

/// Sum of the reuse distances of the second traversal — the scalar
/// "total reuse" the paper uses in the deep-learning comparison
/// (`n²m²` for cyclic vs `nm(nm+1)/2` for sawtooth on an `n×m` matrix).
#[must_use]
pub fn total_reuse_distance(sigma: &Permutation) -> u128 {
    second_pass_distances(sigma)
        .into_iter()
        .map(|d| d as u128)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_perm::inversions::inversions;
    use symloc_perm::iter::LexIter;

    #[test]
    fn worked_example_from_paper() {
        // Paper Theorem 1 example: A σ(A) = 1 2 3 4 2 1 3 4, i.e. σ = [2,1,3,4].
        let sigma = Permutation::from_one_based(vec![2, 1, 3, 4]).unwrap();
        let d = second_pass_distances(&sigma);
        // Element 2 (rank 3): distance 3; elements 1, 3, 4: distance 4.
        assert_eq!(d, vec![3, 4, 4, 4]);
        let hv = hit_vector(&sigma);
        assert_eq!(hv.as_slice(), &[0, 0, 1, 4]);
        assert_eq!(hv.truncated_sum(), 1);
        assert_eq!(inversions(&sigma), 1);
    }

    #[test]
    fn cyclic_and_sawtooth_extremes() {
        let m = 6;
        let cyclic = Permutation::identity(m);
        assert_eq!(second_pass_distances(&cyclic), vec![m; m]);
        assert_eq!(hit_vector(&cyclic).as_slice(), &[0, 0, 0, 0, 0, 6]);

        let sawtooth = Permutation::reverse(m);
        assert_eq!(second_pass_distances(&sawtooth), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(hit_vector(&sawtooth).as_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sawtooth4_matches_paper_hit_vector() {
        let hv = hit_vector(&Permutation::reverse(4));
        assert_eq!(hv.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn naive_and_fenwick_agree_exhaustively() {
        for m in 0..=6usize {
            for sigma in LexIter::new(m) {
                assert_eq!(
                    second_pass_distances_naive(&sigma),
                    second_pass_distances(&sigma),
                    "σ = {sigma}"
                );
            }
        }
    }

    #[test]
    fn algorithm1_matches_generic_simulation_exhaustively() {
        // Theorem 1: the specialized algorithm agrees with LRU stack
        // simulation of the materialized trace.
        for m in 1..=6usize {
            for sigma in LexIter::new(m) {
                assert_eq!(
                    hit_vector(&sigma),
                    hit_vector_via_simulation(&sigma),
                    "σ = {sigma}"
                );
            }
        }
    }

    #[test]
    fn distances_are_within_bounds() {
        for sigma in LexIter::new(7) {
            for d in second_pass_distances(&sigma) {
                assert!((1..=7).contains(&d));
            }
        }
    }

    #[test]
    fn hits_and_miss_ratio() {
        let sigma = Permutation::reverse(4);
        assert_eq!(hits(&sigma, 0), 0);
        assert_eq!(hits(&sigma, 2), 2);
        assert_eq!(hits(&sigma, 4), 4);
        assert!((miss_ratio(&sigma, 4) - 0.5).abs() < 1e-12);
        assert!((miss_ratio(&sigma, 0) - 1.0).abs() < 1e-12);
        assert_eq!(miss_ratio(&Permutation::identity(0), 3), 0.0);
    }

    #[test]
    fn mrc_shape() {
        let curve = mrc(&Permutation::reverse(4));
        assert_eq!(curve.max_size(), 4);
        assert_eq!(curve.accesses(), 8);
        assert!((curve.miss_ratio(0) - 1.0).abs() < 1e-12);
        assert!((curve.miss_ratio(4) - 0.5).abs() < 1e-12);
        // The cyclic curve is flat at 1.0 until c = m.
        let flat = mrc(&Permutation::identity(4));
        for c in 0..4 {
            assert!((flat.miss_ratio(c) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn total_reuse_distance_extremes() {
        let m = 5u128;
        assert_eq!(
            total_reuse_distance(&Permutation::identity(5)),
            m * m
        );
        assert_eq!(
            total_reuse_distance(&Permutation::reverse(5)),
            m * (m + 1) / 2
        );
    }

    #[test]
    fn degenerate_degrees() {
        assert!(second_pass_distances(&Permutation::identity(0)).is_empty());
        assert_eq!(second_pass_distances(&Permutation::identity(1)), vec![1]);
        assert_eq!(hit_vector(&Permutation::identity(1)).as_slice(), &[1]);
        assert_eq!(total_reuse_distance(&Permutation::identity(0)), 0);
    }
}
