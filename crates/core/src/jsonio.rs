//! Minimal hand-rolled JSON reading and writing.
//!
//! The build environment is fully offline (no serde), so the sweep
//! checkpoints and the bench tooling serialize by formatting strings and
//! deserialize through this small recursive-descent parser. It supports the
//! JSON subset those documents use — objects, arrays, strings with the
//! escapes [`escape`] emits, integers, floats, booleans and null — and is
//! *not* a general-purpose validator (it is permissive about things like
//! duplicate keys).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `u128`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Int(i) => u128::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer in range.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Writes a checkpoint document to `path` atomically: the bytes land in a
/// sibling `.json.tmp` file first and are renamed over the target, so a
/// kill mid-save leaves the previous checkpoint intact. The single save
/// path every checkpointing runner (`ShardedSweep`, `SampledSweep`,
/// `TraceIngest`, `SampledIngest`) goes through.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn save_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(format!("unexpected {:?} at byte {}", c as char, *pos)),
        None => Err("unexpected end of document".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    if !is_float {
        if let Ok(i) = token.parse::<i128>() {
            return Ok(JsonValue::Int(i));
        }
    }
    token
        .parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("malformed number {token:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            parse("\"hi\\n\\\"there\\\"\"").unwrap(),
            JsonValue::Str("hi\n\"there\"".to_string())
        );
        assert_eq!(parse("\"\\u0041\"").unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn parses_structures_and_accessors() {
        let doc = parse(
            r#"{"name": "sweep", "m": 12, "rate": 3.5,
                "shards": [[0, 10], [10, 20]], "done": [true, false], "x": null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some("sweep"));
        assert_eq!(doc.get("m").and_then(JsonValue::as_usize), Some(12));
        assert_eq!(doc.get("m").and_then(JsonValue::as_u64), Some(12));
        assert_eq!(doc.get("m").and_then(JsonValue::as_u128), Some(12));
        assert_eq!(doc.get("rate").and_then(JsonValue::as_f64), Some(3.5));
        let shards = doc.get("shards").and_then(JsonValue::as_array).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[1].as_array().unwrap()[0].as_u128(), Some(10));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("x"), Some(&JsonValue::Null));
        assert_eq!(JsonValue::Null.as_str(), None);
        assert_eq!(JsonValue::Null.as_f64(), None);
        assert_eq!(JsonValue::Bool(true).as_array(), None);
        assert_eq!(JsonValue::Float(1.5).as_u64(), None);
        assert_eq!(JsonValue::Int(-1).as_usize(), None);
    }

    #[test]
    fn huge_integers_stay_exact() {
        // 27! needs more than f64's 53-bit mantissa; it must not round.
        let v = parse("10888869450418352160768000000").unwrap();
        assert_eq!(v.as_u128(), Some(10_888_869_450_418_352_160_768_000_000));
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote \" slash \\ newline \n tab \t bell \u{1} done";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "[1] extra",
            "{1: 2}",
            "nul",
            "+5",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
