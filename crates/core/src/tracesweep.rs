//! The streaming trace-analysis subsystem: online reuse-distance histograms
//! and miss-ratio curves over traces that are never materialized.
//!
//! The batch pipeline (`symloc_cache::reuse::reuse_profile`) allocates a
//! Fenwick tree over the *whole trace length* and a distance vector of the
//! same size, which caps it at toy traces. This module re-applies the sweep
//! subsystem's engineering — streaming aggregation, sharded parallelism,
//! hand-rolled JSON checkpoints, bench gates — to arbitrary-length traces:
//!
//! * [`OnlineReuseEngine`] — the exact single-pass engine: a last-access
//!   hash map plus a [`Fenwick`] tree over **compressed timestamps**. Only
//!   live markers (one per distinct address) survive compaction, so the
//!   tree is `O(footprint)` instead of `O(trace length)`; each access costs
//!   `O(log footprint)`.
//! * [`ShardsEstimator`] — a bounded-memory sampled estimator in the style
//!   of SHARDS (hash-based spatial sampling): addresses are sampled by a
//!   fixed hash condition, the tracked set is capped at `s_max` by evicting
//!   the largest-hash address and lowering the sampling threshold, and
//!   sampled distances/counts are rescaled by the sampling rate. Memory is
//!   `O(s_max)` no matter how many distinct addresses the trace touches.
//! * [`ChunkPartial`] / [`MergeState`] — chunk-sharded parallel ingestion:
//!   each worker folds a contiguous chunk of the trace into a *mergeable*
//!   partial (resolved within-chunk distances, the chunk's first accesses
//!   with their distinct-before counts, and its distinct addresses in
//!   last-access order); partials merge left-to-right into exactly the
//!   sequential result. This is the PARDA decomposition of the stack
//!   distance problem, driven by [`symloc_par::parallel_reduce_chunked`].
//! * [`TraceIngest`] — the resumable runner: chunk partials are absorbed in
//!   order and the merge state (histogram + compressed timeline) checkpoints
//!   as hand-rolled JSON after every batch, so a killed ingest resumes to a
//!   byte-identical final checkpoint (same guarantee, and same test
//!   strategy, as `crate::shard::ShardedSweep`).
//!
//! ```
//! use symloc_core::tracesweep::OnlineReuseEngine;
//!
//! let mut engine = OnlineReuseEngine::new();
//! for addr in [0u64, 1, 2, 0, 1, 2] {
//!     engine.record(addr);
//! }
//! assert_eq!(engine.footprint(), 3);
//! assert_eq!(engine.histogram().count_at(3), 3);
//! ```

use crate::jsonio::{self, JsonValue};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt::Write as _;
use std::path::Path;
use symloc_par::{parallel_reduce_chunked, split_indices};
use symloc_perm::fenwick::Fenwick;
use symloc_trace::stream::TraceSource;

/// Format tag embedded in every ingest checkpoint document.
const CHECKPOINT_KIND: &str = "symloc_trace_ingest_checkpoint";
/// Ingest checkpoint schema version.
const CHECKPOINT_VERSION: u64 = 1;

/// Smallest Fenwick capacity a timeline starts with (kept low so the
/// compaction path is exercised constantly, not only at scale).
const MIN_TIMELINE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A sparse reuse-distance histogram with `u64` counts, built online.
///
/// The streaming counterpart of `symloc_cache`'s dense-trace histogram:
/// distances are keyed sparsely (a trace touches at most `footprint`
/// distinct distances) and counts are 64-bit so multi-billion-access traces
/// aggregate without overflow.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamHistogram {
    counts: BTreeMap<usize, u64>,
    cold: u64,
}

impl StreamHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` accesses at finite reuse distance `d`.
    ///
    /// # Panics
    ///
    /// Panics on `d == 0`; the smallest legal stack distance is 1.
    pub fn record_finite(&mut self, d: usize, count: u64) {
        assert!(d > 0, "reuse distance 0 is not representable");
        *self.counts.entry(d).or_insert(0) += count;
    }

    /// Records `count` cold (infinite-distance) accesses.
    pub fn record_cold(&mut self, count: u64) {
        self.cold += count;
    }

    /// Number of accesses with exactly distance `d`.
    #[must_use]
    pub fn count_at(&self, d: usize) -> u64 {
        self.counts.get(&d).copied().unwrap_or(0)
    }

    /// Number of cold accesses.
    #[must_use]
    pub fn cold_count(&self) -> u64 {
        self.cold
    }

    /// Number of accesses with finite distance.
    #[must_use]
    pub fn finite_count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total recorded accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.cold + self.finite_count()
    }

    /// Number of accesses with distance `<= c` (hits of an LRU cache of
    /// size `c`).
    #[must_use]
    pub fn hits_up_to(&self, c: usize) -> u64 {
        self.counts.range(..=c).map(|(_, &n)| n).sum()
    }

    /// Miss ratio of an LRU cache of size `c`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn miss_ratio(&self, c: usize) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.hits_up_to(c) as f64 / total as f64
    }

    /// Largest finite distance recorded.
    #[must_use]
    pub fn max_distance(&self) -> Option<usize> {
        self.counts.keys().next_back().copied()
    }

    /// Iterates over `(distance, count)` in increasing distance order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &StreamHistogram) {
        for (d, c) in other.iter() {
            *self.counts.entry(d).or_insert(0) += c;
        }
        self.cold += other.cold;
    }

    /// The miss-ratio curve evaluated at `sizes` (each in one pass over the
    /// sparse histogram; `sizes` need not be sorted).
    #[must_use]
    pub fn mrc_points(&self, sizes: &[usize]) -> Vec<MrcPoint> {
        mrc_points_from(sizes, self.accesses() as f64, |c| self.hits_up_to(c) as f64)
    }
}

/// A weighted (fractional-count) reuse-distance histogram, the accumulator
/// of the sampled estimator: every sampled access contributes `1/rate`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedHistogram {
    counts: BTreeMap<usize, f64>,
    cold: f64,
}

impl WeightedHistogram {
    /// Records a finite distance with the given weight.
    pub fn record_finite(&mut self, d: usize, weight: f64) {
        assert!(d > 0, "reuse distance 0 is not representable");
        *self.counts.entry(d).or_insert(0.0) += weight;
    }

    /// Records a cold access with the given weight.
    pub fn record_cold(&mut self, weight: f64) {
        self.cold += weight;
    }

    /// Estimated cold (first-touch) accesses.
    #[must_use]
    pub fn cold_weight(&self) -> f64 {
        self.cold
    }

    /// Estimated total accesses.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.cold + self.counts.values().sum::<f64>()
    }

    /// Estimated accesses with distance `<= c`.
    #[must_use]
    pub fn hits_up_to(&self, c: usize) -> f64 {
        self.counts.range(..=c).map(|(_, &w)| w).sum()
    }

    /// Estimated miss ratio of an LRU cache of size `c`.
    #[must_use]
    pub fn miss_ratio(&self, c: usize) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            return 0.0;
        }
        (1.0 - self.hits_up_to(c) / total).clamp(0.0, 1.0)
    }

    /// Largest (scaled) finite distance recorded.
    #[must_use]
    pub fn max_distance(&self) -> Option<usize> {
        self.counts.keys().next_back().copied()
    }

    /// The estimated miss-ratio curve evaluated at `sizes`.
    #[must_use]
    pub fn mrc_points(&self, sizes: &[usize]) -> Vec<MrcPoint> {
        mrc_points_from(sizes, self.total_weight(), |c| self.hits_up_to(c))
    }
}

/// One point of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Cache size (distinct elements held).
    pub cache_size: usize,
    /// Miss ratio at that size.
    pub miss_ratio: f64,
}

fn mrc_points_from(
    sizes: &[usize],
    total: f64,
    hits_up_to: impl Fn(usize) -> f64,
) -> Vec<MrcPoint> {
    sizes
        .iter()
        .map(|&c| MrcPoint {
            cache_size: c,
            miss_ratio: if total <= 0.0 {
                0.0
            } else {
                (1.0 - hits_up_to(c) / total).clamp(0.0, 1.0)
            },
        })
        .collect()
}

/// `count` log-spaced cache sizes covering `1 ..= max` (deduplicated,
/// ascending, always ending at `max`). The natural evaluation grid for an
/// MRC whose footprint spans orders of magnitude.
#[must_use]
pub fn log_spaced_sizes(max: usize, count: usize) -> Vec<usize> {
    if max == 0 {
        return Vec::new();
    }
    let count = count.max(2);
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    let mut sizes: Vec<usize> = (0..count)
        .map(|i| {
            let exponent = i as f64 / (count - 1) as f64;
            ((max as f64).powf(exponent)).round() as usize
        })
        .map(|c| c.clamp(1, max))
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

// ---------------------------------------------------------------------------
// The compressed timeline
// ---------------------------------------------------------------------------

/// The shared core of every engine here: a Fenwick tree over *compressed
/// timestamps* plus a last-access map. Each distinct address owns exactly
/// one marker; timestamps are dense slot indices that are periodically
/// compacted (live markers re-packed in order), so the tree's size tracks
/// the number of live addresses, not the number of accesses.
#[derive(Debug, Clone)]
struct Timeline {
    tree: Fenwick,
    last_slot: HashMap<u64, usize>,
    next_slot: usize,
}

impl Timeline {
    fn new() -> Self {
        Timeline {
            tree: Fenwick::new(MIN_TIMELINE_CAPACITY),
            last_slot: HashMap::new(),
            next_slot: 0,
        }
    }

    /// Number of live (tracked) addresses.
    fn live(&self) -> usize {
        self.last_slot.len()
    }

    /// Current tree capacity (for memory-bound assertions).
    fn capacity(&self) -> usize {
        self.tree.len()
    }

    /// Re-packs the live markers into slots `0..live` (preserving order)
    /// and resizes the tree to twice the live count. Called when the slot
    /// counter reaches the capacity; amortized `O(log)` per access.
    fn compact(&mut self) {
        let mut live: Vec<(usize, u64)> = self
            .last_slot
            .iter()
            .map(|(&addr, &slot)| (slot, addr))
            .collect();
        live.sort_unstable();
        let capacity = (live.len() * 2).max(MIN_TIMELINE_CAPACITY);
        self.tree.reset(capacity);
        self.last_slot.clear();
        for (new_slot, &(_, addr)) in live.iter().enumerate() {
            self.tree.add(new_slot, 1);
            self.last_slot.insert(addr, new_slot);
        }
        self.next_slot = live.len();
    }

    fn ensure_slot(&mut self) {
        if self.next_slot >= self.tree.len() {
            self.compact();
        }
    }

    /// Records one access: returns `Some(reuse distance)` when the address
    /// was live, `None` on a first touch. Either way the address's marker
    /// ends up at the newest slot.
    fn observe(&mut self, addr: u64) -> Option<usize> {
        self.ensure_slot();
        let distance = self.last_slot.get(&addr).copied().map(|prev| {
            let between = self.tree.range_sum(prev + 1, self.next_slot);
            self.tree.sub(prev, 1);
            usize::try_from(between).expect("distance fits usize") + 1
        });
        self.tree.add(self.next_slot, 1);
        self.last_slot.insert(addr, self.next_slot);
        self.next_slot += 1;
        distance
    }

    /// Number of live markers strictly after `slot`.
    fn markers_after(&self, slot: usize) -> u64 {
        self.tree.range_sum(slot + 1, self.next_slot)
    }

    /// Removes an address's marker; returns the slot it occupied.
    fn remove(&mut self, addr: u64) -> Option<usize> {
        let slot = self.last_slot.remove(&addr)?;
        self.tree.sub(slot, 1);
        Some(slot)
    }

    /// Appends a marker for `addr` at the newest slot (the address must not
    /// be live).
    fn append(&mut self, addr: u64) {
        self.ensure_slot();
        debug_assert!(!self.last_slot.contains_key(&addr), "append of live addr");
        self.tree.add(self.next_slot, 1);
        self.last_slot.insert(addr, self.next_slot);
        self.next_slot += 1;
    }

    /// The live addresses in timeline (last-access) order.
    fn ordered_addresses(&self) -> Vec<u64> {
        let mut live: Vec<(usize, u64)> = self
            .last_slot
            .iter()
            .map(|(&addr, &slot)| (slot, addr))
            .collect();
        live.sort_unstable();
        live.into_iter().map(|(_, addr)| addr).collect()
    }
}

// ---------------------------------------------------------------------------
// The exact online engine
// ---------------------------------------------------------------------------

/// The exact streaming reuse-distance engine: one [`Timeline`] pass, the
/// Olken algorithm over compressed timestamps. `O(log footprint)` per
/// access, `O(footprint)` memory, no dependence on trace length.
#[derive(Debug, Clone, Default)]
pub struct OnlineReuseEngine {
    timeline: Timeline,
    histogram: StreamHistogram,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

impl OnlineReuseEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access and returns its reuse distance (`None` = first
    /// touch).
    pub fn record(&mut self, addr: u64) -> Option<usize> {
        let distance = self.timeline.observe(addr);
        match distance {
            Some(d) => self.histogram.record_finite(d, 1),
            None => self.histogram.record_cold(1),
        }
        distance
    }

    /// Records every access of an iterator.
    pub fn record_all(&mut self, accesses: impl IntoIterator<Item = u64>) {
        for addr in accesses {
            self.record(addr);
        }
    }

    /// The histogram accumulated so far.
    #[must_use]
    pub fn histogram(&self) -> &StreamHistogram {
        &self.histogram
    }

    /// Consumes the engine, yielding the histogram.
    #[must_use]
    pub fn into_histogram(self) -> StreamHistogram {
        self.histogram
    }

    /// Accesses recorded so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.histogram.accesses()
    }

    /// Distinct addresses seen so far.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.timeline.live()
    }

    /// Current Fenwick capacity — bounded by twice the footprint (plus a
    /// small constant floor), never by the trace length.
    #[must_use]
    pub fn timeline_capacity(&self) -> usize {
        self.timeline.capacity()
    }

    /// Miss-ratio curve at the given cache sizes.
    #[must_use]
    pub fn mrc_points(&self, sizes: &[usize]) -> Vec<MrcPoint> {
        self.histogram.mrc_points(sizes)
    }
}

// ---------------------------------------------------------------------------
// The SHARDS-style bounded-memory estimator
// ---------------------------------------------------------------------------

/// The hash-space modulus of the sampling condition (`hash(addr) mod P`).
const SHARDS_MODULUS: u64 = 1 << 24;

/// SplitMix64: the spatial-sampling hash. Statistically uniform, cheap and
/// stateless, so the sampling decision for an address is globally
/// consistent across chunks, threads and runs.
#[must_use]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The bounded-memory sampled reuse-distance estimator (SHARDS-style).
///
/// An address is *sampled* iff `splitmix64(addr) mod P < T`; the sampling
/// rate is `R = T/P`. Sampled accesses run through a private [`Timeline`]
/// (so a sampled distance counts only sampled addresses) and are recorded
/// with distance and weight rescaled by `1/R`. When the tracked set
/// exceeds the `s_max` budget, the largest-hash address is evicted and `T`
/// drops to its hash — rate adaptation — keeping memory at `O(s_max)`
/// forever while the estimate keeps covering the whole address space.
///
/// Accuracy caveat: spatial sampling keeps or drops *whole addresses*, so
/// the estimator's variance is governed by the access share of individual
/// addresses — when a single address owns several percent of the trace
/// (tiny, extremely skewed synthetic address spaces), its hash luck moves
/// the whole weighted curve. On workloads where no address dominates
/// (real cache-line traces, moderate skew, large address spaces) the
/// error behaves like `1/√s_max`; the property tests pin both regimes.
#[derive(Debug, Clone)]
pub struct ShardsEstimator {
    s_max: usize,
    threshold: u64,
    timeline: Timeline,
    /// Max-heap of `(hash, addr)` over tracked addresses, for eviction.
    by_hash: BinaryHeap<(u64, u64)>,
    histogram: WeightedHistogram,
    /// Every access seen, sampled or not.
    raw_accesses: u64,
    /// Sampled accesses actually processed.
    sampled_accesses: u64,
    evictions: u64,
}

impl ShardsEstimator {
    /// Creates an estimator with a tracked-address budget of `s_max`.
    ///
    /// # Panics
    ///
    /// Panics if `s_max == 0`.
    #[must_use]
    pub fn new(s_max: usize) -> Self {
        assert!(s_max > 0, "the sampling budget must be positive");
        ShardsEstimator {
            s_max,
            threshold: SHARDS_MODULUS,
            timeline: Timeline::new(),
            by_hash: BinaryHeap::new(),
            histogram: WeightedHistogram::default(),
            raw_accesses: 0,
            sampled_accesses: 0,
            evictions: 0,
        }
    }

    /// The current sampling rate `T/P` (1.0 until the budget first binds).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn sampling_rate(&self) -> f64 {
        self.threshold as f64 / SHARDS_MODULUS as f64
    }

    /// Records one access.
    pub fn record(&mut self, addr: u64) {
        self.raw_accesses += 1;
        let hash = splitmix64(addr) % SHARDS_MODULUS;
        if hash >= self.threshold {
            return;
        }
        let rate = self.sampling_rate();
        let weight = 1.0 / rate;
        self.sampled_accesses += 1;
        match self.timeline.observe(addr) {
            Some(sampled_distance) => {
                #[allow(
                    clippy::cast_precision_loss,
                    clippy::cast_sign_loss,
                    clippy::cast_possible_truncation
                )]
                let scaled = ((sampled_distance as f64 / rate).round() as usize).max(1);
                self.histogram.record_finite(scaled, weight);
            }
            None => {
                self.histogram.record_cold(weight);
                self.by_hash.push((hash, addr));
                if self.timeline.live() > self.s_max {
                    self.evict();
                }
            }
        }
    }

    /// Records every access of an iterator.
    pub fn record_all(&mut self, accesses: impl IntoIterator<Item = u64>) {
        for addr in accesses {
            self.record(addr);
        }
    }

    /// Evicts the largest-hash tracked address and lowers the threshold so
    /// that hash (and everything above) is never sampled again.
    fn evict(&mut self) {
        let Some(&(max_hash, _)) = self.by_hash.peek() else {
            return;
        };
        self.threshold = max_hash;
        while let Some(&(hash, addr)) = self.by_hash.peek() {
            if hash < self.threshold {
                break;
            }
            self.by_hash.pop();
            if self.timeline.remove(addr).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// The weighted histogram accumulated so far.
    #[must_use]
    pub fn histogram(&self) -> &WeightedHistogram {
        &self.histogram
    }

    /// Every access seen (sampled or not).
    #[must_use]
    pub fn raw_accesses(&self) -> u64 {
        self.raw_accesses
    }

    /// Sampled accesses actually processed.
    #[must_use]
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Addresses currently tracked (always `<= s_max + 1` transiently,
    /// `<= s_max` between records).
    #[must_use]
    pub fn tracked_addresses(&self) -> usize {
        self.timeline.live()
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.s_max
    }

    /// Rate-adaptation evictions performed so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Estimated distinct addresses (weighted cold count).
    #[must_use]
    pub fn estimated_footprint(&self) -> f64 {
        self.histogram.cold_weight()
    }

    /// Estimated miss-ratio curve at the given cache sizes.
    #[must_use]
    pub fn mrc_points(&self, sizes: &[usize]) -> Vec<MrcPoint> {
        self.histogram.mrc_points(sizes)
    }
}

// ---------------------------------------------------------------------------
// Chunk-sharded parallel ingestion
// ---------------------------------------------------------------------------

/// The mergeable partial result of one contiguous trace chunk.
///
/// Within-chunk reuses are fully resolved into `histogram`; each address's
/// *first* chunk access is recorded in `unresolved` together with the
/// number of distinct addresses the chunk touched before it (its exact
/// within-chunk distance contribution); `last_order` lists the chunk's
/// distinct addresses by last access, which is all later chunks ever need
/// to know about this one. Merging partials left-to-right through
/// [`MergeState::absorb`] reproduces the sequential engine exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPartial {
    /// Resolved within-chunk distances.
    pub histogram: StreamHistogram,
    /// `(addr, distinct addresses seen earlier in the chunk)` for every
    /// first-in-chunk access, in access order.
    pub unresolved: Vec<(u64, u64)>,
    /// The chunk's distinct addresses ordered by their last access.
    pub last_order: Vec<u64>,
    /// Accesses in the chunk.
    pub accesses: u64,
}

/// Folds one contiguous chunk of accesses into a [`ChunkPartial`].
/// Embarrassingly parallel across chunks; `O(chunk footprint)` memory.
#[must_use]
pub fn chunk_partial(accesses: impl IntoIterator<Item = u64>) -> ChunkPartial {
    let mut timeline = Timeline::new();
    let mut histogram = StreamHistogram::new();
    let mut unresolved = Vec::new();
    let mut count = 0u64;
    for addr in accesses {
        count += 1;
        match timeline.observe(addr) {
            Some(d) => histogram.record_finite(d, 1),
            None => unresolved.push((addr, (timeline.live() - 1) as u64)),
        }
    }
    ChunkPartial {
        histogram,
        unresolved,
        last_order: timeline.ordered_addresses(),
        accesses: count,
    }
}

/// The left-to-right merge state of sharded ingestion: a global compressed
/// timeline of every address's last absorbed access, plus the global
/// histogram. Absorbing the chunks of a trace in order yields exactly the
/// sequential [`OnlineReuseEngine`] result.
#[derive(Debug, Clone, Default)]
pub struct MergeState {
    timeline: Timeline,
    histogram: StreamHistogram,
}

impl MergeState {
    /// Creates an empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs the next chunk's partial. Must be called in chunk order.
    pub fn absorb(&mut self, partial: &ChunkPartial) {
        // Resolve the chunk's first accesses against the global timeline:
        // the distance of a cross-chunk reuse is (distinct addresses earlier
        // in the chunk) + (older-chunk addresses whose marker still sits
        // after the previous access) + 1. Removing each resolved address's
        // marker as we go is exactly Olken's dedup — an address both in the
        // global timeline and earlier in this chunk is counted once, by the
        // chunk-local term.
        for &(addr, distinct_before) in &partial.unresolved {
            match self.timeline.remove(addr) {
                Some(prev) => {
                    let between = self.timeline.markers_after(prev);
                    let d = usize::try_from(distinct_before + between).expect("distance fits") + 1;
                    self.histogram.record_finite(d, 1);
                }
                None => self.histogram.record_cold(1),
            }
        }
        self.histogram.merge(&partial.histogram);
        // Extend the global timeline with the chunk's last accesses, in
        // their within-chunk order.
        for &addr in &partial.last_order {
            self.timeline.append(addr);
        }
    }

    /// The global histogram so far.
    #[must_use]
    pub fn histogram(&self) -> &StreamHistogram {
        &self.histogram
    }

    /// Distinct addresses absorbed so far.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.timeline.live()
    }
}

// ---------------------------------------------------------------------------
// The resumable sharded ingest
// ---------------------------------------------------------------------------

/// A chunk-sharded, checkpointable ingest of one trace source.
///
/// The trace is split into `chunk_count` contiguous chunks; each pending
/// batch of up to `threads` chunks is folded into [`ChunkPartial`]s in
/// parallel ([`symloc_par::parallel_reduce_chunked`] — the partials are the
/// monoid) and absorbed in order into the [`MergeState`]. After every batch
/// the state serializes to a JSON checkpoint; a killed ingest resumes from
/// it and finishes with a byte-identical final checkpoint.
#[derive(Debug, Clone)]
pub struct TraceIngest {
    fingerprint: String,
    total: u64,
    chunk_count: usize,
    threads: usize,
    next_chunk: usize,
    state: MergeState,
}

impl TraceIngest {
    /// Plans an ingest of `source` split into `chunk_count` chunks.
    ///
    /// Scans the source once to learn (and validate) its length.
    ///
    /// # Errors
    ///
    /// Returns the source's read or parse error as a string.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_count == 0`.
    pub fn new(source: &TraceSource, chunk_count: usize, threads: usize) -> Result<Self, String> {
        let total = source
            .total_accesses()
            .map_err(|e| format!("cannot scan {source}: {e}"))?;
        Ok(Self::with_total(source, total, chunk_count, threads))
    }

    /// Plans a fresh ingest for a source whose length is already known.
    fn with_total(source: &TraceSource, total: u64, chunk_count: usize, threads: usize) -> Self {
        assert!(chunk_count > 0, "at least one chunk is required");
        TraceIngest {
            fingerprint: source.fingerprint(),
            total,
            chunk_count: Self::effective_chunk_count(chunk_count, total),
            threads: threads.max(1),
            next_chunk: 0,
            state: MergeState::new(),
        }
    }

    /// More chunks than accesses degrade gracefully to one chunk per access
    /// (and one chunk for an empty trace), mirroring the shard planner.
    fn effective_chunk_count(requested: usize, total: u64) -> usize {
        requested.min(usize::try_from(total.max(1)).unwrap_or(usize::MAX))
    }

    /// The source fingerprint the ingest belongs to.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Total accesses of the source.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of planned chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// Number of chunks already absorbed.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.next_chunk
    }

    /// True when every chunk has been absorbed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.next_chunk >= self.chunk_count
    }

    /// The deterministic chunk plan (contiguous access ranges).
    fn chunk_bounds(&self) -> Vec<(u64, u64)> {
        split_indices(
            usize::try_from(self.total).expect("trace length fits usize"),
            self.chunk_count,
        )
        .into_iter()
        .map(|c| (c.start as u64, c.end as u64))
        .collect()
    }

    /// Runs up to `limit` pending chunks (all of them when `None`) in
    /// parallel batches of the configured thread count, absorbing partials
    /// in chunk order. Returns how many chunks were processed.
    ///
    /// # Panics
    ///
    /// Panics if the source no longer matches the ingest's fingerprint, or
    /// if it fails to stream (sources are validated by [`TraceIngest::new`]).
    pub fn run_pending(&mut self, source: &TraceSource, limit: Option<usize>) -> usize {
        assert_eq!(
            source.fingerprint(),
            self.fingerprint,
            "ingest resumed against a different trace source"
        );
        let bounds = self.chunk_bounds();
        let mut ran = 0usize;
        while !self.is_complete() && limit.is_none_or(|l| ran < l) {
            let remaining = self.chunk_count - self.next_chunk;
            let batch = remaining
                .min(self.threads)
                .min(limit.map_or(usize::MAX, |l| l - ran));
            let first = self.next_chunk;
            // Each worker folds a contiguous run of chunks into partials;
            // concatenation (the merge) preserves chunk order, so the
            // result is the ordered partial list regardless of threads.
            let partials: Vec<(usize, ChunkPartial)> = parallel_reduce_chunked(
                batch,
                self.threads,
                Vec::new,
                |mut acc, span| {
                    for offset in span.start..span.end {
                        let (start, end) = bounds[first + offset];
                        let stream = source
                            .stream_range(start, end)
                            .expect("validated source streams");
                        acc.push((first + offset, chunk_partial(stream)));
                    }
                    acc
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            debug_assert!(partials.windows(2).all(|w| w[0].0 < w[1].0));
            for (_, partial) in &partials {
                self.state.absorb(partial);
            }
            self.next_chunk += batch;
            ran += batch;
        }
        ran
    }

    /// Runs pending chunks — all, or up to `limit` — saving the checkpoint
    /// after every absorbed batch, so a kill loses at most one batch.
    /// `on_batch(completed, total)` fires after every save. The checkpoint
    /// is (re)written even when nothing was pending.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a checkpoint cannot be written.
    pub fn run_with_checkpoint(
        &mut self,
        source: &TraceSource,
        path: &Path,
        limit: Option<usize>,
        mut on_batch: impl FnMut(usize, usize),
    ) -> std::io::Result<usize> {
        let mut ran = 0usize;
        while !self.is_complete() && limit.is_none_or(|l| ran < l) {
            let batch = self.threads.min(limit.map_or(usize::MAX, |l| l - ran));
            ran += self.run_pending(source, Some(batch));
            self.save(path)?;
            on_batch(self.completed_count(), self.chunk_count());
        }
        if ran == 0 {
            self.save(path)?;
        }
        Ok(ran)
    }

    /// The merged histogram, or `None` while chunks are pending.
    #[must_use]
    pub fn histogram(&self) -> Option<&StreamHistogram> {
        self.is_complete().then(|| self.state.histogram())
    }

    /// The partial histogram absorbed so far (complete or not).
    #[must_use]
    pub fn partial_histogram(&self) -> &StreamHistogram {
        self.state.histogram()
    }

    /// Distinct addresses absorbed so far.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.state.footprint()
    }

    /// Serializes the ingest — plan, progress, merge state — as a JSON
    /// checkpoint document. The state is canonical (the timeline is stored
    /// as its ordered address list), so two ingests in the same logical
    /// state serialize byte-identically however they got there.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"kind\": \"{CHECKPOINT_KIND}\",");
        let _ = writeln!(out, "  \"version\": {CHECKPOINT_VERSION},");
        let _ = writeln!(
            out,
            "  \"fingerprint\": \"{}\",",
            jsonio::escape(&self.fingerprint)
        );
        let _ = writeln!(out, "  \"total_accesses\": {},", self.total);
        let _ = writeln!(out, "  \"chunk_count\": {},", self.chunk_count);
        let _ = writeln!(out, "  \"next_chunk\": {},", self.next_chunk);
        let _ = writeln!(out, "  \"cold\": {},", self.state.histogram.cold_count());
        out.push_str("  \"histogram\": [");
        for (i, (d, c)) in self.state.histogram.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}[{d}, {c}]");
        }
        out.push_str("],\n");
        out.push_str("  \"timeline\": [");
        for (i, addr) in self.state.timeline.ordered_addresses().iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{addr}");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Rebuilds an ingest from a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(text: &str, threads: usize) -> Result<TraceIngest, String> {
        let doc = jsonio::parse(text)?;
        let kind = doc.get("kind").and_then(JsonValue::as_str);
        if kind != Some(CHECKPOINT_KIND) {
            return Err(format!("not a trace-ingest checkpoint (kind = {kind:?})"));
        }
        let version = doc.get("version").and_then(JsonValue::as_u64);
        if version != Some(CHECKPOINT_VERSION) {
            return Err(format!("unsupported checkpoint version {version:?}"));
        }
        let fingerprint = doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let total = doc
            .get("total_accesses")
            .and_then(JsonValue::as_u64)
            .ok_or("missing total_accesses")?;
        let chunk_count = doc
            .get("chunk_count")
            .and_then(JsonValue::as_usize)
            .ok_or("missing chunk_count")?;
        if chunk_count == 0 {
            return Err("chunk_count must be positive".to_string());
        }
        if chunk_count != Self::effective_chunk_count(chunk_count, total) {
            return Err(format!(
                "chunk_count {chunk_count} exceeds the {total} accesses of the trace"
            ));
        }
        let next_chunk = doc
            .get("next_chunk")
            .and_then(JsonValue::as_usize)
            .ok_or("missing next_chunk")?;
        if next_chunk > chunk_count {
            return Err(format!(
                "next_chunk {next_chunk} exceeds chunk_count {chunk_count}"
            ));
        }
        let cold = doc
            .get("cold")
            .and_then(JsonValue::as_u64)
            .ok_or("missing cold")?;
        let mut state = MergeState::new();
        state.histogram.record_cold(cold);
        let entries = doc
            .get("histogram")
            .and_then(JsonValue::as_array)
            .ok_or("missing histogram")?;
        for entry in entries {
            let pair = entry.as_array().ok_or("histogram entry is not a pair")?;
            let (d, c) = match pair {
                [d, c] => (
                    d.as_usize().ok_or("bad histogram distance")?,
                    c.as_u64().ok_or("bad histogram count")?,
                ),
                _ => return Err("histogram entry is not a pair".to_string()),
            };
            if d == 0 {
                return Err("histogram distance 0 is not representable".to_string());
            }
            state.histogram.record_finite(d, c);
        }
        let timeline = doc
            .get("timeline")
            .and_then(JsonValue::as_array)
            .ok_or("missing timeline")?;
        for addr in timeline {
            state
                .timeline
                .append(addr.as_u64().ok_or("bad timeline address")?);
        }
        Ok(TraceIngest {
            fingerprint,
            total,
            chunk_count,
            threads: threads.max(1),
            next_chunk,
            state,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint from `path`, or plans a fresh ingest when the
    /// file does not exist or belongs to a different source or plan.
    /// Returns the ingest and whether progress was actually resumed.
    ///
    /// The source is always re-scanned: a checkpoint only resumes when its
    /// fingerprint, its chunk plan *and* its recorded access count all
    /// match the source as it exists now. File fingerprints are path-based,
    /// so the length check is what catches a file that was truncated,
    /// appended to or replaced between runs (an equal-length content swap
    /// is not detectable without hashing every resume — don't do that).
    ///
    /// # Errors
    ///
    /// Returns the source scan error.
    pub fn resume_or_new(
        source: &TraceSource,
        chunk_count: usize,
        threads: usize,
        path: &Path,
    ) -> Result<(TraceIngest, bool), String> {
        let total = source
            .total_accesses()
            .map_err(|e| format!("cannot scan {source}: {e}"))?;
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(ingest) = TraceIngest::from_json(&text, threads) {
                if ingest.fingerprint == source.fingerprint()
                    && ingest.total == total
                    && ingest.chunk_count == Self::effective_chunk_count(chunk_count, total)
                {
                    let resumed = ingest.completed_count() > 0;
                    return Ok((ingest, resumed));
                }
            }
        }
        Ok((Self::with_total(source, total, chunk_count, threads), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symloc_cache::reuse::reuse_distances;
    use symloc_trace::generators::{cyclic_trace, sawtooth_trace, zipfian_trace};
    use symloc_trace::stream::GenSpec;
    use symloc_trace::Trace;

    fn engine_over(trace: &Trace) -> OnlineReuseEngine {
        let mut engine = OnlineReuseEngine::new();
        engine.record_all(trace.iter().map(|a| a.value() as u64));
        engine
    }

    fn batch_histogram(trace: &Trace) -> StreamHistogram {
        let mut h = StreamHistogram::new();
        for d in reuse_distances(trace) {
            match d {
                Some(d) => h.record_finite(d, 1),
                None => h.record_cold(1),
            }
        }
        h
    }

    #[test]
    fn online_engine_matches_batch_olken() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        for trace in [
            Trace::new(),
            sawtooth_trace(7, 3),
            cyclic_trace(5, 4),
            zipfian_trace(40, 600, 0.9, &mut rng),
        ] {
            let engine = engine_over(&trace);
            assert_eq!(*engine.histogram(), batch_histogram(&trace));
            assert_eq!(engine.accesses(), trace.len() as u64);
            assert_eq!(engine.footprint(), trace.distinct_count());
        }
    }

    #[test]
    fn online_engine_distances_match_per_access() {
        let trace = sawtooth_trace(5, 4);
        let batch = reuse_distances(&trace);
        let mut engine = OnlineReuseEngine::new();
        for (addr, expect) in trace.iter().zip(batch) {
            assert_eq!(engine.record(addr.value() as u64), expect);
        }
    }

    #[test]
    fn timeline_capacity_is_bounded_by_footprint_not_length() {
        // 50_000 accesses over 40 addresses: the tree must stay tiny.
        let mut engine = OnlineReuseEngine::new();
        for i in 0..50_000u64 {
            engine.record(i % 40);
        }
        assert_eq!(engine.footprint(), 40);
        assert!(
            engine.timeline_capacity() <= MIN_TIMELINE_CAPACITY.max(2 * 40),
            "capacity {} grew past the footprint bound",
            engine.timeline_capacity()
        );
        assert_eq!(engine.accesses(), 50_000);
        // Every non-cold access of the cyclic pattern has distance 40.
        assert_eq!(engine.histogram().count_at(40), 50_000 - 40);
    }

    #[test]
    fn histogram_queries_and_merge() {
        let mut h = StreamHistogram::new();
        h.record_finite(2, 3);
        h.record_finite(5, 1);
        h.record_cold(2);
        assert_eq!(h.count_at(2), 3);
        assert_eq!(h.finite_count(), 4);
        assert_eq!(h.accesses(), 6);
        assert_eq!(h.hits_up_to(4), 3);
        assert!((h.miss_ratio(4) - 0.5).abs() < 1e-12);
        assert_eq!(h.max_distance(), Some(5));
        let mut other = StreamHistogram::new();
        other.record_finite(2, 1);
        other.record_cold(1);
        h.merge(&other);
        assert_eq!(h.count_at(2), 4);
        assert_eq!(h.cold_count(), 3);
        assert_eq!(StreamHistogram::new().miss_ratio(4), 0.0);
        let points = h.mrc_points(&[1, 4, 100]);
        assert_eq!(points.len(), 3);
        assert!((points[2].miss_ratio - h.miss_ratio(100)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distance 0")]
    fn histogram_rejects_distance_zero() {
        StreamHistogram::new().record_finite(0, 1);
    }

    #[test]
    fn log_spaced_sizes_cover_the_range() {
        assert!(log_spaced_sizes(0, 8).is_empty());
        assert_eq!(log_spaced_sizes(1, 8), vec![1]);
        let sizes = log_spaced_sizes(100_000, 16);
        assert_eq!(*sizes.first().unwrap(), 1);
        assert_eq!(*sizes.last().unwrap(), 100_000);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert!(sizes.len() <= 16);
    }

    #[test]
    fn shards_at_full_budget_equals_exact_engine() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let trace = zipfian_trace(60, 800, 0.8, &mut rng);
        let exact = engine_over(&trace);
        // Budget above the footprint: rate stays 1, every access sampled.
        let mut shards = ShardsEstimator::new(200);
        shards.record_all(trace.iter().map(|a| a.value() as u64));
        assert_eq!(shards.sampling_rate(), 1.0);
        assert_eq!(shards.evictions(), 0);
        assert_eq!(shards.sampled_accesses(), trace.len() as u64);
        for c in [1usize, 2, 5, 10, 30, 60, 100] {
            assert!(
                (shards.histogram().miss_ratio(c) - exact.histogram().miss_ratio(c)).abs() < 1e-9,
                "c={c}"
            );
        }
        assert!((shards.estimated_footprint() - exact.footprint() as f64).abs() < 1e-9);
    }

    #[test]
    fn shards_budget_binds_memory_and_still_estimates() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        // 4000 distinct addresses, budget 2048: eviction must kick in.
        let trace = zipfian_trace(4000, 40_000, 0.7, &mut rng);
        let exact = engine_over(&trace);
        let mut shards = ShardsEstimator::new(2048);
        shards.record_all(trace.iter().map(|a| a.value() as u64));
        assert!(shards.sampling_rate() < 1.0);
        assert!(shards.evictions() > 0);
        assert!(shards.tracked_addresses() <= shards.budget());
        assert!(shards.timeline.capacity() <= 2 * (shards.budget() + 1) + MIN_TIMELINE_CAPACITY);
        // The estimate stays close to the exact curve. Spatial sampling
        // keeps or drops whole addresses, so on a small, highly skewed
        // synthetic address space the hash luck of the few hot addresses
        // dominates the error; a budget of ~half the footprint keeps the
        // worst pointwise gap within a few percent.
        let mut worst = 0.0f64;
        for c in log_spaced_sizes(exact.footprint(), 12) {
            worst = worst
                .max((shards.histogram().miss_ratio(c) - exact.histogram().miss_ratio(c)).abs());
        }
        assert!(worst < 0.05, "worst MRC error {worst}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn shards_rejects_zero_budget() {
        let _ = ShardsEstimator::new(0);
    }

    #[test]
    fn chunked_merge_equals_sequential_for_any_chunking() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for trace in [
            sawtooth_trace(9, 4),
            cyclic_trace(6, 5),
            zipfian_trace(50, 700, 1.0, &mut rng),
        ] {
            let expected = batch_histogram(&trace);
            let addrs: Vec<u64> = trace.iter().map(|a| a.value() as u64).collect();
            for chunks in [1usize, 2, 3, 7, 16] {
                let mut state = MergeState::new();
                for span in split_indices(addrs.len(), chunks) {
                    let partial = chunk_partial(addrs[span.start..span.end].iter().copied());
                    state.absorb(&partial);
                }
                assert_eq!(*state.histogram(), expected, "chunks={chunks}");
                assert_eq!(state.footprint(), trace.distinct_count());
            }
        }
    }

    #[test]
    fn ingest_is_thread_and_chunk_invariant() {
        let source = TraceSource::Gen(GenSpec::parse("gen:zipf:80:2000:0.9:7").unwrap());
        let mut reference = TraceIngest::new(&source, 1, 1).unwrap();
        assert_eq!(reference.run_pending(&source, None), 1);
        let expected = reference.histogram().unwrap().clone();
        for (chunks, threads) in [(4, 1), (4, 3), (9, 2), (16, 8)] {
            let mut ingest = TraceIngest::new(&source, chunks, threads).unwrap();
            ingest.run_pending(&source, None);
            assert_eq!(
                *ingest.histogram().unwrap(),
                expected,
                "chunks={chunks} threads={threads}"
            );
        }
    }

    #[test]
    fn interrupted_ingest_resumes_to_byte_identical_checkpoint() {
        let source = TraceSource::Gen(GenSpec::parse("gen:zipf:60:1500:0.8:9").unwrap());

        // The uninterrupted reference run.
        let mut reference = TraceIngest::new(&source, 6, 2).unwrap();
        reference.run_pending(&source, None);
        let reference_json = reference.to_json();

        // Run part of the ingest, "die", serialize, resume, finish.
        let mut interrupted = TraceIngest::new(&source, 6, 2).unwrap();
        assert_eq!(interrupted.run_pending(&source, Some(3)), 3);
        assert!(!interrupted.is_complete());
        assert!(interrupted.histogram().is_none());
        let checkpoint = interrupted.to_json();
        drop(interrupted);

        let mut resumed = TraceIngest::from_json(&checkpoint, 4).unwrap();
        assert_eq!(resumed.completed_count(), 3);
        assert_eq!(resumed.run_pending(&source, None), 3);
        assert_eq!(resumed.to_json(), reference_json, "resume must be exact");
        assert_eq!(
            *resumed.histogram().unwrap(),
            *reference.histogram().unwrap()
        );
    }

    #[test]
    fn ingest_checkpoint_files_and_resume_or_new() {
        let dir = std::env::temp_dir();
        let path = dir.join("symloc_tracesweep_ingest_checkpoint.json");
        std::fs::remove_file(&path).ok();
        let source = TraceSource::Gen(GenSpec::parse("gen:sawtooth:30:40").unwrap());

        let (mut ingest, resumed) = TraceIngest::resume_or_new(&source, 5, 2, &path).unwrap();
        assert!(!resumed);
        let mut progress = Vec::new();
        ingest
            .run_with_checkpoint(&source, &path, Some(2), |done, total| {
                progress.push((done, total))
            })
            .unwrap();
        assert_eq!(progress, vec![(2, 5)]);
        assert!(!ingest.is_complete());

        // Resume from disk and finish.
        let (mut resumed_ingest, resumed) =
            TraceIngest::resume_or_new(&source, 5, 2, &path).unwrap();
        assert!(resumed);
        assert_eq!(resumed_ingest.completed_count(), 2);
        resumed_ingest
            .run_with_checkpoint(&source, &path, None, |_, _| {})
            .unwrap();
        assert!(resumed_ingest.is_complete());

        // A different source ignores the stale checkpoint.
        let other = TraceSource::Gen(GenSpec::parse("gen:cyclic:30:40").unwrap());
        let (fresh, resumed) = TraceIngest::resume_or_new(&other, 5, 2, &path).unwrap();
        assert!(!resumed);
        assert_eq!(fresh.completed_count(), 0);

        // Complete ingest: nothing pending, checkpoint still rewritten.
        let (mut done, _) = TraceIngest::resume_or_new(&source, 5, 2, &path).unwrap();
        assert!(done.is_complete());
        assert_eq!(
            done.run_with_checkpoint(&source, &path, None, |_, _| {})
                .unwrap(),
            0
        );
        // And matches the sequential engine.
        let expected = engine_over(&sawtooth_trace(30, 40));
        assert_eq!(*done.histogram().unwrap(), *expected.histogram());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_file_that_changed_length() {
        // File fingerprints are path-based, so a checkpoint must also be
        // tied to the access count: replacing the trace file between runs
        // restarts the ingest instead of silently resuming against the
        // wrong data (regression test).
        let dir = std::env::temp_dir();
        let trace_path = dir.join("symloc_tracesweep_swap_test.trace");
        let ckpt_path = dir.join("symloc_tracesweep_swap_test.ckpt.json");
        std::fs::remove_file(&ckpt_path).ok();
        std::fs::write(&trace_path, "0\n1\n2\n0\n1\n2\n0\n1\n").unwrap();
        let source = TraceSource::Text(trace_path.clone());

        let (mut ingest, _) = TraceIngest::resume_or_new(&source, 4, 1, &ckpt_path).unwrap();
        ingest
            .run_with_checkpoint(&source, &ckpt_path, Some(2), |_, _| {})
            .unwrap();
        assert!(!ingest.is_complete());

        // Same path, different (shorter) content: fresh plan, not a resume.
        std::fs::write(&trace_path, "7\n7\n").unwrap();
        let (fresh, resumed) = TraceIngest::resume_or_new(&source, 4, 1, &ckpt_path).unwrap();
        assert!(!resumed);
        assert_eq!(fresh.completed_count(), 0);
        assert_eq!(fresh.total_accesses(), 2);
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&ckpt_path).ok();
    }

    #[test]
    fn ingest_rejects_corrupted_checkpoints() {
        let source = TraceSource::Gen(GenSpec::parse("gen:cyclic:8:4").unwrap());
        let mut ingest = TraceIngest::new(&source, 2, 1).unwrap();
        ingest.run_pending(&source, Some(1));
        let good = ingest.to_json();
        assert!(TraceIngest::from_json(&good, 1).is_ok());
        assert!(TraceIngest::from_json("{}", 1).is_err());
        assert!(TraceIngest::from_json("not json", 1).is_err());
        assert!(TraceIngest::from_json(&good.replace(CHECKPOINT_KIND, "other"), 1).is_err());
        assert!(
            TraceIngest::from_json(&good.replace("\"version\": 1", "\"version\": 9"), 1).is_err()
        );
        assert!(TraceIngest::from_json(
            &good.replace("\"next_chunk\": 1", "\"next_chunk\": 99"),
            1
        )
        .is_err());
        assert!(TraceIngest::from_json(
            &good.replace("\"chunk_count\": 2", "\"chunk_count\": 0"),
            1
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "different trace source")]
    fn ingest_refuses_a_mismatched_source() {
        let source = TraceSource::Gen(GenSpec::parse("gen:cyclic:8:4").unwrap());
        let other = TraceSource::Gen(GenSpec::parse("gen:cyclic:8:5").unwrap());
        let mut ingest = TraceIngest::new(&source, 2, 1).unwrap();
        ingest.run_pending(&other, None);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn ingest_rejects_zero_chunks() {
        let source = TraceSource::Gen(GenSpec::parse("gen:cyclic:4:2").unwrap());
        let _ = TraceIngest::new(&source, 0, 1);
    }

    #[test]
    fn ingest_reports_source_errors() {
        let source = TraceSource::Text(std::path::PathBuf::from("/no/such/trace.txt"));
        assert!(TraceIngest::new(&source, 2, 1).is_err());
    }

    #[test]
    fn empty_trace_ingests_cleanly() {
        let source = TraceSource::Memory(Trace::new());
        let mut ingest = TraceIngest::new(&source, 3, 2).unwrap();
        ingest.run_pending(&source, None);
        assert!(ingest.is_complete());
        assert_eq!(ingest.histogram().unwrap().accesses(), 0);
        assert_eq!(ingest.footprint(), 0);
    }
}
